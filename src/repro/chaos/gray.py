"""The gray-failure degradation gate: spraying ECMP vs the clean baseline.

Gray failures (PFC storms, congestion collapse, partial link
degradation) perturb the fabric probabilistically, and spraying ECMP
smears each pair's probes over every equal-cost path — the two together
are the hardest regime the localization pipeline supports.  This gate
quantifies how gracefully it degrades: every gray family is injected
twice, once under static (pinned) ECMP — the clean baseline — and once
under per-packet spraying, and the spraying leg's detection recall and
localization rate must stay within :class:`GrayBounds` of the
baseline's.

The same sweep also enforces the plumbing invariants behind the
numbers:

* **backend equivalence** — the spraying leg is re-run on the legacy
  per-pair analyzer backend and must open bit-identical failure events
  (same pairs, symptoms, and detection times);
* **shard equivalence** — a spraying gray scenario runs on the sharded
  plane at several shard counts and both analyzer backends via
  :func:`repro.shard.equivalence.verify_shard_equivalence`, so the
  published report could not depend on how the plane was partitioned;
* **voting comparison** — the spraying leg is re-run with
  distribution-aware tomography disabled (naive single-sample voting),
  and the gate requires the distribution-aware localizer to do at
  least as well;
* **Flock baseline** — the spraying leg's events are re-localized by
  :class:`repro.baselines.FlockLocalizer` and scored by the same
  :class:`~repro.core.evaluation.CampaignScorer`, so the probabilistic
  baseline appears side by side in every report.

``repro gray`` and ``benchmarks/bench_gray.py`` both drive
:func:`run_gray_benchmark`; the committed artifact is
``BENCH_gray.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.baselines import FlockLocalizer
from repro.cluster.identifiers import LinkId
from repro.core.analyzer import Analyzer, LoadConditionedAdmission
from repro.core.evaluation import CampaignScorer
from repro.core.localization import healthy_pairs_for
from repro.network.faults import gray_injection_overrides
from repro.network.issues import GrayIssueType
from repro.network.load import LinkLoadModel
from repro.shard.equivalence import verify_shard_equivalence
from repro.shard.spec import FaultSpec, ShardScenarioSpec, build_replica
from repro.workloads.scenarios import build_scenario

__all__ = [
    "GRAY_FAMILIES",
    "GrayBounds",
    "GrayEquivalenceError",
    "format_report",
    "gray_fault_target",
    "gray_shard_spec",
    "run_gray_benchmark",
]

#: Every load-dependent family the gate sweeps, in catalogue order.
GRAY_FAMILIES: Tuple[GrayIssueType, ...] = tuple(GrayIssueType)

#: Campaign timeline (mirrors the chaos gate): fault-free warm-up with
#: skeleton inference, the fault window, and a cool-down.
WARM_S = 200.0
FAULT_S = 120.0
COOL_S = 40.0


class GrayEquivalenceError(AssertionError):
    """A spraying run diverged across analyzer backends."""


@dataclass(frozen=True)
class GrayBounds:
    """What spraying may cost relative to the static-ECMP baseline."""

    #: Spraying-leg detection recall as a fraction of the static leg's.
    min_recall_ratio: float = 0.9
    #: Spraying-leg localization rate as a fraction of the static leg's.
    min_localization_ratio: float = 0.75

    def check(self, summary: Dict[str, object]) -> List[str]:
        """Violated bounds, as human-readable strings (empty = pass)."""
        failures = []
        if summary["recall_ratio"] < self.min_recall_ratio:
            failures.append(
                f"recall ratio {summary['recall_ratio']:.3f} < "
                f"{self.min_recall_ratio}"
            )
        if summary["localization_ratio"] < self.min_localization_ratio:
            failures.append(
                f"localization ratio "
                f"{summary['localization_ratio']:.3f} < "
                f"{self.min_localization_ratio}"
            )
        if (
            summary["distribution_aware_localized"]
            < summary["naive_localized"]
        ):
            failures.append(
                "distribution-aware voting localized "
                f"{summary['distribution_aware_localized']} spraying "
                "cases, fewer than naive voting's "
                f"{summary['naive_localized']}"
            )
        return failures


def _build_leg(
    issue: GrayIssueType,
    seed: int,
    ecmp_mode: str,
    backend: str = "columnar",
    distribution_aware: bool = True,
):
    """One campaign scenario with the full gray pipeline installed.

    Two hosts per segment (unlike the chaos gate's four) so monitored
    traffic crosses the spine layer — spraying is only observable on
    multi-path segments, and a single-ToR scenario would make the
    static and spraying legs identical by construction.
    """
    scenario = build_scenario(
        num_containers=4, gpus_per_container=4, pp=2,
        seed=seed * 100 + issue.value, hosts_per_segment=2,
        ecmp_mode=ecmp_mode,
    )
    if backend != "columnar":
        # Swap before the first probe round: the hunter reads
        # ``self.analyzer`` per round, so a pre-run replacement is
        # equivalent to constructing with this backend.
        scenario.hunter.analyzer = Analyzer(backend=backend)
    load_model = LinkLoadModel.from_workload(
        scenario.workload, scenario.cluster
    )
    scenario.hunter.analyzer.load_filter = LoadConditionedAdmission(
        load_model, scenario.fabric
    )
    scenario.hunter.localizer.distribution_aware = distribution_aware
    return scenario, load_model


def gray_fault_target(scenario, load_model: LinkLoadModel):
    """The most-probed switch-to-switch link, ties broken by load.

    Gray families live on the fabric's multiplexed segment: access
    links carry exactly one path, so faulting one would never separate
    spraying from static ECMP (every probe of the pair crosses it
    either way).  Among the ToR–spine uplinks, the one carrying the
    most *currently probed* pairs' static picks (the agents' live
    ping lists, not the analyzer's history) gives the static-ECMP
    baseline its best tomography evidence — the spraying leg then has
    to match that baseline with every pair's probes smeared across the
    whole candidate set, which is exactly the degradation this gate
    measures.  ``traceroute`` reports the static hash pick regardless
    of the fabric's live mode, so both legs derive the same target.
    """
    probed = set()
    controller = scenario.hunter.controller
    for task_id in controller.monitored_tasks():
        for agent in controller.agents_of(task_id):
            probed.update(agent.ping_list.pairs)
    crossings: Dict[LinkId, int] = {}
    for pair in sorted(probed):
        path = scenario.fabric.traceroute(pair.src, pair.dst)
        if path is None:
            continue
        for link in path.links:
            if "/rnic-" not in link.a and "/rnic-" not in link.b:
                crossings[link] = crossings.get(link, 0) + 1
    if not crossings:
        raise ValueError(
            "no monitored pair crosses a switch-to-switch link; the "
            "gray gate needs a multi-segment scenario"
        )
    return min(
        crossings,
        key=lambda link: (
            -crossings[link], -load_model.utilization(link), str(link)
        ),
    )


def _event_signature(scenario) -> Tuple[Tuple[object, ...], ...]:
    """The run's opened events in a backend-comparable form."""
    return tuple(
        (
            str(event.pair.src), str(event.pair.dst),
            event.symptom.value,
            round(event.first_detected_at, 9),
        )
        for event in scenario.hunter.events
    )


def _run_leg(
    issue: GrayIssueType,
    seed: int,
    ecmp_mode: str,
    backend: str = "columnar",
    distribution_aware: bool = True,
) -> Dict[str, object]:
    """One campaign leg; returns the outcome plus the live scenario."""
    scenario, load_model = _build_leg(
        issue, seed, ecmp_mode, backend, distribution_aware
    )
    scenario.run_for(WARM_S)
    scenario.apply_skeleton()
    target = gray_fault_target(scenario, load_model)
    overrides = gray_injection_overrides(
        issue, target, seed, load_model
    )
    fault = scenario.inject(issue, target, **overrides)
    scenario.run_for(FAULT_S)
    scenario.clear(fault)
    scenario.run_for(COOL_S)
    _, outcomes = scenario.score()
    outcome = outcomes[0]
    return {
        "detected": bool(outcome.detected),
        "localized": bool(outcome.localized),
        "localized_component": outcome.localized_component,
        "detection_delay_s": outcome.detection_delay_s,
        "events": len(scenario.hunter.events),
        "scenario": scenario,
        "fault": fault,
    }


def _score_flock(leg: Dict[str, object]) -> Dict[str, object]:
    """Re-localize a finished leg's events with the Flock baseline.

    Rebuilds the hunter's per-round localization batches (every event
    open at each report time, with the complementary healthy set) so
    Flock consumes exactly the evidence the pipeline did, then scores
    its reports with the same campaign scorer.
    """
    scenario = leg["scenario"]
    flock = FlockLocalizer(scenario.cluster, scenario.fabric)
    monitored = scenario.hunter.monitored_pairs()
    reports = []
    seen = set()
    for when, _ in scenario.hunter.reports:
        batch = [
            event for event in scenario.hunter.events
            if event.first_detected_at <= when
        ]
        fresh = [event for event in batch if event.key not in seen]
        if not fresh:
            continue
        seen.update(event.key for event in fresh)
        healthy = healthy_pairs_for(batch, monitored)
        reports.append(
            (when, flock.localize(batch, healthy, now=when))
        )
    scorer = CampaignScorer(scenario.cluster, scenario.fabric)
    outcome = scorer.outcome_of(
        leg["fault"], scenario.hunter.events, reports, monitored
    )
    return {
        "detected": bool(outcome.detected),
        "localized": bool(outcome.localized),
        "localized_component": outcome.localized_component,
    }


def gray_shard_spec(
    seed: int = 0,
    num_containers: int = 8,
    total_rounds: int = 24,
) -> ShardScenarioSpec:
    """A spraying shard-plane scenario carrying one gray fault.

    The fault rides a ToR uplink of a monitored endpoint, with its
    severity drawn through :func:`gray_injection_overrides` — the whole
    spec is pure data, so every replica derives the identical fault.
    """
    base = ShardScenarioSpec(
        num_containers=num_containers,
        gpus_per_container=4,
        seed=seed,
        total_rounds=total_rounds,
        ecmp_mode="spray",
    )
    probe = build_replica(base)
    rnic = probe.rnic_of_rank(5)
    tor = probe.topology.tor_of(rnic)
    link = LinkId.between(tor, probe.topology.spines[1])
    overrides = gray_injection_overrides(
        GrayIssueType.PARTIAL_LINK_DEGRADATION, link, seed
    )
    fault = FaultSpec(
        issue=GrayIssueType.PARTIAL_LINK_DEGRADATION.name,
        target=link,
        start_round=max(1, total_rounds // 5),
        end_round=max(2, (total_rounds * 4) // 5),
        overrides=tuple(sorted(overrides.items())),
    )
    return ShardScenarioSpec(
        num_containers=base.num_containers,
        gpus_per_container=base.gpus_per_container,
        seed=seed,
        total_rounds=total_rounds,
        ecmp_mode="spray",
        faults=(fault,),
    )


def run_gray_benchmark(
    quick: bool = False,
    seed: int = 0,
    out: Optional[str] = None,
    bounds: Optional[GrayBounds] = None,
) -> Dict[str, object]:
    """Run the full gray sweep and evaluate the bounds.

    Returns the JSON-ready report; ``report["summary"]["passed"]``
    tells callers whether every :class:`GrayBounds` held.  Raises
    :class:`GrayEquivalenceError` if the legacy analyzer backend or the
    shard plane ever disagrees with the columnar single-process run.
    """
    bounds = bounds if bounds is not None else GrayBounds()
    seeds = (seed,) if quick else (seed, seed + 1)
    rows: List[Dict[str, object]] = []
    for issue in GRAY_FAMILIES:
        for s in seeds:
            static = _run_leg(issue, s, "static")
            spray = _run_leg(issue, s, "spray")
            legacy = _run_leg(issue, s, "spray", backend="legacy")
            spray_signature = _event_signature(spray["scenario"])
            legacy_signature = _event_signature(legacy["scenario"])
            if spray_signature != legacy_signature:
                raise GrayEquivalenceError(
                    f"{issue.name} seed {s}: legacy analyzer backend "
                    f"opened different events than columnar "
                    f"(columnar {len(spray_signature)}, legacy "
                    f"{len(legacy_signature)})"
                )
            naive = _run_leg(
                issue, s, "spray", distribution_aware=False
            )
            flock = _score_flock(spray)
            rows.append({
                "issue": issue.name,
                "seed": s,
                "static": _strip(static),
                "spray": _strip(spray),
                "spray_naive": _strip(naive),
                "flock": flock,
                "backend_events_equal": True,
            })

    def count(leg: str, key: str) -> int:
        return sum(1 for r in rows if r[leg][key])

    static_detected = count("static", "detected")
    spray_detected = count("spray", "detected")
    static_localized = count("static", "localized")
    spray_localized = count("spray", "localized")
    shard = verify_shard_equivalence(
        spec=gray_shard_spec(seed=seed),
        shard_counts=(2,) if quick else (2, 4),
        backends=("inproc",),
        analyzer_backends=("columnar", "legacy"),
        with_failover=False,
    )
    summary: Dict[str, object] = {
        "cases": len(rows),
        "static_detected": static_detected,
        "spray_detected": spray_detected,
        "recall_ratio": (
            spray_detected / static_detected if static_detected else 1.0
        ),
        "static_localized": static_localized,
        "spray_localized": spray_localized,
        "localization_ratio": (
            spray_localized / static_localized
            if static_localized else 1.0
        ),
        "distribution_aware_localized": spray_localized,
        "naive_localized": count("spray_naive", "localized"),
        "flock_detected": count("flock", "detected"),
        "flock_localized": count("flock", "localized"),
        "shard_equivalence": shard,
    }
    violations = bounds.check(summary)
    summary["passed"] = not violations
    summary["violations"] = violations
    report = {
        "config": {
            "quick": quick,
            "seed": seed,
            "seeds": list(seeds),
            "families": [issue.name for issue in GRAY_FAMILIES],
            "bounds": {
                "min_recall_ratio": bounds.min_recall_ratio,
                "min_localization_ratio": bounds.min_localization_ratio,
            },
        },
        "rows": rows,
        "summary": summary,
    }
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def _strip(leg: Dict[str, object]) -> Dict[str, object]:
    """The JSON-safe slice of a leg result (no live scenario objects)."""
    return {
        key: value for key, value in leg.items()
        if key not in ("scenario", "fault")
    }


def format_report(report: Dict[str, object]) -> str:
    """Render the gate report for terminals (cf. ``repro chaos``)."""
    lines = [
        "gray-failure degradation gate: "
        "static ECMP baseline vs spraying"
    ]
    lines.append(
        f"  {'family':<26} {'seed':>4} {'static':>10} {'spray':>10} "
        f"{'naive':>10} {'flock':>10}"
    )

    def leg(case: Dict[str, object]) -> str:
        if not case["detected"]:
            return "MISS"
        return "det+loc" if case["localized"] else "det"

    for row in report["rows"]:
        lines.append(
            f"  {row['issue'].lower():<26} {row['seed']:>4} "
            f"{leg(row['static']):>10} {leg(row['spray']):>10} "
            f"{leg(row['spray_naive']):>10} {leg(row['flock']):>10}"
        )
    summary = report["summary"]
    lines.append(
        f"recall: static {summary['static_detected']}"
        f"/{summary['cases']} -> spray {summary['spray_detected']}"
        f"/{summary['cases']} (ratio {summary['recall_ratio']:.3f})"
    )
    lines.append(
        f"localization: static {summary['static_localized']}"
        f"/{summary['cases']} -> spray {summary['spray_localized']}"
        f"/{summary['cases']} "
        f"(ratio {summary['localization_ratio']:.3f})"
    )
    lines.append(
        f"voting under spray: distribution-aware "
        f"{summary['distribution_aware_localized']} vs naive "
        f"{summary['naive_localized']} localized"
    )
    lines.append(
        f"flock baseline: {summary['flock_detected']} detected, "
        f"{summary['flock_localized']} localized"
    )
    shard = summary["shard_equivalence"]
    lines.append(
        f"shard plane: {len(shard['compared'])} configuration(s) "
        f"bit-identical to the single-shard spraying baseline "
        f"({shard['baseline_events']} events)"
    )
    if summary["passed"]:
        lines.append("bounds: PASS")
    else:
        for violation in summary["violations"]:
            lines.append(f"bounds: FAIL - {violation}")
    return "\n".join(lines)
