"""Seeded, schedulable faults against the monitoring pipeline itself.

PRs 1–4 assumed the monitor is perfect: every RNIC throughput sample
arrives, every probe answer returns, every agent stays alive.  This
module drops that assumption.  A :class:`MonitorFaultInjector` owns a
schedule of :class:`MonitorFault` instances — the monitor-plane
catalogue below — and answers *pure, keyed* queries from the hardened
pipeline: every decision ("was this report lost?", "is this agent
hung?") is a deterministic function of ``(seed, fault, subject, time,
attempt)`` via :func:`repro.network.draws.keyed_uniform`, never of call
order.  That keeps chaos runs reproducible and lets shard replicas
replay identical monitor-plane weather after a failover.

Catalogue (the monitor-plane dual of Table 1):

=======================  ==============================================
``TELEMETRY_DROP``       per-RNIC throughput samples go missing (gaps)
``TELEMETRY_STALE``      samples repeat the last value (stuck counter)
``TELEMETRY_NAN``        samples arrive as NaN (corrupt export)
``PROBE_REPORT_LOSS``    the probe ran but its report never came back
``PROBE_LATE_REPLY``     the report arrives after the reply timeout
``AGENT_CRASH``          the sidecar agent is dead (no probes at all)
``AGENT_HANG``           the agent is alive but wedged (no probes)
``AGENT_SLOW_START``     the agent probes only a coarse subset while
                         warming up after (re)start
``FLOW_TABLE_READ_ERROR``  ``ovs-appctl``-style dump fails during RNIC
                         validation
=======================  ==============================================

Each fault carries ground truth (``culprits``) so the degradation gate
can score what the monitor *should* have been able to see despite it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.cluster.identifiers import EndpointId, RnicId
from repro.network.draws import keyed_uniform, keyed_uniforms

__all__ = [
    "MonitorFault",
    "MonitorFaultInjector",
    "MonitorIssue",
]


class MonitorIssue(enum.Enum):
    """The monitor-plane failure catalogue."""

    TELEMETRY_DROP = "telemetry_drop"
    TELEMETRY_STALE = "telemetry_stale"
    TELEMETRY_NAN = "telemetry_nan"
    PROBE_REPORT_LOSS = "probe_report_loss"
    PROBE_LATE_REPLY = "probe_late_reply"
    AGENT_CRASH = "agent_crash"
    AGENT_HANG = "agent_hang"
    AGENT_SLOW_START = "agent_slow_start"
    FLOW_TABLE_READ_ERROR = "flow_table_read_error"


#: Canonical parameters per issue, overridable at injection.
_DEFAULT_RATE: Dict[MonitorIssue, float] = {
    MonitorIssue.TELEMETRY_DROP: 0.10,
    MonitorIssue.TELEMETRY_STALE: 0.10,
    MonitorIssue.TELEMETRY_NAN: 0.05,
    MonitorIssue.PROBE_REPORT_LOSS: 0.10,
    MonitorIssue.PROBE_LATE_REPLY: 0.10,
    MonitorIssue.AGENT_CRASH: 1.0,
    MonitorIssue.AGENT_HANG: 1.0,
    MonitorIssue.AGENT_SLOW_START: 1.0,
    MonitorIssue.FLOW_TABLE_READ_ERROR: 0.5,
}

_DEFAULT_DELAY: Dict[MonitorIssue, float] = {
    MonitorIssue.PROBE_LATE_REPLY: 0.8,
    MonitorIssue.AGENT_SLOW_START: 30.0,
}

@dataclass
class MonitorFault:
    """One scheduled monitor-plane failure.

    ``scope`` narrows the blast radius: ``None`` hits every subject of
    the issue's kind; otherwise a subject key matches when it equals the
    scope or starts with it (so ``"t0/c3"`` scopes an agent fault to one
    container, and ``"t0/c3/g1"`` to one endpoint).
    """

    issue: MonitorIssue
    start: float
    end: Optional[float] = None
    #: Probability a subject/sample is hit while the fault is active.
    rate: float = 1.0
    scope: Optional[str] = None
    #: Issue-specific duration: reply lateness for ``PROBE_LATE_REPLY``,
    #: warm-up length for ``AGENT_SLOW_START``.
    delay_s: float = 0.0
    culprits: Set[str] = field(default_factory=set)
    #: Assigned by the injector at :meth:`MonitorFaultInjector.inject`
    #: when left ``None``.  Ids key every fate draw, so they must be
    #: run-local (a process-global counter here would make two
    #: same-seed injectors draw different fates — and two same-seed
    #: recordings differ byte-wise).  Pin explicitly to make replicas
    #: built elsewhere agree (cf. ``shard.spec.build_monitor_chaos``).
    fault_id: Optional[int] = None

    def active_at(self, t: float) -> bool:
        """Whether the fault exists at time ``t``."""
        return t >= self.start and (self.end is None or t < self.end)

    def matches(self, key: str) -> bool:
        """Whether subject ``key`` falls inside this fault's scope."""
        return (
            self.scope is None
            or key == self.scope
            or key.startswith(self.scope)
        )

    def describe(self) -> str:
        scope = self.scope or "*"
        return (
            f"{self.issue.value}(scope={scope}, rate={self.rate:g}, "
            f"start={self.start:g}, end={self.end})"
        )


class MonitorFaultInjector:
    """Owns the monitor-fault schedule and answers pipeline queries.

    All queries are pure in ``(seed, schedule, arguments)`` — two
    injectors with the same seed and schedule give identical answers in
    any process, at any call order.  Injection itself has no side
    effects on the simulated cluster (the monitor, not the network, is
    what misbehaves), so replicas can re-inject the schedule freely.
    """

    def __init__(self, seed: int = 0, recorder=None) -> None:
        self.seed = int(seed)
        self._recorder = recorder
        self._faults: Dict[int, MonitorFault] = {}
        self._next_fault_id = 0
        self._bus = None

    # ------------------------------------------------------------------
    # Schedule management
    # ------------------------------------------------------------------

    def attach_bus(self, bus) -> None:
        """Publish this schedule (and future injects) as ground truth.

        Already-injected faults are published immediately so a recorder
        attached after schedule construction still captures the full
        monitor-plane weather.  Attaching the same bus twice is a
        no-op.
        """
        if bus is self._bus:
            return
        self._bus = bus
        for fault in self.all_faults():
            self._publish(fault)

    def _publish(self, fault: MonitorFault) -> None:
        if self._bus is None:
            return
        from repro.bus.core import Topic

        self._bus.publish(
            Topic.GROUND_TRUTH,
            sim_time=fault.start,
            plane="monitor",
            action="inject",
            fault={
                "issue": fault.issue.name,
                "start": fault.start,
                "end": fault.end,
                "rate": fault.rate,
                "scope": fault.scope,
                "delay_s": fault.delay_s,
                "culprits": sorted(fault.culprits),
                "fault_id": fault.fault_id,
            },
        )

    def inject(self, fault: MonitorFault) -> MonitorFault:
        """Register a fault (no cluster side effects).

        An unpinned fault gets the next run-local id: two same-seed
        injectors fed the same schedule assign the same ids and hence
        draw identical fates, whatever else ran in the process.
        """
        if fault.fault_id is None:
            while self._next_fault_id in self._faults:
                self._next_fault_id += 1
            fault.fault_id = self._next_fault_id
            self._next_fault_id += 1
        if not fault.culprits:
            fault.culprits = {_culprit(fault)}
        self._faults[fault.fault_id] = fault
        if self._recorder is not None:
            self._recorder.count("chaos.injected")
        self._publish(fault)
        return fault

    def inject_issue(
        self,
        issue: MonitorIssue,
        start: float,
        end: Optional[float] = None,
        scope: Optional[str] = None,
        **overrides,
    ) -> MonitorFault:
        """Inject ``issue`` with canonical parameters (cf. the network
        injector's :meth:`~repro.network.faults.FaultInjector.inject_issue`)."""
        fault = MonitorFault(
            issue=issue,
            start=start,
            end=end,
            scope=scope,
            rate=_DEFAULT_RATE[issue],
            delay_s=_DEFAULT_DELAY.get(issue, 0.0),
        )
        for key, value in overrides.items():
            setattr(fault, key, value)
        return self.inject(fault)

    def clear(self, fault: MonitorFault, at: float) -> None:
        """End a fault at time ``at``."""
        fault.end = at

    def active_faults(self, t: float) -> List[MonitorFault]:
        """All monitor faults active at ``t``, in injection order."""
        return [
            self._faults[k]
            for k in sorted(self._faults)
            if self._faults[k].active_at(t)
        ]

    def all_faults(self) -> List[MonitorFault]:
        """Every fault ever injected, in injection order."""
        return [self._faults[k] for k in sorted(self._faults)]

    def ground_truth(self, t: float) -> Set[str]:
        """Union of culprits of monitor faults active at ``t``."""
        names: Set[str] = set()
        for fault in self.active_faults(t):
            names |= fault.culprits
        return names

    # ------------------------------------------------------------------
    # Pipeline-facing queries (all pure keyed draws)
    # ------------------------------------------------------------------

    def probe_report(
        self,
        src: EndpointId,
        dst: EndpointId,
        at: float,
        attempt: int = 0,
    ) -> str:
        """Fate of one probe's *report*: ``"ok"``, ``"lost"``, ``"late"``.

        Retries pass increasing ``attempt`` so each gets a fresh draw —
        a report lost on attempt 0 may well arrive on attempt 1, which
        is exactly what bounded retry exploits.
        """
        key = f"{src}->{dst}"
        for fault in self._report_faults(at):
            if not fault.matches(key):
                continue
            u = keyed_uniform(
                self.seed,
                f"report:{fault.fault_id}:{key}@{at!r}",
                salt=attempt,
            )
            if u < fault.rate:
                if fault.issue is MonitorIssue.PROBE_REPORT_LOSS:
                    return "lost"
                return "late"
        return "ok"

    def _report_faults(self, at: float) -> List[MonitorFault]:
        return [
            f
            for f in self.active_faults(at)
            if f.issue
            in (
                MonitorIssue.PROBE_REPORT_LOSS,
                MonitorIssue.PROBE_LATE_REPLY,
            )
        ]

    def agent_state(self, agent_key: str, at: float) -> str:
        """Agent health at ``at``: ``"ok"``/``"crashed"``/``"hung"``/``"slow"``.

        ``agent_key`` is the container id string.  Crash wins over hang
        wins over slow-start; slow-start covers ``delay_s`` simulated
        seconds from the fault's start (the warm-up window).
        """
        state = "ok"
        for fault in self.active_faults(at):
            if fault.issue is MonitorIssue.AGENT_CRASH and fault.matches(
                agent_key
            ):
                return "crashed"
            if fault.issue is MonitorIssue.AGENT_HANG and fault.matches(
                agent_key
            ):
                state = "hung"
            elif (
                fault.issue is MonitorIssue.AGENT_SLOW_START
                and fault.matches(agent_key)
                and at < fault.start + fault.delay_s
                and state == "ok"
            ):
                state = "slow"
        return state

    def corrupt_series(
        self,
        series_by_endpoint: Dict[EndpointId, np.ndarray],
        at: float = 0.0,
    ) -> Dict[EndpointId, np.ndarray]:
        """Apply active telemetry faults to per-RNIC throughput series.

        ``at`` is the simulated time of sample 0; series are 1 Hz, so
        sample *i* exists at ``at + i`` and a fault corrupts exactly the
        samples inside its active window.  Dropped and NaN samples both
        surface as NaN (the ingestion side cannot tell a missing export
        from a corrupt one); stale samples repeat the last value.
        Returns a new dict — untouched series are passed through by
        reference, so the clean path allocates nothing.
        """
        telemetry = [
            f
            for f in self.all_faults()
            if f.issue
            in (
                MonitorIssue.TELEMETRY_DROP,
                MonitorIssue.TELEMETRY_STALE,
                MonitorIssue.TELEMETRY_NAN,
            )
        ]
        if not telemetry:
            return dict(series_by_endpoint)
        out: Dict[EndpointId, np.ndarray] = {}
        for endpoint in sorted(series_by_endpoint):
            data = series_by_endpoint[endpoint]
            key = str(endpoint)
            corrupted = None
            times = None
            for fault in telemetry:
                if not fault.matches(key):
                    continue
                if times is None:
                    times = at + np.arange(len(data), dtype=np.float64)
                overlaps = fault.start <= times[-1] and (
                    fault.end is None or fault.end > times[0]
                )
                if not overlaps:
                    continue
                if corrupted is None:
                    corrupted = np.asarray(data, dtype=np.float64).copy()
                active = times >= fault.start
                if fault.end is not None:
                    active &= times < fault.end
                draws = keyed_uniforms(
                    self.seed,
                    f"telemetry:{fault.fault_id}:{key}@{at!r}",
                    len(data),
                )
                hit = active & (draws < fault.rate)
                if fault.issue is MonitorIssue.TELEMETRY_STALE:
                    idx = np.flatnonzero(hit)
                    for i in idx:
                        corrupted[i] = corrupted[i - 1] if i > 0 else 0.0
                else:
                    corrupted[hit] = np.nan
            out[endpoint] = data if corrupted is None else corrupted
            if corrupted is not None and self._recorder is not None:
                self._recorder.count("chaos.telemetry_corrupted_series")
        return out

    def flow_table_read_fails(
        self, rnic: RnicId, at: float, attempt: int = 0
    ) -> bool:
        """Whether a flow-table dump for ``rnic`` errors at ``at``."""
        key = str(rnic)
        for fault in self.active_faults(at):
            if fault.issue is not MonitorIssue.FLOW_TABLE_READ_ERROR:
                continue
            if not fault.matches(key):
                continue
            u = keyed_uniform(
                self.seed,
                f"flowread:{fault.fault_id}:{key}@{at!r}",
                salt=attempt,
            )
            if u < fault.rate:
                return True
        return False


def _culprit(fault: MonitorFault) -> str:
    scope = fault.scope or "*"
    return f"monitor:{fault.issue.value}:{scope}"
