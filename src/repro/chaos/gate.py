"""The degradation gate: bounded accuracy loss under monitor chaos.

Hardening is only worth shipping if it provably keeps the pipeline
useful while the monitor itself is failing.  This module runs the same
fault campaign twice — once with a perfect monitor, once under the
*standard chaos weather* (telemetry loss + probe-report loss at a
configurable rate, plus one sidecar-agent crash window) — and compares
detection recall and localization rate.  The committed artifact
(``BENCH_chaos.json``) and the ``repro chaos`` CLI both assert the
:class:`DegradationBounds`: chaos may cost a bounded fraction of recall,
never the pipeline.

Everything is seeded: the campaign scenarios, the chaos schedule (fault
ids are pinned so repeated runs in one process draw identical fates),
and the retry jitter — so the gate's numbers are reproducible bit for
bit.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chaos.faults import MonitorFaultInjector, MonitorIssue
from repro.core.resilience import RetryPolicy
from repro.network.issues import GrayIssueType, IssueType, all_issue_types
from repro.workloads.scenarios import build_scenario, standard_fault_target

__all__ = [
    "DegradationBounds",
    "FULL_ISSUES",
    "QUICK_ISSUES",
    "format_report",
    "run_chaos_benchmark",
    "standard_chaos",
]

#: The full gate sweeps every catalogued issue — Table 1 plus the gray
#: families — exactly like ``repro campaign``; adding a family to the
#: catalog extends the sweep with no edits here.  The quick (CI smoke)
#: subset keeps one issue per layer plus one gray family.
FULL_ISSUES: Tuple[object, ...] = all_issue_types()
QUICK_ISSUES: Tuple[object, ...] = (
    IssueType.RNIC_PORT_DOWN,
    IssueType.SWITCH_PORT_DOWN,
    IssueType.CONTAINER_CRASH,
    GrayIssueType.PARTIAL_LINK_DEGRADATION,
)

#: The sidecar agent crashed during the chaos run (container id string;
#: chosen away from the standard fault targets so the crash degrades
#: coverage rather than blinding the campaign's victim pairs).
CRASH_SCOPE = "task-0/node-3"
#: The crash window relative to the campaign timeline: the network
#: fault is injected at t=200 and cleared at t=320; the agent dies for
#: 60 s right on top of it — the hardest moment to lose an agent.
CRASH_START_S = 210.0
CRASH_END_S = 270.0


@dataclass(frozen=True)
class DegradationBounds:
    """What the hardened pipeline must retain under standard chaos."""

    #: Chaos-run detection recall as a fraction of the clean run's.
    min_recall_ratio: float = 0.9
    #: Chaos-run localization rate as a fraction of the clean run's.
    min_localization_ratio: float = 0.75

    def check(self, summary: Dict[str, float]) -> List[str]:
        """Violated bounds, as human-readable strings (empty = pass)."""
        failures = []
        if summary["recall_ratio"] < self.min_recall_ratio:
            failures.append(
                f"recall ratio {summary['recall_ratio']:.3f} < "
                f"{self.min_recall_ratio}"
            )
        if summary["localization_ratio"] < self.min_localization_ratio:
            failures.append(
                f"localization ratio "
                f"{summary['localization_ratio']:.3f} < "
                f"{self.min_localization_ratio}"
            )
        return failures


def standard_chaos(
    seed: int, telemetry_loss: float = 0.10
) -> MonitorFaultInjector:
    """The gate's standard monitor-plane weather.

    Telemetry samples and probe reports are both lost at
    ``telemetry_loss``, for the whole run; one agent crashes for the
    ``CRASH_START_S``–``CRASH_END_S`` window.  Fault ids are pinned so
    two injectors built from the same arguments draw identical fates
    regardless of process history.
    """
    injector = MonitorFaultInjector(seed=seed)
    injector.inject_issue(
        MonitorIssue.TELEMETRY_DROP, start=0.0,
        rate=telemetry_loss, fault_id=0,
    )
    injector.inject_issue(
        MonitorIssue.PROBE_REPORT_LOSS, start=0.0,
        rate=telemetry_loss, fault_id=1,
    )
    injector.inject_issue(
        MonitorIssue.AGENT_CRASH, start=CRASH_START_S, end=CRASH_END_S,
        scope=CRASH_SCOPE, fault_id=2,
    )
    return injector


def _run_case(
    issue,
    seed: int,
    chaos: Optional[MonitorFaultInjector],
) -> Dict[str, object]:
    """One campaign leg (clean or chaotic) for one issue."""
    scenario = build_scenario(
        num_containers=4, gpus_per_container=4, pp=2,
        seed=seed * 100 + issue.value, hosts_per_segment=4,
        chaos=chaos,
        retry_policy=RetryPolicy(seed=seed) if chaos is not None else None,
    )
    scenario.run_for(200)
    scenario.apply_skeleton()
    fault = scenario.inject(
        issue, standard_fault_target(scenario, issue)
    )
    scenario.run_for(120)
    scenario.clear(fault)
    scenario.run_for(40)
    _, outcomes = scenario.score()
    outcome = outcomes[0]
    monitor = _monitor_stats(scenario)
    return {
        "detected": bool(outcome.detected),
        "localized": bool(outcome.localized),
        "detection_delay_s": outcome.detection_delay_s,
        **monitor,
    }


def _monitor_stats(scenario) -> Dict[str, int]:
    """Aggregate hardened-prober counters across the task's agents."""
    stats = {
        "retries": 0, "retry_successes": 0, "reports_lost": 0,
        "monitor_failures": 0, "rounds_skipped": 0,
        "breaker_trips": 0, "breaker_recoveries": 0,
    }
    controller = scenario.hunter.controller
    for task_id in controller.monitored_tasks():
        for agent in controller.agents_of(task_id):
            stats["rounds_skipped"] += agent.rounds_skipped
            prober = agent.prober
            if prober is None:
                continue
            stats["retries"] += prober.retries
            stats["retry_successes"] += prober.retry_successes
            stats["reports_lost"] += prober.reports_lost
            stats["monitor_failures"] += prober.monitor_failures
            if prober.breaker is not None:
                stats["breaker_trips"] += prober.breaker.trips
                stats["breaker_recoveries"] += prober.breaker.recoveries
    return stats


def run_chaos_benchmark(
    quick: bool = False,
    seed: int = 0,
    out: Optional[str] = None,
    telemetry_loss: float = 0.10,
    bounds: Optional[DegradationBounds] = None,
) -> Dict[str, object]:
    """Run the clean-vs-chaos campaign and evaluate the bounds.

    Returns the JSON-ready report; ``report["summary"]["passed"]``
    tells callers whether every :class:`DegradationBounds` held.
    """
    bounds = bounds if bounds is not None else DegradationBounds()
    issues = QUICK_ISSUES if quick else FULL_ISSUES
    rows = []
    for issue in issues:
        clean = _run_case(issue, seed, chaos=None)
        chaotic = _run_case(
            issue, seed, chaos=standard_chaos(seed, telemetry_loss)
        )
        rows.append({
            "issue": issue.name,
            "clean": clean,
            "chaos": chaotic,
        })

    def rate(leg: str, key: str) -> float:
        return sum(1 for r in rows if r[leg][key]) / len(rows)

    clean_recall = rate("clean", "detected")
    chaos_recall = rate("chaos", "detected")
    clean_loc = rate("clean", "localized")
    chaos_loc = rate("chaos", "localized")
    summary = {
        "issues": len(rows),
        "telemetry_loss": telemetry_loss,
        "clean_recall": clean_recall,
        "chaos_recall": chaos_recall,
        "recall_ratio": (
            chaos_recall / clean_recall if clean_recall else 1.0
        ),
        "clean_localization": clean_loc,
        "chaos_localization": chaos_loc,
        "localization_ratio": (
            chaos_loc / clean_loc if clean_loc else 1.0
        ),
        "retries": sum(r["chaos"]["retries"] for r in rows),
        "retry_successes": sum(
            r["chaos"]["retry_successes"] for r in rows
        ),
        "monitor_failures": sum(
            r["chaos"]["monitor_failures"] for r in rows
        ),
        "rounds_skipped": sum(
            r["chaos"]["rounds_skipped"] for r in rows
        ),
        "breaker_trips": sum(r["chaos"]["breaker_trips"] for r in rows),
        "breaker_recoveries": sum(
            r["chaos"]["breaker_recoveries"] for r in rows
        ),
    }
    violations = bounds.check(summary)
    summary["passed"] = not violations
    summary["violations"] = violations
    report = {
        "config": {
            "quick": quick,
            "seed": seed,
            "telemetry_loss": telemetry_loss,
            "crash_scope": CRASH_SCOPE,
            "crash_window_s": [CRASH_START_S, CRASH_END_S],
            "bounds": {
                "min_recall_ratio": bounds.min_recall_ratio,
                "min_localization_ratio": bounds.min_localization_ratio,
            },
        },
        "rows": rows,
        "summary": summary,
    }
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return report


def format_report(report: Dict[str, object]) -> str:
    """Render the gate report for terminals (cf. ``repro bench``)."""
    lines = ["chaos degradation gate: clean vs standard monitor chaos"]
    lines.append(
        f"  {'issue':<28} {'clean':>12} {'chaos':>12} "
        f"{'retries':>8} {'skipped':>8}"
    )

    def leg(case: Dict[str, object]) -> str:
        mark = "det" if case["detected"] else "MISS"
        mark += "+loc" if case["localized"] else ""
        return mark

    for row in report["rows"]:
        lines.append(
            f"  {row['issue'].lower():<28} {leg(row['clean']):>12} "
            f"{leg(row['chaos']):>12} "
            f"{row['chaos']['retries']:>8} "
            f"{row['chaos']['rounds_skipped']:>8}"
        )
    summary = report["summary"]
    lines.append(
        f"recall: clean {summary['clean_recall']:.3f} -> chaos "
        f"{summary['chaos_recall']:.3f} "
        f"(ratio {summary['recall_ratio']:.3f})"
    )
    lines.append(
        f"localization: clean {summary['clean_localization']:.3f} -> "
        f"chaos {summary['chaos_localization']:.3f} "
        f"(ratio {summary['localization_ratio']:.3f})"
    )
    lines.append(
        f"monitor: {summary['retries']} retries "
        f"({summary['retry_successes']} recovered), "
        f"{summary['monitor_failures']} reports abandoned, "
        f"{summary['rounds_skipped']} agent rounds skipped, "
        f"{summary['breaker_trips']} breaker trips / "
        f"{summary['breaker_recoveries']} recoveries"
    )
    if summary["passed"]:
        lines.append("bounds: PASS")
    else:
        for violation in summary["violations"]:
            lines.append(f"bounds: FAIL - {violation}")
    return "\n".join(lines)
