"""Log-normal latency statistics and the long-term Z-test.

Healthy end-to-end RDMA latency over the long term follows a log-normal
distribution (§5.2 of the paper): ``Y = ln(X) ~ N(mu, sigma^2)``.  The
long-term detector estimates (mu, sigma) from a reference window and then
Z-tests later windows' log-means against the estimate; windows that
deviate indicate gradual degradation the short-term detector would have
absorbed into its rolling baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sp_stats

__all__ = [
    "LognormalFit",
    "ZTestResult",
    "fit_lognormal",
    "fit_lognormal_rows",
    "lognormal_goodness",
    "z_test",
    "z_test_rows",
]


@dataclass(frozen=True)
class LognormalFit:
    """MLE parameters of ln(X): mean ``mu`` and std ``sigma``."""

    mu: float
    sigma: float
    count: int

    @property
    def median_latency(self) -> float:
        """The median of the fitted latency distribution."""
        return math.exp(self.mu)

    def quantile(self, q: float) -> float:
        """Latency quantile implied by the fit."""
        if not 0 < q < 1:
            raise ValueError("quantile must be in (0, 1)")
        return math.exp(self.mu + self.sigma * sp_stats.norm.ppf(q))


@dataclass(frozen=True)
class ZTestResult:
    """Outcome of a Z-test of a window against a reference fit."""

    z: float
    p_value: float
    sample_mean_log: float
    reference_mu: float

    def anomalous(self, alpha: float = 1e-3) -> bool:
        """Whether the window deviates at significance level ``alpha``."""
        return self.p_value < alpha


def fit_lognormal(latencies: Sequence[float]) -> LognormalFit:
    """Fit a log-normal to positive latency samples by MLE on logs."""
    data = np.asarray(list(latencies), dtype=np.float64)
    if data.size < 2:
        raise ValueError("need at least two samples to fit")
    if np.any(data <= 0):
        raise ValueError("latencies must be positive")
    logs = np.log(data)
    sigma = float(logs.std(ddof=1))
    return LognormalFit(mu=float(logs.mean()), sigma=max(sigma, 1e-9),
                        count=int(data.size))


def z_test(fit: LognormalFit, window: Sequence[float]) -> ZTestResult:
    """Z-test a later window's log-mean against the reference fit.

    Under H0 (no change) the window's log-mean is approximately
    ``N(mu, sigma^2 / n)``; a two-sided p-value below the threshold means
    the latency distribution has drifted (Figure 14 of the paper).
    """
    data = np.asarray(list(window), dtype=np.float64)
    if data.size < 2:
        raise ValueError("need at least two samples to test")
    if np.any(data <= 0):
        raise ValueError("latencies must be positive")
    logs = np.log(data)
    sample_mean = float(logs.mean())
    stderr = fit.sigma / math.sqrt(data.size)
    z = (sample_mean - fit.mu) / max(stderr, 1e-12)
    p = 2.0 * float(sp_stats.norm.sf(abs(z)))
    return ZTestResult(
        z=float(z), p_value=p,
        sample_mean_log=sample_mean, reference_mu=fit.mu,
    )


def _masked_log_moments(
    values: np.ndarray, counts: np.ndarray
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Row-wise (log-mean, ddof=1 log-std, mask) of a padded matrix.

    ``values`` is (R, C) with row i holding ``counts[i]`` positive
    latencies followed by padding (any value ≥ 0 works; pads are
    masked out of every reduction).  The moments mirror
    :func:`fit_lognormal` — two-pass mean/variance over logs — so a
    batched fit agrees with the scalar one to float rounding.
    """
    vals = np.asarray(values, dtype=np.float64)
    n = np.asarray(counts, dtype=np.int64)
    if vals.ndim != 2:
        raise ValueError("values must be a 2-D padded matrix")
    if np.any(n < 2):
        raise ValueError("every row needs at least two samples")
    mask = np.arange(vals.shape[1])[None, :] < n[:, None]
    if np.any(np.where(mask, vals, 1.0) <= 0):
        raise ValueError("latencies must be positive")
    logs = np.log(np.where(mask, vals, 1.0))
    mean = np.add.reduce(np.where(mask, logs, 0.0), axis=1) / n
    diff = np.where(mask, logs - mean[:, None], 0.0)
    var = np.add.reduce(diff * diff, axis=1)
    return mean, var, mask


def fit_lognormal_rows(
    values: np.ndarray, counts: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Batched :func:`fit_lognormal`: (mu, sigma) arrays per row.

    One vectorized MLE over many pairs' reference windows at once —
    the columnar long-term detector fits every pair whose first
    30-minute aggregate closed in the same flush with two reductions
    instead of a per-pair Python loop.
    """
    mean, var, _ = _masked_log_moments(values, counts)
    n = np.asarray(counts, dtype=np.int64)
    sigma = np.sqrt(var / (n - 1))
    return mean, np.maximum(sigma, 1e-9)


def z_test_rows(
    mu: np.ndarray,
    sigma: np.ndarray,
    values: np.ndarray,
    counts: np.ndarray,
) -> "tuple[np.ndarray, np.ndarray]":
    """Batched :func:`z_test`: (z, p_value) arrays per row.

    ``mu``/``sigma`` are each row's reference fit; ``values``/``counts``
    the padded later windows.  The survival function is evaluated once
    over the whole batch.
    """
    mean, _, _ = _masked_log_moments(values, counts)
    n = np.asarray(counts, dtype=np.int64)
    stderr = np.asarray(sigma, dtype=np.float64) / np.sqrt(n)
    z = (mean - np.asarray(mu, dtype=np.float64)) / np.maximum(
        stderr, 1e-12
    )
    p = 2.0 * sp_stats.norm.sf(np.abs(z))
    return z, np.asarray(p, dtype=np.float64)


def lognormal_goodness(latencies: Sequence[float]) -> float:
    """Kolmogorov–Smirnov p-value of log-normality of the samples.

    Used to validate the modelling assumption before trusting the Z-test
    (high p-value = consistent with a log-normal).
    """
    data = np.asarray(list(latencies), dtype=np.float64)
    if data.size < 8:
        raise ValueError("need at least eight samples for a KS test")
    if np.any(data <= 0):
        raise ValueError("latencies must be positive")
    logs = np.log(data)
    standardized = (logs - logs.mean()) / max(logs.std(ddof=1), 1e-12)
    return float(sp_stats.kstest(standardized, "norm").pvalue)
