"""Short-Time Fourier Transform features for traffic burst cycles.

SkeletonHunter converts each RNIC's 1 Hz throughput series into the
frequency domain with STFT (§5.1 of the paper; chosen over wavelet/DFT
for its low cost and time-varying resolution).  Two endpoints at the same
pipeline position produce nearly identical spectrograms; endpoints at
different positions differ in either their dominant micro-burst frequency
or in where that energy sits inside the iteration (the PP phase shift),
both of which the flattened time-frequency feature preserves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import signal as sp_signal

__all__ = [
    "StftConfig",
    "dominant_frequency",
    "feature_matrix",
    "phase_shift_seconds",
    "stft_feature",
]


@dataclass(frozen=True)
class StftConfig:
    """Window parameters for the traffic STFT."""

    sample_rate_hz: float = 1.0
    nperseg: int = 64
    noverlap: int = 32
    log_compress: bool = True

    def __post_init__(self) -> None:
        if self.nperseg < 8:
            raise ValueError("nperseg must be at least 8")
        if not 0 <= self.noverlap < self.nperseg:
            raise ValueError("noverlap must be in [0, nperseg)")


def _spectrogram(series: np.ndarray, config: StftConfig) -> np.ndarray:
    """|STFT| magnitude, shape (freq_bins, time_frames)."""
    data = np.asarray(series, dtype=np.float64)
    if data.ndim != 1:
        raise ValueError("series must be one-dimensional")
    if len(data) < config.nperseg:
        raise ValueError(
            f"series of {len(data)} samples is shorter than one STFT "
            f"window ({config.nperseg})"
        )
    _, _, zxx = sp_signal.stft(
        data,
        fs=config.sample_rate_hz,
        nperseg=config.nperseg,
        noverlap=config.noverlap,
        padded=False,
        boundary=None,
    )
    return np.abs(zxx)


def stft_feature(
    series: np.ndarray, config: Optional[StftConfig] = None
) -> np.ndarray:
    """A unit-norm feature vector describing a series' burst pattern.

    The flattened (optionally log-compressed) spectrogram keeps both the
    frequency content and its placement in time, then L2-normalizes so
    distances compare burst *shape* rather than absolute volume.
    """
    config = config if config is not None else StftConfig()
    mag = _spectrogram(series, config)
    # Drop the DC row: absolute traffic volume is not a grouping signal.
    mag = mag[1:, :]
    if config.log_compress:
        mag = np.log1p(mag)
    flat = mag.ravel()
    norm = np.linalg.norm(flat)
    if norm == 0:
        return flat
    return flat / norm


def feature_matrix(
    series_list: Sequence[np.ndarray], config: Optional[StftConfig] = None
) -> np.ndarray:
    """Stack features of equally-long series into an (n, d) matrix."""
    if not series_list:
        raise ValueError("need at least one series")
    features = [stft_feature(s, config) for s in series_list]
    dims = {f.shape[0] for f in features}
    if len(dims) != 1:
        raise ValueError("all series must produce equally-sized features")
    return np.vstack(features)


def dominant_frequency(
    series: np.ndarray, config: Optional[StftConfig] = None
) -> float:
    """The strongest non-DC frequency (Hz) in a series' average spectrum."""
    config = config if config is not None else StftConfig()
    mag = _spectrogram(series, config)
    mean_spectrum = mag.mean(axis=1)
    freqs = np.fft.rfftfreq(config.nperseg, d=1.0 / config.sample_rate_hz)
    # Ignore DC and the near-DC bin where the iteration envelope dominates.
    if len(mean_spectrum) < 3:
        return float(freqs[int(np.argmax(mean_spectrum))])
    index = int(np.argmax(mean_spectrum[2:])) + 2
    return float(freqs[index])


def phase_shift_seconds(
    reference: np.ndarray,
    shifted: np.ndarray,
    sample_rate_hz: float = 1.0,
    max_shift_s: float = 30.0,
) -> float:
    """Circular cross-correlation lag of ``shifted`` behind ``reference``.

    Used to order pipeline stages: the stage-k series is a time-shifted
    copy of the stage-0 series, so the argmax of the circular correlation
    recovers ``k * stage_delay`` (§5.1: "the PP in the first layer always
    experiences the same traffic burst earlier").
    """
    a = np.asarray(reference, dtype=np.float64)
    b = np.asarray(shifted, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError("series must be equally long")
    a = a - a.mean()
    b = b - b.mean()
    # corr[k] peaks at k = d when ``shifted`` lags ``reference`` by d.
    spectrum = np.conj(np.fft.rfft(a)) * np.fft.rfft(b)
    corr = np.fft.irfft(spectrum, n=len(a))
    max_lag = int(max_shift_s * sample_rate_hz)
    lags = np.arange(len(a))
    window = lags <= max_lag
    best = int(lags[window][np.argmax(corr[window])])
    return best / sample_rate_hz
