"""Analysis toolkit: STFT features, LOF, clustering, latency statistics."""

from repro.analysis.clustering import (
    ClusteringError,
    GroupingResult,
    constrained_position_groups,
)
from repro.analysis.lof import local_outlier_factor, lof_score_of_new_point
from repro.analysis.stats import (
    LognormalFit,
    ZTestResult,
    fit_lognormal,
    lognormal_goodness,
    z_test,
)
from repro.analysis.stft import (
    StftConfig,
    dominant_frequency,
    feature_matrix,
    phase_shift_seconds,
    stft_feature,
)

__all__ = [
    "ClusteringError",
    "GroupingResult",
    "LognormalFit",
    "StftConfig",
    "ZTestResult",
    "constrained_position_groups",
    "dominant_frequency",
    "feature_matrix",
    "fit_lognormal",
    "local_outlier_factor",
    "lof_score_of_new_point",
    "lognormal_goodness",
    "phase_shift_seconds",
    "stft_feature",
    "z_test",
]
