"""Constrained hierarchical clustering of RNIC traffic features.

Implements the grouping step of traffic skeleton inference (§5.1 of the
paper, Equations 1-3): hierarchically cluster STFT features so that RNICs
at the same pipeline position across DP replicas fall into one group,
subject to

* **Eq. 1** — minimize the variance of group sizes (every pipeline replica
  has the same scale),
* **Eq. 2** — the average group size must divide the total RNIC count,
* **Eq. 3** — no two RNICs of the same host may share a group (same-host
  RNICs communicate over NVLink, not the network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage
from scipy.spatial.distance import pdist

__all__ = ["ClusteringError", "GroupingResult", "constrained_position_groups"]


class ClusteringError(ValueError):
    """Raised when no valid grouping satisfies the constraints."""


@dataclass(frozen=True)
class GroupingResult:
    """Outcome of the constrained grouping."""

    labels: np.ndarray           # group index per input row
    num_groups: int              # k (should equal TP x PP)
    group_size: int              # |c| (should equal DP)
    size_variance: float         # Eq. 1 objective at the chosen cut
    cohesion: float              # mean within-group feature distance

    def groups(self) -> List[List[int]]:
        """Members (row indices) of each group."""
        out: List[List[int]] = [[] for _ in range(self.num_groups)]
        for index, label in enumerate(self.labels):
            out[int(label)].append(index)
        return out


def _divisor_candidates(n: int) -> List[int]:
    """Group counts k with n % k == 0 (k = n is legal: DP can be 1)."""
    return [k for k in range(1, n + 1) if n % k == 0]


def _size_variance(labels: np.ndarray, k: int) -> float:
    """Eq. 1: variance of per-group member counts."""
    sizes = np.bincount(labels, minlength=k).astype(np.float64)
    return float(np.var(sizes))


def _mean_within_distance(
    features: np.ndarray, labels: np.ndarray, k: int
) -> float:
    """Average pairwise feature distance inside groups (cohesion)."""
    total, count = 0.0, 0
    for g in range(k):
        members = np.flatnonzero(labels == g)
        if len(members) < 2:
            continue
        sub = features[members]
        total += float(pdist(sub).sum())
        count += len(members) * (len(members) - 1) // 2
    if count == 0:
        return 0.0
    return total / count


def _mean_nearest_separation(
    features: np.ndarray, labels: np.ndarray, k: int
) -> float:
    """Mean distance from each group centroid to its nearest neighbour.

    Separation distinguishes a genuine cut from an over-split one: when a
    true group is split, the two halves' centroids nearly coincide and
    separation collapses towards zero.
    """
    if k < 2:
        return 0.0
    centroids = np.vstack([
        features[np.flatnonzero(labels == g)].mean(axis=0)
        for g in range(k)
    ])
    diff = centroids[:, None, :] - centroids[None, :, :]
    dist = np.sqrt(np.sum(diff * diff, axis=-1))
    np.fill_diagonal(dist, np.inf)
    return float(dist.min(axis=1).mean())


def _violates_host_constraint(
    labels: np.ndarray, hosts: Sequence[Hashable], k: int
) -> bool:
    """Eq. 3: any group holding two RNICs of one host?"""
    seen: Dict[tuple, int] = {}
    for index, label in enumerate(labels):
        key = (int(label), hosts[index])
        seen[key] = seen.get(key, 0) + 1
        if seen[key] > 1:
            return True
    return False


def _repair_host_constraint(
    features: np.ndarray,
    labels: np.ndarray,
    hosts: Sequence[Hashable],
    k: int,
    max_passes: int = 8,
) -> np.ndarray:
    """Greedy swaps moving duplicate-host members to their best other group."""
    labels = labels.copy()
    for _ in range(max_passes):
        moved = False
        for g in range(k):
            members = np.flatnonzero(labels == g)
            by_host: Dict[Hashable, List[int]] = {}
            for m in members:
                by_host.setdefault(hosts[m], []).append(m)
            for host, dup in by_host.items():
                for extra in dup[1:]:
                    target = _best_group_without_host(
                        features, labels, hosts, extra, k
                    )
                    if target is not None:
                        labels[extra] = target
                        moved = True
        if not moved:
            break
    return labels


def _best_group_without_host(
    features: np.ndarray,
    labels: np.ndarray,
    hosts: Sequence[Hashable],
    index: int,
    k: int,
) -> Optional[int]:
    """The nearest-centroid group that does not contain ``index``'s host."""
    best, best_distance = None, np.inf
    for g in range(k):
        if g == labels[index]:
            continue
        members = np.flatnonzero(labels == g)
        if any(hosts[m] == hosts[index] for m in members):
            continue
        if len(members) == 0:
            distance = 0.0
        else:
            centroid = features[members].mean(axis=0)
            distance = float(np.linalg.norm(features[index] - centroid))
        if distance < best_distance:
            best, best_distance = g, distance
    return best


def constrained_position_groups(
    features: np.ndarray,
    hosts: Sequence[Hashable],
    candidate_group_counts: Optional[Sequence[int]] = None,
    cohesion_weight: float = 1.0,
) -> GroupingResult:
    """Group RNICs by pipeline position under Equations 1-3.

    Parameters
    ----------
    features:
        (n, d) STFT feature matrix, one row per RNIC.
    hosts:
        Host key of each RNIC (for the Eq. 3 constraint).
    candidate_group_counts:
        Group counts k to try; defaults to all divisors of n except n
        itself.  The chosen k equals TP x PP and n / k equals DP.
    cohesion_weight:
        Weight of within-group dispersion in the selection score
        (balances Eq. 1 against clustering quality).
    """
    pts = np.asarray(features, dtype=np.float64)
    if pts.ndim != 2:
        raise ClusteringError("features must be a 2-D matrix")
    n = pts.shape[0]
    if len(hosts) != n:
        raise ClusteringError("hosts must align with feature rows")
    if n < 2:
        raise ClusteringError("need at least two RNICs to group")

    candidates = list(candidate_group_counts or _divisor_candidates(n))
    candidates = [k for k in candidates if 1 <= k <= n and n % k == 0]
    if not candidates:
        raise ClusteringError(f"no valid group counts for n={n}")

    tree = linkage(pts, method="ward")
    # Dendrogram gap criterion: cutting into k clusters undoes the last
    # k-1 merges, so the natural k sits where merge heights jump — the
    # step from cheap same-position merges (noise-scale) to expensive
    # cross-position merges.  Unlike a raw cohesion score this is
    # scale-aware: measurement noise inflates both sides of the gap
    # equally and cancels out.
    heights = np.concatenate([[0.0], tree[:, 2]])  # heights[i] = i-th merge

    def height_gap(k: int) -> float:
        # Cut producing k clusters sits between merge n-k and n-k+1.
        # k=1 has no merge above it; giving it a zero gap makes it the
        # tie-break default (it wins exactly when no other cut shows
        # structure — the pure-DP case where all positions coincide).
        if k <= 1:
            return 0.0
        return float(heights[n - k + 1] - heights[n - k])

    best: Optional[GroupingResult] = None
    best_score = -np.inf
    for k in candidates:
        labels = fcluster(tree, t=k, criterion="maxclust") - 1
        if labels.max() + 1 != k:
            continue  # the tree cannot produce k clusters at this cut
        if _violates_host_constraint(labels, hosts, k):
            labels = _repair_host_constraint(pts, labels, hosts, k)
            if _violates_host_constraint(labels, hosts, k):
                continue
        variance = _size_variance(labels, k)
        cohesion = _mean_within_distance(pts, labels, k)
        score = height_gap(k) - cohesion_weight * variance
        if score > best_score:
            best_score = score
            best = GroupingResult(
                labels=labels,
                num_groups=k,
                group_size=n // k,
                size_variance=variance,
                cohesion=cohesion,
            )
    if best is None:
        raise ClusteringError(
            "no candidate group count satisfied the host constraint"
        )
    return best
