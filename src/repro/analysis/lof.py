"""Local Outlier Factor, implemented from scratch.

LOF (Breunig et al., SIGMOD 2000) scores how isolated a point is relative
to the density of its k nearest neighbours: ~1 for inliers, substantially
above 1 for outliers.  SkeletonHunter's short-term detector computes LOF
over the per-window latency summary vectors inside a five-minute look-back
(§5.2 of the paper) and flags windows whose score exceeds a threshold.

Two implementations exist:

* the batch functions (:func:`local_outlier_factor`,
  :func:`lof_score_of_new_point`) recompute everything from the raw
  points — the reference semantics;
* :class:`IncrementalLOF` keeps a rolling reference set with its
  pairwise distances, k-distances, and local reachability densities
  maintained *incrementally* (the ILOF idea), so scoring each new window
  is O(k·n) instead of the O(n²·d) full rebuild.  This is what the
  per-pair short-term detectors hold — with thousands of monitored pairs
  closing a window every 30 s, the rebuild was the detector hot spot.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = [
    "IncrementalLOF",
    "local_outlier_factor",
    "lof_score_of_new_point",
    "lof_scores_fixed_batch",
]


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix, shape (n, n).

    Materializes the (n, n, d) difference tensor and contracts it with
    one einsum.  The ``||a||² + ||b||² - 2·a·b`` identity would be one
    BLAS matmul instead, but its cancellation error grows with the
    point magnitudes; the explicit form keeps every caller — the batch
    references here, :class:`IncrementalLOF`, and
    :func:`lof_scores_fixed_batch` — on the *same* contraction kernel,
    so their scores agree bit-for-bit.  n is a look-back (tens), so the
    tensor stays small.
    """
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt(np.einsum("ijd,ijd->ij", diff, diff))


def local_outlier_factor(points: np.ndarray, k: int = 5) -> np.ndarray:
    """LOF score for every row of ``points``.

    Parameters
    ----------
    points:
        (n, d) array of feature vectors.
    k:
        Neighbourhood size (``MinPts``); clamped to n - 1.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = pts.shape[0]
    if n < 2:
        return np.ones(n)
    k = max(1, min(k, n - 1))

    dist = _pairwise_distances(pts)
    np.fill_diagonal(dist, np.inf)

    # k-distance and k-neighbourhood of every point.
    order = np.argsort(dist, axis=1)
    knn = order[:, :k]
    k_distance = dist[np.arange(n), order[:, k - 1]]

    # Reachability distance: reach(p <- o) = max(k_dist(o), d(p, o)).
    reach = np.maximum(k_distance[knn], dist[np.arange(n)[:, None], knn])

    # Local reachability density.
    with np.errstate(divide="ignore"):
        lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)

    # LOF: mean neighbour density over own density.
    lof = lrd[knn].mean(axis=1) / lrd
    return lof


def lof_score_of_new_point(
    history: np.ndarray, candidate: np.ndarray, k: int = 5
) -> float:
    """LOF of ``candidate`` with respect to an existing ``history`` set.

    This is the online form the detector uses: previous windows form the
    reference set and the newest window is scored against them without
    perturbing their own densities.
    """
    hist = np.asarray(history, dtype=np.float64)
    cand = np.asarray(candidate, dtype=np.float64).reshape(1, -1)
    if hist.ndim != 2:
        raise ValueError("history must be a 2-D array")
    n = hist.shape[0]
    if n < 2:
        return 1.0
    k = max(1, min(k, n - 1))

    dist_hist = _pairwise_distances(hist)
    np.fill_diagonal(dist_hist, np.inf)
    order = np.argsort(dist_hist, axis=1)
    k_distance = dist_hist[np.arange(n), order[:, k - 1]]
    knn_hist = order[:, :k]
    reach_hist = np.maximum(
        k_distance[knn_hist], dist_hist[np.arange(n)[:, None], knn_hist]
    )
    with np.errstate(divide="ignore"):
        lrd_hist = 1.0 / np.maximum(reach_hist.mean(axis=1), 1e-12)

    diff_cand = hist - cand
    dist_cand = np.sqrt(np.einsum("nd,nd->n", diff_cand, diff_cand))
    order_cand = np.argsort(dist_cand)[:k]
    reach_cand = np.maximum(k_distance[order_cand], dist_cand[order_cand])
    lrd_cand = 1.0 / max(float(reach_cand.mean()), 1e-12)
    return float(lrd_hist[order_cand].mean() / lrd_cand)


def lof_scores_fixed_batch(
    histories: np.ndarray, candidates: np.ndarray, k: int = 5
) -> np.ndarray:
    """LOF of ``candidates[i]`` against ``histories[i]`` for every i.

    The batched form of :func:`lof_score_of_new_point` the columnar
    detector uses: ``histories`` is a (B, n, d) stack of per-pair
    reference sets that all hold the *same* number of points n (the
    caller buckets by count), ``candidates`` is the matching (B, d)
    block of new windows.  Every arithmetic step mirrors
    :meth:`IncrementalLOF.score` over the same cached quantities —
    explicit-difference distances through the same einsum contraction
    kernel, reach means divided by ``k_eff`` and clamped at 1e-12 — so
    per-row results agree with the incremental state bit-for-bit.
    Rows with n < 2 score a neutral 1.0.
    """
    hist = np.asarray(histories, dtype=np.float64)
    cand = np.asarray(candidates, dtype=np.float64)
    if hist.ndim != 3 or cand.ndim != 2:
        raise ValueError("histories must be (B, n, d), candidates (B, d)")
    batch, n, _ = hist.shape
    if batch == 0:
        return np.empty(0)
    if n < 2:
        return np.ones(batch)
    k_eff = max(1, min(k, n - 1))

    diff = hist[:, :, None, :] - hist[:, None, :, :]
    dist = np.sqrt(np.einsum("bnmd,bnmd->bnm", diff, diff))
    rows = np.arange(n)
    dist[:, rows, rows] = np.inf

    # Per-row k-distance and local reachability density of the
    # reference points (same formulas as IncrementalLOF._refresh_all).
    idx = np.argpartition(dist, k_eff - 1, axis=2)[:, :, :k_eff]
    vals = np.take_along_axis(dist, idx, axis=2)
    kd = vals.max(axis=2)
    b_ix = np.arange(batch)[:, None, None]
    reach = np.maximum(kd[b_ix, idx], vals)
    lrd = 1.0 / np.maximum(
        np.add.reduce(reach, axis=2) / k_eff, 1e-12
    )

    # Candidate side (IncrementalLOF.score).
    diff_c = hist - cand[:, None, :]
    d_c = np.sqrt(np.einsum("bnd,bnd->bn", diff_c, diff_c))
    nn = np.argpartition(d_c, k_eff - 1, axis=1)[:, :k_eff]
    flat = np.arange(batch)[:, None]
    reach_c = np.maximum(kd[flat, nn], np.take_along_axis(d_c, nn, axis=1))
    lrd_c = 1.0 / np.maximum(
        np.add.reduce(reach_c, axis=1) / k_eff, 1e-12
    )
    return np.add.reduce(lrd[flat, nn], axis=1) / k_eff / lrd_c


class IncrementalLOF:
    """A rolling LOF reference set with incrementally maintained state.

    Holds up to ``capacity`` points (oldest evicted first) in
    preallocated buffers.  Appending a point adds one O(n·d) distance
    row and re-derives k-distances / local reachability densities — in
    one fused vectorized pass while the set is small, and selectively
    (only the rows whose k-neighbourhood the insertion or eviction
    actually touched) once n outgrows the fused pass; :meth:`score` is
    O(k·n) either way.  Scores agree with
    :func:`lof_score_of_new_point` on the same reference set (same
    formulas over the same cached quantities, to float rounding).
    """

    #: Below this size a full vectorized refresh beats the selective
    #: bookkeeping (everything is numpy-call-overhead bound).
    _FUSED_MAX = 32

    def __init__(self, k: int = 5, capacity: Optional[int] = None) -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if capacity is not None and capacity < 2:
            raise ValueError("capacity must be >= 2")
        self.k = k
        self.capacity = capacity
        self._n = 0
        self._pts: Optional[np.ndarray] = None    # (cap, d) buffer
        self._dist: Optional[np.ndarray] = None   # (cap, cap), inf diag
        self._k_distance: Optional[np.ndarray] = None
        self._lrd: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self._n

    @property
    def points(self) -> np.ndarray:
        """The current reference set, oldest row first (read-only)."""
        if self._pts is None:
            return np.empty((0, 0))
        return self._pts[:self._n]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------

    def _allocate(self, size: int, dim: int) -> None:
        pts = np.empty((size, dim))
        dist = np.full((size, size), np.inf)
        kd = np.full(size, np.inf)
        lrd = np.zeros(size)
        if self._n:
            m = self._n
            pts[:m] = self._pts[:m]
            dist[:m, :m] = self._dist[:m, :m]
            kd[:m] = self._k_distance[:m]
            lrd[:m] = self._lrd[:m]
        self._pts, self._dist = pts, dist
        self._k_distance, self._lrd = kd, lrd

    def append(self, point: np.ndarray) -> None:
        """Add a point, evicting the oldest when at capacity."""
        p = np.asarray(point, dtype=np.float64).ravel()
        if self._pts is None:
            self._allocate(min(self.capacity or 16, 64), p.shape[0])
        n = self._n
        fused = (
            min(n + 1, self.capacity or n + 1) <= self._FUSED_MAX
            or n <= self.k
        )

        affected = None
        if self.capacity is not None and n >= self.capacity:
            if not fused:
                # Rows that counted the evicted point among their k
                # nearest have a stale (too small) k-distance.  The
                # slice is aligned with the post-shift indices already.
                affected = np.nonzero(
                    self._dist[0, 1:n] <= self._k_distance[1:n]
                )[0]
                self._k_distance[:n - 1] = self._k_distance[1:n]
                self._lrd[:n - 1] = self._lrd[1:n]
            self._pts[:n - 1] = self._pts[1:n]
            self._dist[:n - 1, :n - 1] = self._dist[1:n, 1:n]
            n -= 1
        elif n == self._pts.shape[0]:
            grown = 2 * n
            if self.capacity is not None:
                grown = min(grown, self.capacity)
            self._allocate(grown, self._pts.shape[1])

        d_row = self._pts[:n] - p
        d_new = np.sqrt(np.einsum("nd,nd->n", d_row, d_row))
        self._pts[n] = p
        self._dist[n, :n] = d_new
        self._dist[:n, n] = d_new
        self._dist[n, n] = np.inf
        n += 1
        self._n = n
        if n < 2:
            return

        k_eff = min(self.k, n - 1)
        if fused:
            self._refresh_all(k_eff)
            return
        # Existing rows the new point lands inside the current
        # k-distance of gain a nearer neighbour.  Rows with a stale
        # (eviction-shrunk) k-distance are already in ``affected``.
        closer = np.nonzero(d_new <= self._k_distance[:n - 1])[0]
        pieces = [closer, np.array([n - 1], dtype=np.intp)]
        if affected is not None and affected.size:
            pieces.append(affected)
        rows = np.unique(np.concatenate(pieces)).astype(np.intp)
        self._refresh_rows(rows, k_eff)

    def _refresh_all(self, k_eff: int) -> None:
        """One fused k-distance + lrd pass over the whole set."""
        n = self._n
        dist = self._dist[:n, :n]
        idx = np.argpartition(dist, k_eff - 1, axis=1)[:, :k_eff]
        vals = np.take_along_axis(dist, idx, axis=1)
        kd = vals.max(axis=1)
        reach = np.maximum(kd[idx], vals)
        self._k_distance[:n] = kd
        self._lrd[:n] = 1.0 / np.maximum(
            np.add.reduce(reach, axis=1) / k_eff, 1e-12
        )

    def _refresh_rows(self, rows: np.ndarray, k_eff: int) -> None:
        """Recompute k-distance and lrd for ``rows`` only."""
        n = self._n
        dist = self._dist[:n, :n]
        sub = dist[rows]
        idx = np.argpartition(sub, k_eff - 1, axis=1)[:, :k_eff]
        vals = np.take_along_axis(sub, idx, axis=1)
        kd = vals.max(axis=1)
        changed = rows[kd != self._k_distance[rows]]
        self._k_distance[rows] = kd

        # A row's density depends on its neighbours' k-distances, so any
        # row that holds a changed row inside its own k-distance must
        # refresh too (a superset of exact kNN membership — harmless).
        if changed.size:
            within = np.nonzero(
                (dist[:, changed] <= self._k_distance[:n, None]).any(axis=1)
            )[0]
            lrd_rows = np.union1d(rows, within).astype(np.intp)
            sub = dist[lrd_rows]
            idx = np.argpartition(sub, k_eff - 1, axis=1)[:, :k_eff]
            vals = np.take_along_axis(sub, idx, axis=1)
        else:
            lrd_rows = rows
        reach = np.maximum(self._k_distance[idx], vals)
        self._lrd[lrd_rows] = 1.0 / np.maximum(
            np.add.reduce(reach, axis=1) / k_eff, 1e-12
        )

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------

    def score(self, candidate: np.ndarray) -> float:
        """LOF of ``candidate`` against the current reference set.

        The candidate does not join the set (call :meth:`append` for
        that); fewer than two reference points score a neutral 1.0,
        matching :func:`lof_score_of_new_point`.
        """
        n = self._n
        if n < 2:
            return 1.0
        cand = np.asarray(candidate, dtype=np.float64).ravel()
        k_eff = min(self.k, n - 1)
        diff_c = self._pts[:n] - cand
        d_c = np.sqrt(np.einsum("nd,nd->n", diff_c, diff_c))
        nn = np.argpartition(d_c, k_eff - 1)[:k_eff]
        reach = np.maximum(self._k_distance[nn], d_c[nn])
        lrd_cand = 1.0 / max(
            float(np.add.reduce(reach)) / k_eff, 1e-12
        )
        return float(
            np.add.reduce(self._lrd[nn]) / k_eff / lrd_cand
        )
