"""Local Outlier Factor, implemented from scratch.

LOF (Breunig et al., SIGMOD 2000) scores how isolated a point is relative
to the density of its k nearest neighbours: ~1 for inliers, substantially
above 1 for outliers.  SkeletonHunter's short-term detector computes LOF
over the per-window latency summary vectors inside a five-minute look-back
(§5.2 of the paper) and flags windows whose score exceeds a threshold.
"""

from __future__ import annotations

import numpy as np

__all__ = ["local_outlier_factor", "lof_score_of_new_point"]


def _pairwise_distances(points: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix, shape (n, n)."""
    diff = points[:, None, :] - points[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


def local_outlier_factor(points: np.ndarray, k: int = 5) -> np.ndarray:
    """LOF score for every row of ``points``.

    Parameters
    ----------
    points:
        (n, d) array of feature vectors.
    k:
        Neighbourhood size (``MinPts``); clamped to n - 1.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError("points must be a 2-D array")
    n = pts.shape[0]
    if n < 2:
        return np.ones(n)
    k = max(1, min(k, n - 1))

    dist = _pairwise_distances(pts)
    np.fill_diagonal(dist, np.inf)

    # k-distance and k-neighbourhood of every point.
    order = np.argsort(dist, axis=1)
    knn = order[:, :k]
    k_distance = dist[np.arange(n), order[:, k - 1]]

    # Reachability distance: reach(p <- o) = max(k_dist(o), d(p, o)).
    reach = np.maximum(k_distance[knn], dist[np.arange(n)[:, None], knn])

    # Local reachability density.
    with np.errstate(divide="ignore"):
        lrd = 1.0 / np.maximum(reach.mean(axis=1), 1e-12)

    # LOF: mean neighbour density over own density.
    lof = lrd[knn].mean(axis=1) / lrd
    return lof


def lof_score_of_new_point(
    history: np.ndarray, candidate: np.ndarray, k: int = 5
) -> float:
    """LOF of ``candidate`` with respect to an existing ``history`` set.

    This is the online form the detector uses: previous windows form the
    reference set and the newest window is scored against them without
    perturbing their own densities.
    """
    hist = np.asarray(history, dtype=np.float64)
    cand = np.asarray(candidate, dtype=np.float64).reshape(1, -1)
    if hist.ndim != 2:
        raise ValueError("history must be a 2-D array")
    n = hist.shape[0]
    if n < 2:
        return 1.0
    k = max(1, min(k, n - 1))

    dist_hist = _pairwise_distances(hist)
    np.fill_diagonal(dist_hist, np.inf)
    order = np.argsort(dist_hist, axis=1)
    k_distance = dist_hist[np.arange(n), order[:, k - 1]]
    knn_hist = order[:, :k]
    reach_hist = np.maximum(
        k_distance[knn_hist], dist_hist[np.arange(n)[:, None], knn_hist]
    )
    with np.errstate(divide="ignore"):
        lrd_hist = 1.0 / np.maximum(reach_hist.mean(axis=1), 1e-12)

    dist_cand = np.sqrt(np.sum((hist - cand) ** 2, axis=1))
    order_cand = np.argsort(dist_cand)[:k]
    reach_cand = np.maximum(k_distance[order_cand], dist_cand[order_cand])
    lrd_cand = 1.0 / max(float(reach_cand.mean()), 1e-12)
    return float(lrd_hist[order_cand].mean() / lrd_cand)
