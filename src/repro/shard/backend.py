"""Execution backends for shard monitors.

Two interchangeable backends run a :class:`ShardMonitor`:

* :class:`InProcessBackend` keeps every monitor in the coordinator's
  process — zero IPC, ideal for tests and for hosts where the python
  interpreter is the bottleneck anyway; and
* :class:`MultiprocessingBackend` forks one worker process per shard
  and speaks a tiny command protocol over a pipe, isolating each
  shard's replica (a crash or kill of one worker never takes down the
  plane — the coordinator sees the dead pipe and fails the shard over).

Both expose the same two-phase chunk API (``begin_chunk`` dispatches,
``finish_chunk`` collects) so the coordinator can overlap all shards'
rounds before collecting any result.  Death is signalled exclusively
by :class:`ShardDeadError` — there are no wall-clock timeouts anywhere
(the plane must stay deterministic), so a worker death is either a
real crash or a scripted :meth:`kill` from a chaos test.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from typing import List, Optional, Sequence, Tuple

from repro.core.pinglist import ProbePair
from repro.shard.monitor import ChunkResult, ShardMonitor
from repro.shard.spec import ShardScenarioSpec

__all__ = [
    "InProcessBackend",
    "MultiprocessingBackend",
    "ShardDeadError",
    "ShardHandle",
]


class ShardDeadError(RuntimeError):
    """The shard can no longer execute rounds (crashed or killed)."""


class ShardHandle:
    """One shard as the coordinator sees it (backend-agnostic)."""

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.alive = True

    def begin_chunk(self, start_round: int, end_round: int) -> None:
        raise NotImplementedError

    def finish_chunk(self) -> ChunkResult:
        raise NotImplementedError

    def run_chunk(
        self, start_round: int, end_round: int
    ) -> ChunkResult:
        """Convenience: dispatch and collect in one call."""
        self.begin_chunk(start_round, end_round)
        return self.finish_chunk()

    def rebuild(
        self, pairs: Sequence[ProbePair], upto_round: int
    ) -> Optional[ChunkResult]:
        raise NotImplementedError

    def kill(self) -> None:
        """Simulate a shard crash (chaos/failover testing)."""
        raise NotImplementedError

    def stop(self) -> None:
        """Orderly shutdown."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# In-process backend
# ----------------------------------------------------------------------


class InProcessHandle(ShardHandle):
    """A shard monitor living in the coordinator's process."""

    def __init__(
        self,
        shard_id: int,
        spec: ShardScenarioSpec,
        pairs: Sequence[ProbePair],
    ) -> None:
        super().__init__(shard_id)
        self._monitor = ShardMonitor(shard_id, spec, pairs)
        self._pending: Optional[Tuple[int, int]] = None

    def begin_chunk(self, start_round: int, end_round: int) -> None:
        if not self.alive:
            raise ShardDeadError(f"shard {self.shard_id} is dead")
        self._pending = (start_round, end_round)

    def finish_chunk(self) -> ChunkResult:
        if not self.alive:
            raise ShardDeadError(f"shard {self.shard_id} is dead")
        if self._pending is None:
            raise RuntimeError("finish_chunk without begin_chunk")
        start_round, end_round = self._pending
        self._pending = None
        return self._monitor.run_rounds(start_round, end_round)

    def rebuild(
        self, pairs: Sequence[ProbePair], upto_round: int
    ) -> Optional[ChunkResult]:
        if not self.alive:
            raise ShardDeadError(f"shard {self.shard_id} is dead")
        return self._monitor.adopt(pairs, upto_round)

    def kill(self) -> None:
        self.alive = False

    def stop(self) -> None:
        self.alive = False


class InProcessBackend:
    """Runs every shard inside the coordinator's process."""

    name = "inproc"

    def spawn(
        self,
        shard_id: int,
        spec: ShardScenarioSpec,
        pairs: Sequence[ProbePair],
    ) -> ShardHandle:
        return InProcessHandle(shard_id, spec, pairs)


# ----------------------------------------------------------------------
# Multiprocessing backend
# ----------------------------------------------------------------------


def _shard_worker_main(conn, shard_id, spec, pairs) -> None:
    """Worker entry point: serve chunk/rebuild commands over the pipe.

    Runs in a forked child.  Must stay deterministic — no wall clocks,
    no process ids, no unseeded RNG (enforced by the determinism lint's
    ``worker-determinism`` rule).  Any exception is shipped back as an
    ``("err", traceback)`` reply and ends the worker; the coordinator
    treats it like a death and fails the shard over.
    """
    monitor = ShardMonitor(shard_id, spec, pairs)
    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        command = message[0]
        if command == "stop":
            conn.send(("ok", None))
            break
        try:
            if command == "chunk":
                result = monitor.run_rounds(message[1], message[2])
            elif command == "rebuild":
                result = monitor.adopt(message[1], message[2])
            else:
                raise ValueError(f"unknown command {command!r}")
        except Exception:  # noqa: BLE001 - ship the crash, then die
            conn.send(("err", traceback.format_exc()))
            break
        conn.send(("ok", result))
    conn.close()


class MultiprocessingHandle(ShardHandle):
    """A shard monitor in a forked worker process."""

    def __init__(
        self,
        shard_id: int,
        spec: ShardScenarioSpec,
        pairs: Sequence[ProbePair],
        context,
    ) -> None:
        super().__init__(shard_id)
        self._parent_conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_shard_worker_main,
            args=(child_conn, shard_id, spec, tuple(pairs)),
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def _send(self, message) -> None:
        if not self.alive:
            raise ShardDeadError(f"shard {self.shard_id} is dead")
        try:
            self._parent_conn.send(message)
        except (BrokenPipeError, OSError) as error:
            self.alive = False
            raise ShardDeadError(
                f"shard {self.shard_id} worker is gone"
            ) from error

    def _recv(self):
        if not self.alive:
            raise ShardDeadError(f"shard {self.shard_id} is dead")
        try:
            kind, payload = self._parent_conn.recv()
        except (EOFError, OSError) as error:
            self.alive = False
            raise ShardDeadError(
                f"shard {self.shard_id} worker died"
            ) from error
        if kind == "err":
            self.alive = False
            raise ShardDeadError(
                f"shard {self.shard_id} worker crashed:\n{payload}"
            )
        return payload

    def begin_chunk(self, start_round: int, end_round: int) -> None:
        self._send(("chunk", start_round, end_round))

    def finish_chunk(self) -> ChunkResult:
        return self._recv()

    def rebuild(
        self, pairs: Sequence[ProbePair], upto_round: int
    ) -> Optional[ChunkResult]:
        self._send(("rebuild", tuple(pairs), upto_round))
        return self._recv()

    def kill(self) -> None:
        if self._process.is_alive():
            self._process.terminate()
            self._process.join()
        self.alive = False

    def stop(self) -> None:
        if self.alive and self._process.is_alive():
            try:
                self._parent_conn.send(("stop",))
                self._parent_conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        if self._process.is_alive():
            self._process.terminate()
        self._process.join()
        self.alive = False


class MultiprocessingBackend:
    """Runs each shard in its own worker process.

    Workers default to ``fork`` where the platform offers it (cheapest:
    the spec is inherited, not pickled) and fall back to ``spawn``
    elsewhere — ``fork`` does not exist on Windows and is fragile with
    threads on macOS.  Both methods are correct; the protocol ships the
    spec and pairs explicitly either way.
    """

    name = "mp"

    def __init__(self, start_method: Optional[str] = None) -> None:
        if start_method is None:
            start_method = (
                "fork"
                if "fork" in mp.get_all_start_methods()
                else "spawn"
            )
        self._context = mp.get_context(start_method)

    def spawn(
        self,
        shard_id: int,
        spec: ShardScenarioSpec,
        pairs: Sequence[ProbePair],
    ) -> ShardHandle:
        return MultiprocessingHandle(
            shard_id, spec, pairs, self._context
        )


def backend_named(name: str):
    """The backend registered under ``name`` ("inproc" or "mp")."""
    if name == "inproc":
        return InProcessBackend()
    if name == "mp":
        return MultiprocessingBackend()
    raise ValueError(f"unknown shard backend {name!r}")


def available_backends() -> List[str]:
    """Names accepted by :func:`backend_named`."""
    return ["inproc", "mp"]
