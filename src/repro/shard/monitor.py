"""The per-shard monitoring worker.

A :class:`ShardMonitor` owns one replica of the cluster (built from the
picklable spec), the shard's slice of the probe-pair universe, and its
own analyzer.  It executes probe rounds through the *unmodified* agent
path — each :class:`~repro.core.agent.OverlayAgent` scans its (now
shard-local) ping list and probes via the fabric's batched fast path —
so a shard is literally the existing monitoring loop over fewer pairs.

Because probe draws are pairwise-keyed by the run seed and the fault
schedule replays by round number, two monitors covering the same pair
observe byte-identical probe results; the analyzer's per-pair windows
then open identical failure events.  That is the whole equivalence
story: sharding changes who watches a pair, never what the pair does.

The per-shard seed (``derive_seed(run_seed, "shard:<id>")``) seeds the
shard's private RNG registry.  It deliberately does *not* feed probe
draws — those must be shard-independent — and today only mints the
shard's identity token reported in heartbeats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.cluster.identifiers import EndpointId
from repro.core.agent import OverlayAgent
from repro.core.analyzer import Analyzer, FailureEvent
from repro.core.pinglist import PingList, ProbePair
from repro.core.probing import ResilientProber
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.network.issues import Symptom
from repro.shard.spec import (
    FaultScheduleRunner,
    ShardScenarioSpec,
    build_monitor_chaos,
    build_replica,
)
from repro.sim.rng import RngRegistry, derive_seed

__all__ = ["ChunkResult", "EventRecord", "ShardMonitor"]


@dataclass(frozen=True)
class EventRecord:
    """A failure event in picklable, cross-process form."""

    src: EndpointId
    dst: EndpointId
    first_detected_at: float
    symptom: str
    #: The pair's pinned underlay route (device names, source to
    #: destination), reported by the shard's underlay traceroute so the
    #: coordinator can vote on links without re-tracing.
    path_devices: Optional[Tuple[str, ...]]

    @property
    def pair(self) -> ProbePair:
        """The failing pair."""
        return ProbePair.canonical(self.src, self.dst)

    @property
    def key(self) -> Tuple[ProbePair, float]:
        """The analyzer's incident identity: (pair, first detection)."""
        return (self.pair, self.first_detected_at)

    @property
    def symptom_type(self) -> Symptom:
        """The symptom as the catalogue enum."""
        return Symptom[self.symptom]

    def to_failure_event(self) -> FailureEvent:
        """Rehydrate a :class:`FailureEvent` for the localizer."""
        return FailureEvent(
            pair=self.pair,
            first_detected_at=self.first_detected_at,
            symptom=self.symptom_type,
        )


@dataclass(frozen=True)
class ChunkResult:
    """One shard's report for a chunk of rounds (its heartbeat)."""

    shard_id: int
    token: str
    start_round: int
    end_round: int
    sim_time: float
    pair_count: int
    agent_count: int
    probes_sent: int
    probes_lost: int
    events: Tuple[EventRecord, ...]
    replayed: bool = False
    #: Per-agent circuit-breaker snapshots at the chunk's end — rows of
    #: ``(container_id, state, consecutive_failures, opened_at, trips,
    #: recoveries)``, sorted by container.  Empty when the spec has no
    #: monitor-fault schedule (the default also keeps old pickles
    #: loadable).  Breakers are driven purely by simulated time, so an
    #: adopter's post-replay snapshots are bit-identical to those of a
    #: monitor that owned the union pair set from round one.
    breaker_states: Tuple[tuple, ...] = ()


class ShardMonitor:
    """One shard: a replica cluster plus the standard monitoring loop."""

    def __init__(
        self,
        shard_id: int,
        spec: ShardScenarioSpec,
        pairs: Iterable[ProbePair],
    ) -> None:
        self.shard_id = shard_id
        self.spec = spec
        self.pairs: Tuple[ProbePair, ...] = tuple(sorted(set(pairs)))
        self.seed = derive_seed(spec.seed, f"shard:{shard_id}")
        self.rng = RngRegistry(self.seed)
        # A deterministic identity token for heartbeats/status — minted
        # from the shard seed, which (by design) never touches probing.
        self.token = format(
            int(self.rng.stream("token").integers(0, 2 ** 32)), "08x"
        )
        self.rounds_completed = 0
        self._build()

    # ------------------------------------------------------------------
    # Replica construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        self.scenario = build_replica(self.spec)
        self.schedule = FaultScheduleRunner(self.scenario, self.spec)
        self.ping_list = PingList(pairs=set(self.pairs), phase="shard")
        for container_id in self.scenario.task.containers:
            self.ping_list.register(container_id)
        self.analyzer = Analyzer(
            config=self.spec.detector,
            backend=self.spec.analyzer_backend,
        )
        # Monitor-plane chaos: the injector is pure and its fault ids
        # are pinned by the spec, so rebuilding it here (fresh breakers
        # included) before a failover replay reproduces the exact
        # hardened trajectory of a monitor that owned these pairs from
        # round one.
        self.chaos = build_monitor_chaos(self.spec)
        retry = (
            RetryPolicy(seed=self.spec.seed)
            if self.chaos is not None else None
        )
        containers = sorted(
            {pair.src.container for pair in self.pairs}
        )
        self.agents: List[OverlayAgent] = [
            OverlayAgent(
                container=self.scenario.task.containers[container_id],
                ping_list=self.ping_list,
                started_at=0.0,
                prober=(
                    None if self.chaos is None else ResilientProber(
                        self.chaos, retry=retry, breaker=CircuitBreaker()
                    )
                ),
            )
            for container_id in containers
        ]
        self._reported: Set[Tuple[ProbePair, float]] = set()
        self.rounds_completed = 0

    def breaker_snapshots(self) -> Tuple[tuple, ...]:
        """Per-agent breaker snapshots, sorted by container id."""
        rows = []
        for agent in self.agents:
            if agent.prober is None or agent.prober.breaker is None:
                continue
            rows.append(
                (str(agent.container.id),)
                + agent.prober.breaker.snapshot()
            )
        return tuple(sorted(rows))

    # ------------------------------------------------------------------
    # Probe rounds
    # ------------------------------------------------------------------

    def run_rounds(
        self, start_round: int, end_round: int, replayed: bool = False
    ) -> ChunkResult:
        """Run rounds ``start_round..end_round`` inclusive and report."""
        if start_round != self.rounds_completed + 1:
            raise ValueError(
                f"shard {self.shard_id} is at round "
                f"{self.rounds_completed}, cannot start at {start_round}"
            )
        fabric = self.scenario.fabric
        sent0 = fabric.probes_sent
        lost0 = fabric.probes_lost
        now = self.spec.round_time(max(end_round, 1))
        for round_index in range(start_round, end_round + 1):
            self.schedule.advance_to(round_index)
            now = self.spec.round_time(round_index)
            for agent in self.agents:
                for result in agent.execute_round(fabric, now, salt=0):
                    self.analyzer.ingest(result)
            self.analyzer.flush(now)
            self.rounds_completed = round_index
        return ChunkResult(
            shard_id=self.shard_id,
            token=self.token,
            start_round=start_round,
            end_round=end_round,
            sim_time=now,
            pair_count=len(self.pairs),
            agent_count=len(self.agents),
            probes_sent=fabric.probes_sent - sent0,
            probes_lost=fabric.probes_lost - lost0,
            events=self._collect_fresh_events(),
            replayed=replayed,
            breaker_states=self.breaker_snapshots(),
        )

    def _collect_fresh_events(self) -> Tuple[EventRecord, ...]:
        fresh = sorted(
            (
                event for event in self.analyzer.events
                if event.key not in self._reported
            ),
            key=lambda event: (event.first_detected_at, event.pair),
        )
        records = []
        for event in fresh:
            self._reported.add(event.key)
            path = self.scenario.fabric.traceroute(
                event.pair.src, event.pair.dst
            )
            records.append(EventRecord(
                src=event.pair.src,
                dst=event.pair.dst,
                first_detected_at=event.first_detected_at,
                symptom=event.symptom.name,
                path_devices=path.devices if path is not None else None,
            ))
        return tuple(records)

    # ------------------------------------------------------------------
    # Failover adoption
    # ------------------------------------------------------------------

    def adopt(
        self, pairs: Sequence[ProbePair], upto_round: int
    ) -> Optional[ChunkResult]:
        """Take over ``pairs`` from a dead shard.

        Rebuilds a fresh replica for the union pair set and replays
        rounds ``1..upto_round`` against it — probe outcomes are pure
        functions of (seed, pair, time), so after the replay this
        monitor's state is identical to having owned the union from
        round one.  The replay's events (including re-detections of
        incidents the dead shard already reported) come back in the
        result; the coordinator dedups them by event key.
        """
        self.pairs = tuple(sorted(set(self.pairs) | set(pairs)))
        self._build()
        if upto_round < 1:
            return None
        return self.run_rounds(1, upto_round, replayed=True)
