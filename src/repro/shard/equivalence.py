"""The shard-equivalence gate.

The sharded plane's non-negotiable invariant: for a fixed run seed, the
set of opened failure events and the localization verdicts are
identical for every shard count, every backend, and any failover
history.  This module runs the same spec under several configurations
and raises :class:`ShardEquivalenceError` on the first divergence —
the same style of hard gate as :func:`repro.perf.verify_equivalence`
for the probing fast path.  Tests and the CI smoke job call
:func:`verify_shard_equivalence`; ``repro bench-shard`` runs it before
timing anything, so a published speedup can never come from changed
results.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.cluster.identifiers import LinkId
from repro.network.issues import IssueType
from repro.shard.backend import backend_named
from repro.shard.coordinator import ShardCoordinator, ShardRunResult
from repro.shard.spec import FaultSpec, ShardScenarioSpec, build_replica

__all__ = [
    "ShardEquivalenceError",
    "default_equivalence_spec",
    "run_plane",
    "verify_shard_equivalence",
]


class ShardEquivalenceError(AssertionError):
    """A sharded run diverged from the single-shard baseline."""


def run_plane(
    spec: ShardScenarioSpec,
    num_shards: int,
    backend: str = "inproc",
    chunk_rounds: int = 5,
    kill_schedule: Optional[Dict[int, int]] = None,
    recorder=None,
    bus=None,
) -> ShardRunResult:
    """Run the spec'd scenario on the sharded plane, start to finish."""
    coordinator = ShardCoordinator(
        spec,
        num_shards,
        backend=backend_named(backend),
        chunk_rounds=chunk_rounds,
        recorder=recorder,
        kill_schedule=kill_schedule,
        bus=bus,
    )
    return coordinator.run()


def default_equivalence_spec(
    seed: int = 0, total_rounds: int = 30
) -> ShardScenarioSpec:
    """The smoke scenario the gate runs: a 64-endpoint task with one
    hard fault on a switch link, one RNIC port failure, and a container
    crash — enough symptom diversity to exercise overlay, tomography,
    and fast-loss paths without slowing CI down."""
    base = ShardScenarioSpec(
        num_containers=16,
        gpus_per_container=4,
        seed=seed,
        total_rounds=total_rounds,
    )
    probe = build_replica(base)
    rnic = probe.rnic_of_rank(3)
    other_rnic = probe.rnic_of_rank(8)
    tor_link = LinkId.between(
        other_rnic, probe.topology.tor_of(other_rnic)
    )
    victim = sorted(probe.task.containers)[5]
    faults = (
        FaultSpec(
            issue=IssueType.RNIC_PORT_DOWN.name,
            target=rnic,
            start_round=4,
            end_round=18,
        ),
        FaultSpec(
            issue=IssueType.SWITCH_PORT_DOWN.name,
            target=tor_link,
            start_round=8,
        ),
        FaultSpec(
            issue=IssueType.CONTAINER_CRASH.name,
            target=victim,
            start_round=11,
            end_round=22,
        ),
    )
    return ShardScenarioSpec(
        num_containers=base.num_containers,
        gpus_per_container=base.gpus_per_container,
        seed=seed,
        total_rounds=total_rounds,
        faults=faults,
    )


def _compare(
    baseline: ShardRunResult, candidate: ShardRunResult, label: str
) -> None:
    if baseline.event_summary() != candidate.event_summary():
        base_keys = baseline.event_keys()
        cand_keys = candidate.event_keys()
        raise ShardEquivalenceError(
            f"{label}: opened events diverge from the single-shard "
            f"baseline (baseline-only: "
            f"{sorted(map(str, base_keys - cand_keys))[:5]}, "
            f"candidate-only: "
            f"{sorted(map(str, cand_keys - base_keys))[:5]})"
        )
    if baseline.verdict_summary() != candidate.verdict_summary():
        raise ShardEquivalenceError(
            f"{label}: localization verdicts diverge from the "
            f"single-shard baseline:\n"
            f"  baseline:  {baseline.verdict_summary()}\n"
            f"  candidate: {candidate.verdict_summary()}"
        )
    if (
        baseline.vote_table.as_dict()
        != candidate.vote_table.as_dict()
    ):
        raise ShardEquivalenceError(
            f"{label}: merged tomography vote tables diverge"
        )


def verify_shard_equivalence(
    spec: Optional[ShardScenarioSpec] = None,
    shard_counts: Tuple[int, ...] = (2, 4),
    backends: Tuple[str, ...] = ("inproc",),
    analyzer_backends: Tuple[str, ...] = ("columnar", "legacy"),
    with_failover: bool = True,
    chunk_rounds: int = 5,
) -> Dict[str, object]:
    """Run the gate; raises :class:`ShardEquivalenceError` on any diff.

    Compares a ``--shards 1`` in-process baseline against every
    (shard count, backend) combination, plus — with ``with_failover``
    — a 4-shard run where one shard is killed mid-run and its pairs
    fail over.  ``analyzer_backends`` additionally pins the columnar
    detection engine to the legacy per-pair reference: any analyzer
    backend differing from the spec's is run at one shard and at every
    shard count and must open identical events, verdicts, and vote
    tables.  Returns a summary of what was compared.
    """
    spec = spec if spec is not None else default_equivalence_spec()
    baseline = run_plane(spec, 1, "inproc", chunk_rounds=chunk_rounds)
    compared: List[str] = []
    for backend in backends:
        for num_shards in shard_counts:
            label = f"shards={num_shards} backend={backend}"
            candidate = run_plane(
                spec, num_shards, backend, chunk_rounds=chunk_rounds
            )
            _compare(baseline, candidate, label)
            compared.append(label)
    for analyzer_backend in analyzer_backends:
        if analyzer_backend == spec.analyzer_backend:
            continue
        variant = replace(spec, analyzer_backend=analyzer_backend)
        for num_shards in (1,) + tuple(shard_counts):
            label = (
                f"shards={num_shards} analyzer={analyzer_backend}"
            )
            candidate = run_plane(
                variant, num_shards, "inproc",
                chunk_rounds=chunk_rounds,
            )
            _compare(baseline, candidate, label)
            compared.append(label)
    if with_failover:
        for backend in backends:
            label = f"shards=4 backend={backend} kill=1@chunk2"
            candidate = run_plane(
                spec, 4, backend,
                chunk_rounds=chunk_rounds,
                kill_schedule={1: 2},
            )
            if not candidate.reassignments:
                raise ShardEquivalenceError(
                    f"{label}: the scripted kill produced no "
                    f"reassignments — failover never ran"
                )
            _compare(baseline, candidate, label)
            compared.append(label)
    return {
        "baseline_events": len(baseline.events),
        "baseline_verdicts": len(baseline.verdicts),
        "compared": compared,
    }
