"""The shard coordinator: heartbeats, failover, and merged localization.

The coordinator owns what must stay global in a sharded plane:

* **Dispatch + heartbeats.** Rounds are executed in fixed-size chunks.
  Every chunk, the coordinator dispatches to all live shards first and
  collects afterwards (so a parallel backend overlaps their work); each
  :class:`~repro.shard.monitor.ChunkResult` doubles as the shard's
  heartbeat and lands in the metric registry under ``shard.<i>.*``.

* **Failover.** A dead shard (broken pipe, crashed worker, scripted
  kill) is detected at dispatch or collect — never by wall-clock
  timeout, which would be nondeterministic.  Its pairs are re-assigned
  round-robin to the survivors, each of which rebuilds a fresh replica
  and *replays* rounds ``1..r`` for its enlarged pair set.  Replay is
  exact (probe outcomes are pure functions of seed/pair/time), so
  after adoption the survivor is indistinguishable from having owned
  those pairs all along; replayed duplicate events are dropped by key.

* **Merged localization.** Underlay tomography needs votes from *all*
  failing paths, which sharding scatters.  The coordinator collects
  each chunk's newly opened events, dedups them by key, groups them by
  detection time, and runs Algorithm 1 on its own reference replica —
  with worker-reported paths and the global healthy-pair set — exactly
  as the single-process hunter would.  The merged vote table
  (:class:`MergedVoteTable`) accumulates per-link votes across shards.

The equivalence gate (:mod:`repro.shard.equivalence`) holds the whole
construction to its invariant: same seed, same events, same verdicts —
independent of shard count, backend, and failovers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.topology import UnderlayPath
from repro.core.localization import (
    LocalizationReport,
    Localizer,
    healthy_pairs_for,
)
from repro.core.pinglist import ProbePair
from repro.network.issues import Symptom
from repro.shard.backend import (
    InProcessBackend,
    ShardDeadError,
    ShardHandle,
)
from repro.shard.monitor import ChunkResult, EventRecord
from repro.shard.partition import PartitionPlan, TopologyPartitioner
from repro.shard.spec import (
    FaultScheduleRunner,
    ShardScenarioSpec,
    build_replica,
    pair_universe,
)
from repro.sim.metrics import MetricRegistry

__all__ = [
    "MergedVoteTable",
    "Reassignment",
    "ShardCoordinator",
    "ShardPlaneError",
    "ShardRunResult",
    "ShardStatus",
]


class ShardPlaneError(RuntimeError):
    """The plane cannot make progress (e.g. every shard died)."""


@dataclass
class ShardStatus:
    """The coordinator's live view of one shard."""

    shard_id: int
    token: str = ""
    pair_count: int = 0
    agent_count: int = 0
    alive: bool = True
    chunks_completed: int = 0
    last_round: int = 0
    last_sim_time: float = 0.0
    adopted_pairs: int = 0
    #: Latest per-agent circuit-breaker snapshots reported by the shard
    #: (chaos runs only): container id -> (state, consecutive_failures,
    #: opened_at, trips, recoveries).  After failover the adopter's
    #: replayed snapshots land here, so the coordinator's view of an
    #: adopted agent's breaker is the replay-exact one.
    breakers: Dict[str, tuple] = field(default_factory=dict)


@dataclass(frozen=True)
class Reassignment:
    """One failover: pairs moving from a dead shard to a survivor."""

    chunk: int
    round_index: int
    from_shard: int
    to_shard: int
    pair_count: int


class MergedVoteTable:
    """The plane-wide tomography vote table.

    Each unique failure event contributes one vote per physical link on
    its reported path, into the symptom group the localizer's
    tomography stage uses ("hard" for unconnectivity — where healthy
    paths also exonerate — "soft" for everything else).  Votes are
    deduplicated by event key, so replayed events after a failover
    never double-count.
    """

    GROUPS = ("hard", "soft")

    def __init__(self) -> None:
        self._votes: Dict[str, Counter] = {
            group: Counter() for group in self.GROUPS
        }
        self._counted: Set[Tuple[ProbePair, float]] = set()

    def add_event(self, record: EventRecord) -> bool:
        """Count one event's path links; ``False`` if already counted."""
        if record.key in self._counted:
            return False
        self._counted.add(record.key)
        if record.path_devices is None:
            return True
        group = (
            "hard"
            if record.symptom_type == Symptom.UNCONNECTIVITY
            else "soft"
        )
        path = UnderlayPath.through(record.path_devices)
        for link in path.links:
            self._votes[group][link] += 1
        return True

    def votes(self, group: str) -> Dict[str, int]:
        """The group's link votes, keyed by link name (sorted)."""
        return {
            str(link): count
            for link, count in sorted(
                self._votes[group].items(), key=lambda kv: str(kv[0])
            )
        }

    def event_count(self) -> int:
        """Unique events counted so far."""
        return len(self._counted)

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        """Both groups' vote tables, JSON-ready."""
        return {group: self.votes(group) for group in self.GROUPS}


@dataclass
class ShardRunResult:
    """Everything a sharded run produced, in comparison-ready form."""

    spec: ShardScenarioSpec
    num_shards: int
    backend: str
    events: List[EventRecord]
    verdicts: List[Tuple[float, LocalizationReport]]
    vote_table: MergedVoteTable
    statuses: Dict[int, ShardStatus]
    reassignments: List[Reassignment]
    metrics: MetricRegistry
    plan: PartitionPlan

    def event_keys(self) -> Set[Tuple[ProbePair, float]]:
        """The identity set of every opened failure event."""
        return {record.key for record in self.events}

    def breaker_summary(self) -> List[tuple]:
        """Comparable breaker rows from every *live* shard: sorted
        ``(shard_id, container_id, state, consecutive_failures,
        opened_at, trips, recoveries)``.  Dead shards are excluded —
        their last snapshots are stale by definition; the adopters'
        replayed snapshots carry the authoritative state."""
        rows = []
        for shard_id in sorted(self.statuses):
            status = self.statuses[shard_id]
            if not status.alive:
                continue
            for agent_key in sorted(status.breakers):
                rows.append(
                    (shard_id, agent_key) + status.breakers[agent_key]
                )
        return rows

    def event_summary(self) -> List[Tuple[str, str, float, str]]:
        """Sorted (src, dst, detected-at, symptom) rows."""
        return sorted(
            (
                str(r.src), str(r.dst),
                r.first_detected_at, r.symptom,
            )
            for r in self.events
        )

    def verdict_summary(
        self,
    ) -> List[Tuple[float, Tuple[Tuple[str, str, str, float], ...], int]]:
        """Comparable verdicts: per localization batch, its time, the
        ordered (component, class, layer, confidence) diagnoses, and
        the unexplained-event count."""
        summary = []
        for at, report in self.verdicts:
            diagnoses = tuple(
                (
                    d.component, d.component_class.value,
                    d.layer, round(d.confidence, 9),
                )
                for d in report.diagnoses
            )
            summary.append((at, diagnoses, len(report.unexplained)))
        return summary


class ShardCoordinator:
    """Drives N shard monitors to the spec's horizon, merging results."""

    def __init__(
        self,
        spec: ShardScenarioSpec,
        num_shards: int,
        backend=None,
        chunk_rounds: int = 5,
        recorder=None,
        kill_schedule: Optional[Dict[int, int]] = None,
        bus=None,
    ) -> None:
        """``kill_schedule`` maps shard id -> chunk index (1-based) at
        whose start the shard is killed (chaos/failover testing)."""
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if chunk_rounds < 1:
            raise ValueError("chunks must contain at least one round")
        self.spec = spec
        self.num_shards = num_shards
        self.backend = backend if backend is not None else (
            InProcessBackend()
        )
        self.chunk_rounds = chunk_rounds
        self.recorder = recorder
        # Telemetry bus: per-shard streams are published here from the
        # merge step only — results are folded in sorted shard-id
        # order, so the bus sees one deterministic interleaving no
        # matter how the backend scheduled the workers.
        self.bus = bus
        self.kill_schedule = dict(kill_schedule or {})
        for shard_id in sorted(self.kill_schedule):
            if not 0 <= shard_id < num_shards:
                raise ValueError(
                    f"kill_schedule shard {shard_id} out of range for "
                    f"{num_shards} shards"
                )

        # The reference replica backs merged localization: Algorithm 1
        # reads overlay tables, RNIC flow tables, and underlay routes,
        # so the coordinator keeps one replica stepped to the current
        # chunk via the same replayable fault schedule the shards use.
        self.reference = build_replica(spec)
        self._reference_schedule = FaultScheduleRunner(
            self.reference, spec
        )
        self.all_pairs = pair_universe(spec, self.reference)
        # Warm the reference overlay exactly as probing would: resolve
        # every pair's flow once, before any scheduled fault applies.
        self.reference.fabric.send_probe_batch(self.all_pairs, 0.0, 0)
        self.localizer = Localizer(
            self.reference.cluster,
            self.reference.fabric,
            recorder=recorder,
        )

        partitioner = TopologyPartitioner(self.reference.cluster)
        self.plan = partitioner.partition(self.all_pairs, num_shards)

        self.metrics = (
            recorder.metrics if recorder is not None else MetricRegistry()
        )
        self.handles: Dict[int, ShardHandle] = {}
        self.statuses: Dict[int, ShardStatus] = {}
        self._pairs_of: Dict[int, Tuple[ProbePair, ...]] = {}
        for shard_id in range(num_shards):
            pairs = self.plan.pairs_of(shard_id)
            self.handles[shard_id] = self.backend.spawn(
                shard_id, spec, pairs
            )
            self._pairs_of[shard_id] = pairs
            self.statuses[shard_id] = ShardStatus(
                shard_id=shard_id, pair_count=len(pairs)
            )

        self.vote_table = MergedVoteTable()
        self.events: List[EventRecord] = []
        self.verdicts: List[Tuple[float, LocalizationReport]] = []
        self.reassignments: List[Reassignment] = []
        self._seen_events: Set[Tuple[ProbePair, float]] = set()

    # ------------------------------------------------------------------
    # The run loop
    # ------------------------------------------------------------------

    def run(self) -> ShardRunResult:
        """Execute all rounds chunk by chunk; returns the merged run."""
        total = self.spec.total_rounds
        chunk = 0
        next_round = 1
        try:
            while next_round <= total:
                chunk += 1
                start = next_round
                end = min(start + self.chunk_rounds - 1, total)
                self._run_chunk(chunk, start, end)
                next_round = end + 1
        finally:
            for handle in self.handles.values():
                if handle.alive:
                    handle.stop()
        return ShardRunResult(
            spec=self.spec,
            num_shards=self.num_shards,
            backend=getattr(self.backend, "name", "inproc"),
            events=list(self.events),
            verdicts=list(self.verdicts),
            vote_table=self.vote_table,
            statuses=self.statuses,
            reassignments=list(self.reassignments),
            metrics=self.metrics,
            plan=self.plan,
        )

    # ------------------------------------------------------------------
    # One chunk
    # ------------------------------------------------------------------

    def _live_shards(self) -> List[int]:
        return sorted(
            shard_id
            for shard_id, handle in self.handles.items()
            if handle.alive
        )

    def _run_chunk(self, chunk: int, start: int, end: int) -> None:
        for shard_id, at_chunk in sorted(self.kill_schedule.items()):
            if at_chunk == chunk and self.handles[shard_id].alive:
                self.handles[shard_id].kill()
                self._mark_dead(shard_id, start)

        results: List[ChunkResult] = []
        dead_this_chunk: List[int] = []

        dispatched: List[int] = []
        for shard_id in self._live_shards():
            try:
                self.handles[shard_id].begin_chunk(start, end)
                dispatched.append(shard_id)
            except ShardDeadError:
                self._mark_dead(shard_id, start)
                dead_this_chunk.append(shard_id)
        for shard_id in dispatched:
            try:
                results.append(self.handles[shard_id].finish_chunk())
            except ShardDeadError:
                self._mark_dead(shard_id, start)
                dead_this_chunk.append(shard_id)

        # Shards killed by schedule before dispatch also need failover.
        dead_this_chunk.extend(
            shard_id for shard_id, at_chunk in sorted(
                self.kill_schedule.items()
            )
            if at_chunk == chunk
            and shard_id not in dead_this_chunk
            and self._pairs_of.get(shard_id)
        )

        if dead_this_chunk:
            results.extend(
                self._failover(chunk, sorted(set(dead_this_chunk)), end)
            )

        fresh = self._merge_results(chunk, end, results)
        self._reference_schedule.advance_to(end)
        self._localize(fresh)

    def _mark_dead(self, shard_id: int, round_index: int) -> None:
        status = self.statuses[shard_id]
        if not status.alive:
            return
        status.alive = False
        # Handles normally mark themselves dead when they raise, but
        # failover correctness (no pair left unowned, worklist
        # termination) must not depend on backend discipline.
        self.handles[shard_id].alive = False
        self.metrics.increment("shard.deaths")
        if self.recorder is not None:
            self.recorder.event(
                "shard.dead",
                sim_time=self.spec.round_time(round_index),
                shard=shard_id,
            )

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def _failover(
        self, chunk: int, dead: List[int], upto_round: int
    ) -> List[ChunkResult]:
        """Reassign dead shards' pairs and replay them on survivors.

        Runs as a worklist: an adopter that dies mid-rebuild re-orphans
        its whole pair set (original + adopted) on the next pass, so no
        pair is ever left unowned.  Exhausting the survivors raises
        :class:`ShardPlaneError`.
        """
        replays: List[ChunkResult] = []
        pending = sorted(set(dead))
        while pending:
            survivors = self._live_shards()
            if not survivors:
                raise ShardPlaneError(
                    f"all shards dead at chunk {chunk}; cannot continue"
                )
            additions: Dict[int, List[ProbePair]] = {
                shard_id: [] for shard_id in survivors
            }
            for dead_id in pending:
                orphaned = sorted(self._pairs_of.pop(dead_id, ()))
                if not orphaned:
                    continue
                for index, pair in enumerate(orphaned):
                    additions[survivors[index % len(survivors)]].append(
                        pair
                    )
                for target in survivors:
                    moved = sum(
                        1 for i, _ in enumerate(orphaned)
                        if survivors[i % len(survivors)] == target
                    )
                    if moved == 0:
                        continue
                    self.reassignments.append(Reassignment(
                        chunk=chunk,
                        round_index=upto_round,
                        from_shard=dead_id,
                        to_shard=target,
                        pair_count=moved,
                    ))
                    self.metrics.increment("shard.reassignments")
                    self.metrics.increment(
                        f"shard.{target}.pairs_adopted", moved
                    )
                    if self.recorder is not None:
                        self.recorder.event(
                            "shard.reassign",
                            sim_time=self.spec.round_time(upto_round),
                            from_shard=dead_id, to_shard=target,
                            pairs=moved,
                        )

            pending = []
            for target in survivors:
                if not additions[target]:
                    continue
                union = tuple(sorted(
                    set(self._pairs_of[target]) | set(additions[target])
                ))
                self._pairs_of[target] = union
                status = self.statuses[target]
                status.adopted_pairs += len(additions[target])
                status.pair_count = len(union)
                try:
                    replay = self.handles[target].rebuild(
                        union, upto_round
                    )
                except ShardDeadError:
                    self._mark_dead(target, upto_round)
                    pending.append(target)
                    continue
                if replay is not None:
                    replays.append(replay)
        return replays

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def _merge_results(
        self, chunk: int, end_round: int, results: List[ChunkResult]
    ) -> List[EventRecord]:
        fresh: List[EventRecord] = []
        for result in sorted(results, key=lambda r: r.shard_id):
            status = self.statuses[result.shard_id]
            status.token = result.token
            status.pair_count = result.pair_count
            status.agent_count = result.agent_count
            status.last_round = max(status.last_round, result.end_round)
            status.last_sim_time = max(
                status.last_sim_time, result.sim_time
            )
            if not result.replayed:
                status.chunks_completed += 1
            for row in result.breaker_states:
                status.breakers[row[0]] = tuple(row[1:])
            scope = f"shard.{result.shard_id}"
            self.metrics.increment("shard.heartbeats")
            self.metrics.increment(
                f"{scope}.probes.sent", result.probes_sent
            )
            self.metrics.increment(
                f"{scope}.probes.lost", result.probes_lost
            )
            self.metrics.series(f"{scope}.heartbeat").record(
                result.sim_time, result.end_round
            )
            # Merged (plane-wide) counters keep their unprefixed names.
            self.metrics.increment("probes.sent", result.probes_sent)
            self.metrics.increment("probes.lost", result.probes_lost)
            for record in result.events:
                if self.vote_table.add_event(record):
                    self.metrics.increment("events.opened")
                if record.key in self._seen_events:
                    continue
                self._seen_events.add(record.key)
                fresh.append(record)
                self.events.append(record)
        self._publish_chunk(chunk, end_round)
        return fresh

    def _publish_chunk(self, chunk: int, end_round: int) -> None:
        """Publish the post-merge shard-health and breaker views."""
        if self.bus is None:
            return
        from repro.bus.core import Topic

        at = self.spec.round_time(end_round)
        self.bus.publish(
            Topic.SHARD_HEALTH,
            sim_time=at,
            chunk=chunk,
            round=end_round,
            shards=[
                {
                    "id": shard_id,
                    "alive": self.statuses[shard_id].alive,
                    "pairs": self.statuses[shard_id].pair_count,
                    "agents": self.statuses[shard_id].agent_count,
                    "chunks": self.statuses[shard_id].chunks_completed,
                    "last_round": self.statuses[shard_id].last_round,
                    "adopted": self.statuses[shard_id].adopted_pairs,
                }
                for shard_id in sorted(self.statuses)
            ],
        )
        rows = []
        for shard_id in sorted(self.statuses):
            status = self.statuses[shard_id]
            if not status.alive:
                continue
            for agent_key in sorted(status.breakers):
                rows.append(
                    [shard_id, agent_key]
                    + list(status.breakers[agent_key])
                )
        if rows:
            self.bus.publish(
                Topic.BREAKERS,
                sim_time=at,
                kind="snapshot",
                chunk=chunk,
                rows=rows,
            )

    # ------------------------------------------------------------------
    # Merged localization
    # ------------------------------------------------------------------

    def _localize(self, fresh: List[EventRecord]) -> None:
        if not fresh:
            return
        ordered = sorted(
            fresh, key=lambda r: (r.first_detected_at, r.pair)
        )
        groups: Dict[float, List[EventRecord]] = {}
        for record in ordered:
            groups.setdefault(record.first_detected_at, []).append(record)
        for at in sorted(groups):
            records = groups[at]
            events = [record.to_failure_event() for record in records]
            if self.bus is not None:
                from repro.bus.core import Topic

                for record in records:
                    self.bus.publish(
                        Topic.EVENTS,
                        sim_time=at,
                        src=str(record.src),
                        dst=str(record.dst),
                        first_detected_at=record.first_detected_at,
                        symptom=record.symptom,
                    )
            paths = {
                record.pair: UnderlayPath.through(record.path_devices)
                for record in records
                if record.path_devices is not None
            }
            healthy = healthy_pairs_for(events, self.all_pairs)
            report = self.localizer.localize(
                events, healthy_pairs=healthy, now=at, paths=paths
            )
            self.verdicts.append((at, report))
            if self.bus is not None:
                from repro.bus.core import Topic

                self.bus.publish(
                    Topic.VERDICTS,
                    sim_time=at,
                    at=at,
                    diagnoses=[
                        [d.component, d.component_class.value, d.layer,
                         round(d.confidence, 9)]
                        for d in report.diagnoses
                    ],
                    unexplained=len(report.unexplained),
                )
            self.metrics.increment(
                "diagnoses.made", len(report.diagnoses)
            )
