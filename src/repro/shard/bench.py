"""Shard-scaling measurements behind ``BENCH_shard.json``.

Measures probe-round throughput of the sharded plane at several shard
counts and backends, after first running the equivalence gate — a
speedup that changed results would be a correctness bug, so the gate
is not optional.

Why sharding speeds up a single machine at all: each overlay agent
scans the *full* active ping list every round to find its own pairs
(``OverlayAgent.my_pairs``), which at N pairs and A agents costs
O(A·N log N) per round.  Sharding divides the list each agent scans by
the shard count, attacking the quadratic term directly — so even with
one CPU core (where the multiprocessing backend cannot add
parallelism) four shards cut per-round time severalfold.  On multicore
hosts the mp backend stacks process parallelism on top.
"""

from __future__ import annotations

import gc
import json
import time
from typing import Dict, List, Optional, Tuple

from repro.core.probing import estimate_sharded_round_duration
from repro.shard.backend import backend_named
from repro.shard.coordinator import ShardCoordinator
from repro.shard.equivalence import verify_shard_equivalence
from repro.shard.spec import ShardScenarioSpec

__all__ = [
    "bench_shard_round",
    "format_report",
    "run_shard_benchmark",
]

#: (endpoints, containers, gpus) sizes: quick for CI, full for the
#: committed artifact's 2048-endpoint acceptance row.
QUICK_SIZE = (128, 16, 8)
FULL_SIZE = (2048, 256, 8)
#: (num_shards, backend) configurations measured per size.
CONFIGS: Tuple[Tuple[int, str], ...] = (
    (1, "inproc"),
    (4, "inproc"),
    (4, "mp"),
)


def _bench_spec(
    containers: int, gpus: int, rounds: int, seed: int
) -> ShardScenarioSpec:
    return ShardScenarioSpec(
        num_containers=containers,
        gpus_per_container=gpus,
        seed=seed,
        total_rounds=rounds,
        pair_mode="ring_chord",
    )


def bench_shard_round(
    containers: int,
    gpus: int,
    num_shards: int,
    backend: str,
    rounds: int = 2,
    warmup_rounds: int = 1,
    seed: int = 0,
) -> Dict[str, object]:
    """Time ``rounds`` probe rounds across the whole plane.

    The coordinator and its shard replicas are built (and one warm-up
    round executed) outside the timed region, so the measurement is
    steady-state round throughput — the quantity that bounds how often
    the plane can probe at a given scale.
    """
    total = warmup_rounds + rounds
    spec = _bench_spec(containers, gpus, total, seed)
    coordinator = ShardCoordinator(
        spec,
        num_shards,
        backend=backend_named(backend),
        chunk_rounds=max(rounds, 1),
    )
    pairs = len(coordinator.all_pairs)
    try:
        if warmup_rounds:
            coordinator._run_chunk(1, 1, warmup_rounds)
        gc.collect()
        started = time.perf_counter()
        coordinator._run_chunk(2, warmup_rounds + 1, total)
        elapsed = time.perf_counter() - started
    finally:
        for handle in coordinator.handles.values():
            if handle.alive:
                handle.stop()
    return {
        "endpoints": containers * gpus,
        "pairs_per_round": pairs,
        "shards": num_shards,
        "backend": backend,
        "rounds": rounds,
        "elapsed_s": elapsed,
        "round_s": elapsed / rounds,
        "probes_per_s": pairs * rounds / elapsed,
        "modeled_round_s": estimate_sharded_round_duration(
            coordinator.plan.assignments
        ),
    }


def run_shard_benchmark(
    quick: bool = False,
    seed: int = 0,
    out: Optional[str] = None,
) -> Dict[str, object]:
    """Run the gate plus the scaling sweep; optionally write JSON."""
    endpoints, containers, gpus = QUICK_SIZE if quick else FULL_SIZE
    rounds = 2
    equivalence = verify_shard_equivalence(
        backends=("inproc", "mp"), with_failover=True
    )
    rows: List[Dict[str, object]] = [
        bench_shard_round(
            containers, gpus, num_shards, backend,
            rounds=rounds, seed=seed,
        )
        for num_shards, backend in CONFIGS
    ]
    baseline = rows[0]
    for row in rows:
        row["speedup"] = (
            float(baseline["round_s"]) / float(row["round_s"])
        )
    report: Dict[str, object] = {
        "benchmark": "shard-scaling",
        "quick": quick,
        "seed": seed,
        "endpoints": endpoints,
        "equivalence": equivalence,
        "scaling": rows,
    }
    if out is not None:
        with open(out, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary of :func:`run_shard_benchmark` output."""
    lines = [
        f"shard scaling at {report['endpoints']} endpoints "
        "(probe-round throughput):",
        f"  {'shards':>7} {'backend':>8} {'pairs':>7} "
        f"{'round s':>9} {'probes/s':>10} {'speedup':>9}",
    ]
    for row in report["scaling"]:
        lines.append(
            f"  {row['shards']:>7} {row['backend']:>8} "
            f"{row['pairs_per_round']:>7} {row['round_s']:>9.2f} "
            f"{row['probes_per_s']:>10.0f} {row['speedup']:>8.2f}x"
        )
    compared = report["equivalence"]["compared"]
    lines.append(
        f"equivalence: {len(compared)} configurations identical to the "
        "single-shard baseline "
        "(events, verdicts, and vote tables)"
    )
    return "\n".join(lines)
