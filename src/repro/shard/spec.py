"""Picklable scenario recipes for the sharded monitoring plane.

Shard workers may run in other processes, so they cannot share the
coordinator's live simulation objects.  Instead every worker receives a
:class:`ShardScenarioSpec` — a frozen, picklable *recipe* — and builds
its own replica of the cluster from it.  Two properties make replicas
interchangeable with the original:

* :func:`repro.workloads.scenarios.build_scenario` is deterministic in
  its seed, so every replica has identical topology, placement, and
  overlay state; and
* the fault schedule is expressed in *round numbers* (not live object
  references), so any replica can replay it independently and land in
  the same data-plane state before any round.

Probe randomness comes from the run seed via the fabric's pairwise draw
source (:mod:`repro.network.draws`), so probe outcomes are identical in
every replica regardless of which pairs it monitors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.chaos.faults import MonitorFaultInjector, MonitorIssue
from repro.cluster.identifiers import ContainerId
from repro.core.detection import DetectorConfig
from repro.core.pinglist import PingList, ProbePair
from repro.network.faults import Fault
from repro.network.issues import lookup_issue
from repro.workloads.scenarios import MonitoredScenario, build_scenario

__all__ = [
    "FaultSpec",
    "FaultScheduleRunner",
    "MonitorFaultSpec",
    "ShardScenarioSpec",
    "build_monitor_chaos",
    "build_replica",
    "pair_universe",
]


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault, in replayable (round-number) form.

    ``target`` is an identifier (``RnicId``, ``LinkId``, ``SwitchId``,
    ``HostId``, or ``ContainerId``), never a live object — identifiers
    pickle cleanly and resolve identically in every replica.  The fault
    is injected just before round ``start_round`` probes and cleared
    just before round ``end_round`` probes (active rounds form the
    half-open interval ``[start_round, end_round)``); ``end_round=None``
    leaves it active for the rest of the run.
    """

    issue: str
    target: object
    start_round: int
    end_round: Optional[int] = None
    overrides: Tuple[Tuple[str, float], ...] = ()

    def issue_type(self):
        """The catalogue issue this spec injects (Table 1 or gray)."""
        return lookup_issue(self.issue)


@dataclass(frozen=True)
class MonitorFaultSpec:
    """One scheduled monitor-plane fault, in replayable form.

    The chaos dual of :class:`FaultSpec`: windows are round numbers,
    ``scope`` is an identifier-string prefix (never a live object), and
    the whole schedule is pure — :func:`build_monitor_chaos` pins each
    fault's id to its spec index, so every replica, rebuilt at any time
    in any process, draws identical per-query fates and a failover
    replay sees the same monitor-plane weather the dead shard saw.
    ``rate``/``delay_s`` of ``None`` keep the catalogue defaults.
    """

    issue: str
    start_round: int
    end_round: Optional[int] = None
    scope: Optional[str] = None
    rate: Optional[float] = None
    delay_s: Optional[float] = None

    def issue_type(self) -> MonitorIssue:
        """The monitor-plane catalogue issue this spec injects."""
        return MonitorIssue[self.issue]


@dataclass(frozen=True)
class ShardScenarioSpec:
    """Everything needed to rebuild the monitored scenario anywhere."""

    num_containers: int = 16
    gpus_per_container: int = 4
    pp: int = 2
    seed: int = 0
    probe_interval_s: float = 2.0
    num_spines: int = 4
    hosts_per_segment: int = 8
    total_rounds: int = 30
    #: "ring_chord" — the O(n) skeleton-like pair list benchmarks use;
    #: "basic" — the full rail-pruned preload list.
    pair_mode: str = "ring_chord"
    faults: Tuple[FaultSpec, ...] = ()
    #: Monitor-plane (chaos) schedule; empty means a perfect monitor
    #: and keeps every shard on the original, unhardened probe path.
    monitor_faults: Tuple[MonitorFaultSpec, ...] = ()
    detector: Optional[DetectorConfig] = None
    #: Which analyzer backend every shard builds ("columnar" or
    #: "legacy").  Part of the spec so a failover replica — or a
    #: cross-backend equivalence run — rebuilds the exact analyzer the
    #: original shard used.
    analyzer_backend: str = "columnar"
    #: ECMP mode every replica's fabric runs in ("static" or "spray").
    #: Part of the spec for the same reason as the backend: a spraying
    #: run's probe outcomes draw a sixth per-probe column, so a replica
    #: rebuilt in the wrong mode would diverge bit-wise.
    ecmp_mode: str = "static"

    def round_time(self, round_index: int) -> float:
        """Simulated time of round ``round_index`` (rounds are 1-based,
        matching the hunter's first scheduled probe round)."""
        if round_index < 1:
            raise ValueError(f"rounds are 1-based, got {round_index}")
        return round_index * self.probe_interval_s


def build_replica(spec: ShardScenarioSpec) -> MonitoredScenario:
    """Build one replica of the spec'd scenario.

    ``watch=False`` skips the hunter's basic ping-list preload — shard
    monitors carry their own pair subset, and at production scale the
    unused preload list would dominate replica memory.  The replica's
    fabric is switched to pairwise (partition-independent) draws keyed
    by the *run* seed, so probe outcomes match every other replica.
    """
    scenario = build_scenario(
        num_containers=spec.num_containers,
        gpus_per_container=spec.gpus_per_container,
        pp=spec.pp,
        seed=spec.seed,
        probe_interval_s=spec.probe_interval_s,
        num_spines=spec.num_spines,
        hosts_per_segment=spec.hosts_per_segment,
        detector_config=spec.detector,
        ecmp_mode=spec.ecmp_mode,
        instant_startup=True,
        start_monitoring=False,
        watch=False,
    )
    scenario.fabric.use_pairwise_draws(spec.seed)
    return scenario


def build_monitor_chaos(
    spec: ShardScenarioSpec,
) -> Optional[MonitorFaultInjector]:
    """The spec's monitor-fault injector; ``None`` = perfect monitor.

    Every fault's id is pinned to its spec index: the injector's keyed
    draws include the fault id, so pinning (rather than the module's
    process-global counter) is what makes two replicas — or one replica
    rebuilt after failover — draw byte-identical monitor-plane fates.
    """
    if not spec.monitor_faults:
        return None
    injector = MonitorFaultInjector(seed=spec.seed)
    for index, mf in enumerate(spec.monitor_faults):
        overrides = {"fault_id": index}
        if mf.rate is not None:
            overrides["rate"] = mf.rate
        if mf.delay_s is not None:
            overrides["delay_s"] = mf.delay_s
        injector.inject_issue(
            mf.issue_type(),
            start=spec.round_time(mf.start_round),
            end=(
                spec.round_time(mf.end_round)
                if mf.end_round is not None else None
            ),
            scope=mf.scope,
            **overrides,
        )
    return injector


def pair_universe(
    spec: ShardScenarioSpec, scenario: MonitoredScenario
) -> List[ProbePair]:
    """The run's full probe-pair set, sorted (deterministic)."""
    endpoints = sorted(scenario.task.endpoints())
    if spec.pair_mode == "basic":
        task = scenario.task

        def rail(endpoint):
            return task.containers[endpoint.container].rail_of(endpoint)

        return sorted(PingList.basic(endpoints, rail).pairs)
    if spec.pair_mode == "ring_chord":
        return ring_chord_pairs(endpoints)
    raise ValueError(f"unknown pair mode {spec.pair_mode!r}")


def ring_chord_pairs(endpoints) -> List[ProbePair]:
    """A ring plus long chords over the sorted endpoints — the O(n)
    skeleton-like pair list (cf. :func:`repro.perf._round_pairs`), with
    same-container neighbours dropped as ping lists always do."""
    n = len(endpoints)
    stride = n // 3 + 1
    pairs = set()
    for i, src in enumerate(endpoints):
        for dst in (endpoints[(i + 1) % n], endpoints[(i + stride) % n]):
            if src != dst and src.container != dst.container:
                pairs.add(ProbePair.canonical(src, dst))
    return sorted(pairs)


@dataclass
class FaultScheduleRunner:
    """Replays a spec's fault schedule against one replica.

    Drives the replica's injector round by round: calling
    :meth:`advance_to` applies every injection/clear scheduled for the
    rounds since the last call, in spec order — so any replica, built
    at any time, reaches the same data-plane state before probing a
    given round.
    """

    scenario: MonitoredScenario
    spec: ShardScenarioSpec
    _active: dict = field(default_factory=dict)
    _next_round: int = 1

    def advance_to(self, round_index: int) -> None:
        """Apply all fault transitions up to (and incl.) the moment just
        before round ``round_index`` probes."""
        for r in range(self._next_round, round_index + 1):
            at = self.spec.round_time(r)
            for idx, fault_spec in enumerate(self.spec.faults):
                if fault_spec.end_round == r and idx in self._active:
                    self.scenario.injector.clear(
                        self._active.pop(idx), at
                    )
                if fault_spec.start_round == r:
                    if (
                        fault_spec.end_round is not None
                        and fault_spec.end_round <= fault_spec.start_round
                    ):
                        # Empty interval [start, start): never inject —
                        # injecting here would leave the fault active
                        # forever, since its clear round already passed.
                        continue
                    self._active[idx] = self._inject(fault_spec, at)
        self._next_round = max(self._next_round, round_index + 1)

    def active_faults(self) -> List[Fault]:
        """Currently injected faults, in spec order."""
        return [self._active[i] for i in sorted(self._active)]

    def _inject(self, fault_spec: FaultSpec, at: float) -> Fault:
        target = fault_spec.target
        if isinstance(target, ContainerId):
            target = self.scenario.task.containers[target]
        return self.scenario.injector.inject_issue(
            fault_spec.issue_type(),
            target,
            start=at,
            **dict(fault_spec.overrides),
        )
