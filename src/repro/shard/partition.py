"""Topology-aware probe-pair partitioning for the sharded plane.

The partitioner groups probe pairs by their *source host*, with group
keys ordered segment-major.  Two properties follow:

* Every container's pairs land on exactly one shard, so each container
  runs exactly one overlay agent plane-wide.  This is where the
  sharded plane's speedup comes from: an agent's per-round cost is
  dominated by scanning its ping list (``OverlayAgent.my_pairs``), and
  a host split across K shards would pay that scan K times.  (An
  earlier per-rail grouping did exactly that — a host's eight rails
  land on eight different ToRs in a rail-optimized Clos, which
  scattered each container over most shards and erased the speedup.)
* Hosts are cut into *contiguous* ranges in (segment, host) order, so
  whole segments tend to stay on one shard.  A host's access links and
  its segment's ToR uplinks are then mostly shard-local, minimizing
  the physical links whose tomography evidence is split across shards
  (the coordinator's merged vote table makes a split harmless for
  correctness, but a clean cut keeps per-shard evidence dense).

The cut itself is deterministic: groups sorted by key, then a single
pass that advances to the next shard once its balanced share
(``total / num_shards``) is reached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.cluster.identifiers import LinkId
from repro.cluster.orchestrator import Cluster
from repro.core.pinglist import ProbePair
from repro.network.fabric import DataPlaneFabric

__all__ = [
    "PartitionPlan",
    "TenantPlacement",
    "TopologyPartitioner",
    "cross_shard_links",
    "place_tenants",
    "rebalance_tenants",
]


@dataclass(frozen=True)
class PartitionPlan:
    """The deterministic pair-to-shard assignment."""

    num_shards: int
    #: Per shard: its pairs, sorted.
    assignments: Tuple[Tuple[ProbePair, ...], ...]
    #: Per shard: the source-host group keys it received, sorted.
    group_keys: Tuple[Tuple[str, ...], ...]

    def pairs_of(self, shard_id: int) -> Tuple[ProbePair, ...]:
        """The pairs shard ``shard_id`` monitors."""
        return self.assignments[shard_id]

    def pair_counts(self) -> List[int]:
        """Pair count per shard."""
        return [len(pairs) for pairs in self.assignments]

    def all_pairs(self) -> List[ProbePair]:
        """Every assigned pair, sorted (the run's pair universe)."""
        merged: List[ProbePair] = []
        for pairs in self.assignments:
            merged.extend(pairs)
        return sorted(merged)

    def shard_of(self, pair: ProbePair) -> int:
        """Which shard monitors ``pair``."""
        for shard_id, pairs in enumerate(self.assignments):
            if pair in pairs:
                return shard_id
        raise KeyError(f"{pair} is not assigned to any shard")


class TopologyPartitioner:
    """Splits a pair universe into shards along host/segment boundaries."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster

    def group_key(self, pair: ProbePair) -> str:
        """The pair's source host, keyed segment-major so that sorting
        group keys walks the fabric one segment at a time."""
        rnic = self.cluster.overlay.rnic_of(pair.src)
        segment = self.cluster.topology.segment_of(rnic.host)
        return f"seg-{segment:05d}/host-{rnic.host.index:06d}"

    def partition(
        self, pairs: Sequence[ProbePair], num_shards: int
    ) -> PartitionPlan:
        """Assign every pair to exactly one of ``num_shards`` shards."""
        if num_shards < 1:
            raise ValueError(f"need at least one shard, got {num_shards}")
        groups: Dict[str, List[ProbePair]] = {}
        for pair in sorted(set(pairs)):
            groups.setdefault(self.group_key(pair), []).append(pair)
        # One contiguous cut through the segment-major host order: each
        # host group goes to the shard whose balanced band
        # (``total / num_shards`` pairs wide) contains the group's
        # midpoint.  Midpoints are strictly increasing, so shard ids
        # never go backwards and the cut stays contiguous.
        ordered = sorted(groups.items())
        total = sum(len(members) for _, members in ordered)
        shard_pairs: List[List[ProbePair]] = [[] for _ in range(num_shards)]
        shard_keys: List[List[str]] = [[] for _ in range(num_shards)]
        assigned = 0
        for key, members in ordered:
            midpoint = 2 * assigned + len(members)  # doubled: stays int
            shard = min(
                num_shards - 1,
                midpoint * num_shards // max(2 * total, 1),
            )
            shard_pairs[shard].extend(members)
            shard_keys[shard].append(key)
            assigned += len(members)
        return PartitionPlan(
            num_shards=num_shards,
            assignments=tuple(
                tuple(sorted(pairs)) for pairs in shard_pairs
            ),
            group_keys=tuple(
                tuple(sorted(keys)) for keys in shard_keys
            ),
        )


@dataclass(frozen=True)
class TenantPlacement:
    """A deterministic tenant-to-shard assignment (fleet plane).

    Where :class:`PartitionPlan` splits one job's *pairs* across
    shards, a fleet places whole *tenants*: a tenant's pairs must stay
    on one shard so its analyzer sees the complete per-tenant probe
    stream (the isolation guarantee) and its verdicts never depend on
    a merge.  ``weights`` is each tenant's probe-pair demand, the unit
    the balancer equalizes.
    """

    num_shards: int
    #: Per shard: its tenant names, sorted.
    assignments: Tuple[Tuple[str, ...], ...]
    #: The demand weight used for every placed tenant, sorted by name.
    weights: Tuple[Tuple[str, int], ...]

    def shard_of(self, tenant: str) -> int:
        """Which shard hosts ``tenant``."""
        for shard_id, names in enumerate(self.assignments):
            if tenant in names:
                return shard_id
        raise KeyError(f"tenant {tenant!r} is not placed on any shard")

    def tenants_of(self, shard_id: int) -> Tuple[str, ...]:
        """The tenants shard ``shard_id`` monitors."""
        return self.assignments[shard_id]

    def loads(self) -> List[int]:
        """Summed tenant weight per shard."""
        weight_of = dict(self.weights)
        return [
            sum(weight_of[name] for name in names)
            for names in self.assignments
        ]

    def all_tenants(self) -> List[str]:
        """Every placed tenant, sorted."""
        return sorted(
            name for names in self.assignments for name in names
        )


def place_tenants(
    weights: Dict[str, int], num_shards: int
) -> TenantPlacement:
    """Greedy balanced placement of tenants onto shards.

    Tenants are taken heaviest-first (ties broken by name) and each
    lands on the currently least-loaded shard (ties broken by shard
    id) — the classic LPT heuristic, fully deterministic, within 4/3
    of the optimal makespan.  The makespan is what matters: the fleet
    round's critical path is the busiest shard.
    """
    if num_shards < 1:
        raise ValueError(f"need at least one shard, got {num_shards}")
    ordered = sorted(
        weights.items(), key=lambda item: (-item[1], item[0])
    )
    shard_names: List[List[str]] = [[] for _ in range(num_shards)]
    loads = [0] * num_shards
    for name, weight in ordered:
        if weight < 0:
            raise ValueError(
                f"tenant {name!r} has negative weight {weight}"
            )
        target = min(range(num_shards), key=lambda i: (loads[i], i))
        shard_names[target].append(name)
        loads[target] += weight
    return TenantPlacement(
        num_shards=num_shards,
        assignments=tuple(
            tuple(sorted(names)) for names in shard_names
        ),
        weights=tuple(sorted(weights.items())),
    )


def rebalance_tenants(
    placement: TenantPlacement, weights: Dict[str, int]
) -> TenantPlacement:
    """Minimal-move rebalance after job churn.

    Surviving tenants keep their shard (moving one means rebuilding a
    replica and replaying every round so far — correct, but never free),
    departed tenants simply vanish, and new tenants are placed greedily
    against the surviving load.  Deterministic for a fixed input.
    """
    surviving: List[List[str]] = [
        [name for name in names if name in weights]
        for names in placement.assignments
    ]
    loads = [
        sum(weights[name] for name in names) for names in surviving
    ]
    placed = {name for names in surviving for name in names}
    arriving = sorted(
        (
            (name, weight) for name, weight in weights.items()
            if name not in placed
        ),
        key=lambda item: (-item[1], item[0]),
    )
    for name, weight in arriving:
        target = min(
            range(placement.num_shards), key=lambda i: (loads[i], i)
        )
        surviving[target].append(name)
        loads[target] += weight
    return TenantPlacement(
        num_shards=placement.num_shards,
        assignments=tuple(
            tuple(sorted(names)) for names in surviving
        ),
        weights=tuple(sorted(weights.items())),
    )


def cross_shard_links(
    plan: PartitionPlan, fabric: DataPlaneFabric
) -> Set[LinkId]:
    """Physical links whose tomography evidence spans multiple shards.

    These are the links for which no single shard sees every failing
    path — exactly the evidence the coordinator's merged vote table
    reunites.  The partitioner's job is to keep this set small.
    """
    owners: Dict[LinkId, Set[int]] = {}
    for shard_id, pairs in enumerate(plan.assignments):
        for pair in pairs:
            path = fabric.traceroute(pair.src, pair.dst)
            if path is None:
                continue
            for link in path.links:
                owners.setdefault(link, set()).add(shard_id)
    return {
        link for link, shards in owners.items() if len(shards) > 1
    }
