"""The sharded monitoring control plane (scale-out of §6).

Splits the probe-pair universe into topology-aware shards, runs each
shard's probe rounds and detection independently (in-process or in
forked worker processes), and recombines per-shard evidence — merged
tomography votes, global localization, failover of dead shards — in a
coordinator.  For a fixed run seed, the plane's opened events and
localization verdicts are bit-identical across shard counts and
backends; :mod:`repro.shard.equivalence` enforces exactly that.
"""

from repro.shard.backend import (
    InProcessBackend,
    MultiprocessingBackend,
    ShardDeadError,
    backend_named,
)
from repro.shard.coordinator import (
    MergedVoteTable,
    Reassignment,
    ShardCoordinator,
    ShardPlaneError,
    ShardRunResult,
    ShardStatus,
)
from repro.shard.equivalence import (
    ShardEquivalenceError,
    default_equivalence_spec,
    run_plane,
    verify_shard_equivalence,
)
from repro.shard.monitor import ChunkResult, EventRecord, ShardMonitor
from repro.shard.partition import (
    PartitionPlan,
    TenantPlacement,
    TopologyPartitioner,
    cross_shard_links,
    place_tenants,
    rebalance_tenants,
)
from repro.shard.spec import (
    FaultScheduleRunner,
    FaultSpec,
    ShardScenarioSpec,
    build_replica,
    pair_universe,
)

__all__ = [
    "ChunkResult",
    "EventRecord",
    "FaultScheduleRunner",
    "FaultSpec",
    "InProcessBackend",
    "MergedVoteTable",
    "MultiprocessingBackend",
    "PartitionPlan",
    "Reassignment",
    "ShardCoordinator",
    "ShardDeadError",
    "ShardEquivalenceError",
    "ShardMonitor",
    "ShardPlaneError",
    "ShardRunResult",
    "ShardScenarioSpec",
    "ShardStatus",
    "TenantPlacement",
    "TopologyPartitioner",
    "backend_named",
    "build_replica",
    "cross_shard_links",
    "default_equivalence_spec",
    "pair_universe",
    "place_tenants",
    "rebalance_tenants",
    "run_plane",
    "verify_shard_equivalence",
]
