"""Container orchestration: placement, lifecycle, and state callbacks.

The orchestrator plays the role of the paper's control plane (Figure 1):
it places the training nodes of a submitted task on hosts, binds GPUs and
RNIC VFs, and drives container state transitions on the simulation clock.
Startup is deliberately *asynchronous* — containers of one task become
RUNNING minutes apart (the paper's Figure 4), which is exactly what makes
naive ping-list activation produce false positives (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.cluster.container import Container, ContainerState, TrainingTask
from repro.cluster.host import Host
from repro.cluster.identifiers import ContainerId, HostId, RnicId, TaskId
from repro.cluster.overlay import OverlayNetwork
from repro.cluster.topology import RailOptimizedTopology
from repro.sim.engine import SimulationEngine
from repro.sim.rng import RngRegistry

__all__ = ["Cluster", "Orchestrator", "PlacementError", "StartupModel"]


class PlacementError(RuntimeError):
    """Raised when a task cannot be placed on the cluster."""


class Cluster:
    """The physical plant: topology, hosts, and the shared overlay."""

    def __init__(
        self,
        topology: RailOptimizedTopology,
        num_vfs_per_rnic: int = 128,
        bandwidth_gbps: float = 200.0,
    ) -> None:
        self.topology = topology
        self.hosts: Dict[HostId, Host] = {
            host_id: Host.build(
                host_id,
                num_gpus=topology.rails_per_host,
                num_vfs_per_rnic=num_vfs_per_rnic,
                bandwidth_gbps=bandwidth_gbps,
            )
            for host_id in topology.hosts
        }
        self.overlay = OverlayNetwork()

    def host(self, host_id: HostId) -> Host:
        """The host object for ``host_id``."""
        if host_id not in self.hosts:
            raise PlacementError(f"unknown host {host_id}")
        return self.hosts[host_id]

    def underlay_ips_of(self, host_id: HostId) -> Dict[RnicId, str]:
        """Map each physical RNIC of ``host_id`` to its underlay IP."""
        host = self.host(host_id)
        return {rnic.id: rnic.underlay_ip for rnic in host.rnics}

    def total_free_gpus(self) -> int:
        """Unallocated GPUs across the whole cluster."""
        return sum(len(h.free_gpus()) for h in self.hosts.values())


@dataclass
class StartupModel:
    """Parametric model of container startup delays.

    ``base_s`` is the minimum initialization time; per-container jitter is
    log-normal so that most containers come up quickly while larger tasks
    show the long tail (up to ~10 minutes) reported in Figure 4.
    """

    base_s: float = 20.0
    jitter_sigma: float = 0.8
    jitter_scale_s: float = 30.0
    size_factor: float = 0.05

    def sample(
        self, rng: np.random.Generator, rank: int, task_size: int
    ) -> float:
        """Startup delay in seconds for the ``rank``-th container."""
        jitter = self.jitter_scale_s * float(rng.lognormal(
            mean=0.0, sigma=self.jitter_sigma
        ))
        size_penalty = self.size_factor * task_size * float(rng.random())
        return self.base_s + jitter + size_penalty


class Orchestrator:
    """Places tasks and drives container lifecycle on the sim clock."""

    def __init__(
        self,
        cluster: Cluster,
        engine: SimulationEngine,
        rng: RngRegistry,
        startup_model: Optional[StartupModel] = None,
        placement_filter: Optional[Callable[[HostId], bool]] = None,
    ) -> None:
        self.cluster = cluster
        self.engine = engine
        self._rng = rng.stream("orchestrator")
        self.startup_model = startup_model or StartupModel()
        # Hosts failing this predicate are excluded from scheduling —
        # the hook SkeletonHunter's blacklist plugs into (§8).
        self.placement_filter = placement_filter
        self.tasks: Dict[TaskId, TrainingTask] = {}
        self._next_task_index = 0
        self._on_running: List[Callable[[Container], None]] = []
        self._on_finished: List[Callable[[Container], None]] = []

    # ------------------------------------------------------------------
    # Callbacks
    # ------------------------------------------------------------------

    def on_container_running(
        self, callback: Callable[[Container], None]
    ) -> None:
        """Subscribe to container RUNNING transitions."""
        self._on_running.append(callback)

    def on_container_finished(
        self, callback: Callable[[Container], None]
    ) -> None:
        """Subscribe to container TERMINATED/FAILED transitions."""
        self._on_finished.append(callback)

    # ------------------------------------------------------------------
    # Task management
    # ------------------------------------------------------------------

    def submit_task(
        self,
        num_containers: int,
        gpus_per_container: int = 8,
        task_id: Optional[TaskId] = None,
        instant_startup: bool = False,
    ) -> TrainingTask:
        """Place and start a training task.

        Each container is placed on its own host (training nodes span a
        host's GPU complement).  Containers transition CREATING->RUNNING
        after a sampled startup delay; ``instant_startup`` collapses the
        delays for tests that don't exercise activation behaviour.
        """
        if task_id is None:
            task_id = TaskId(self._next_task_index)
            self._next_task_index += 1
        if task_id in self.tasks:
            raise PlacementError(f"{task_id} already submitted")
        hosts = self._pick_hosts(num_containers, gpus_per_container)
        task = TrainingTask(
            id=task_id,
            num_containers=num_containers,
            gpus_per_container=gpus_per_container,
        )
        task.vni = self.cluster.overlay.register_task(task_id)

        for rank, host_id in enumerate(hosts):
            cid = ContainerId(task_id, rank)
            allocation = self.cluster.host(host_id).allocate(
                cid, gpus_per_container
            )
            container = Container(id=cid, allocation=allocation)
            container.transition(ContainerState.CREATING, self.engine.now)
            task.containers[cid] = container
            delay = 0.0 if instant_startup else self.startup_model.sample(
                self._rng, rank, num_containers
            )
            self.engine.schedule_in(
                delay,
                lambda c=container: self._mark_running(c),
                label=f"start:{cid}",
            )

        self.tasks[task_id] = task
        return task

    def _schedulable(self, host_id: HostId) -> bool:
        return self.placement_filter is None or self.placement_filter(
            host_id
        )

    def _pick_hosts(
        self, num_containers: int, gpus_per_container: int
    ) -> List[HostId]:
        """First-fit placement: one container per host, distinct hosts."""
        candidates = [
            h.id
            for h in self.cluster.hosts.values()
            if len(h.free_gpus()) >= gpus_per_container
            and self._schedulable(h.id)
        ]
        if len(candidates) < num_containers:
            raise PlacementError(
                f"need {num_containers} hosts with {gpus_per_container} "
                f"free GPUs, only {len(candidates)} available"
            )
        return sorted(candidates)[:num_containers]

    def _mark_running(self, container: Container) -> None:
        if container.state != ContainerState.CREATING:
            return  # terminated or crashed before finishing startup
        container.transition(ContainerState.RUNNING, self.engine.now)
        self.cluster.overlay.attach_container(
            container, self.cluster.underlay_ips_of(container.host)
        )
        for callback in self._on_running:
            callback(container)

    def terminate_task(self, task_id: TaskId) -> None:
        """Tear down every container of ``task_id`` immediately."""
        task = self.tasks.get(task_id)
        if task is None:
            raise PlacementError(f"unknown task {task_id}")
        for container in task.all_containers():
            if container.is_terminal:
                continue
            self._finish(container, ContainerState.TERMINATED)

    def crash_container(self, container: Container) -> None:
        """Simulate a container-runtime crash (Table 1, issue 17)."""
        if container.is_terminal:
            return
        self._finish(container, ContainerState.FAILED)

    def _finish(self, container: Container, state: ContainerState) -> None:
        was_running = container.is_running
        container.transition(state, self.engine.now)
        if was_running:
            self.cluster.overlay.detach_container(container)
        self.cluster.host(container.host).release(container.allocation)
        for callback in self._on_finished:
            callback(container)

    def task(self, task_id: TaskId) -> TrainingTask:
        """The task object for ``task_id``."""
        if task_id not in self.tasks:
            raise PlacementError(f"unknown task {task_id}")
        return self.tasks[task_id]

    # ------------------------------------------------------------------
    # Live migration (§8 of the paper: quick recovery from failures)
    # ------------------------------------------------------------------

    def migrate_container(
        self,
        container: Container,
        exclude_hosts: Optional[List[HostId]] = None,
    ) -> HostId:
        """Move a RUNNING container to a different healthy host.

        Models the live-migration recovery path the paper's team was
        building: the container keeps its identity and endpoints while
        its GPUs, VFs, and overlay attachment move to a new host.
        """
        if not container.is_running:
            raise PlacementError(
                f"cannot migrate {container.id}: not RUNNING"
            )
        excluded = set(exclude_hosts or ())
        excluded.add(container.host)
        needed = len(container.allocation.gpu_indices)
        target = next(
            (
                h.id for h in sorted(
                    self.cluster.hosts.values(), key=lambda h: h.id
                )
                if h.id not in excluded
                and len(h.free_gpus()) >= needed
                and self._schedulable(h.id)
            ),
            None,
        )
        if target is None:
            raise PlacementError(
                f"no healthy host available to migrate {container.id}"
            )
        self.cluster.overlay.detach_container(container)
        self.cluster.host(container.host).release(container.allocation)
        container.allocation = self.cluster.host(target).allocate(
            container.id, needed
        )
        self.cluster.overlay.attach_container(
            container, self.cluster.underlay_ips_of(target)
        )
        return target
