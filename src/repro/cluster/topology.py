"""Rail-optimized data-center topology.

Models the two-tier Clos fabric used for LLM training pods (§3.2 of the
paper, Figure 10; see also Alibaba HPN and NVIDIA SuperPOD designs):

* Hosts are grouped into *segments*.  Each host carries ``rails_per_host``
  RNICs; the RNIC with rail index *r* connects to the *r*-th top-of-rack
  (ToR) switch of its segment.  ToR switches therefore form *rails*.
* Every ToR uplinks to every spine switch, and inter-segment traffic is
  spread over spines by ECMP.

With this wiring, same-rail inter-host communication crosses a single ToR
(intra-segment) or ToR–spine–ToR (inter-segment), while cross-rail
communication is what NCCL avoids by bouncing through NVLink first — the
property SkeletonHunter's preload pruning relies on (§5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from repro.cluster.identifiers import HostId, LinkId, RnicId, SwitchId

__all__ = [
    "FatTreeTopology",
    "RailOptimizedTopology",
    "TopologyError",
    "UnderlayPath",
]


class TopologyError(ValueError):
    """Raised for invalid topology parameters or unknown devices."""


@dataclass(frozen=True)
class UnderlayPath:
    """An ordered underlay route: device names joined by physical links.

    ``devices`` starts at the source RNIC name and ends at the destination
    RNIC name; ``links`` has one entry per hop, so
    ``len(links) == len(devices) - 1``.
    """

    devices: Tuple[str, ...]
    links: Tuple[LinkId, ...]

    def __post_init__(self) -> None:
        if len(self.links) != len(self.devices) - 1:
            raise TopologyError(
                f"path with {len(self.devices)} devices needs "
                f"{len(self.devices) - 1} links, got {len(self.links)}"
            )

    @staticmethod
    def through(devices: Sequence[object]) -> "UnderlayPath":
        """Build a path from an ordered device sequence."""
        names = tuple(str(d) for d in devices)
        links = tuple(
            LinkId.between(names[i], names[i + 1])
            for i in range(len(names) - 1)
        )
        return UnderlayPath(devices=names, links=links)

    @property
    def hops(self) -> int:
        """Number of physical links traversed."""
        return len(self.links)

    def switches(self) -> Tuple[str, ...]:
        """Device names excluding the two endpoint RNICs."""
        return self.devices[1:-1]


class _ClosTopology:
    """Shared surface of the two-tier Clos fabrics.

    Subclass constructors validate their parameters, set the structural
    attributes (``hosts``, ``spines``, ``num_segments``,
    ``hosts_per_segment``, ``rails_per_host``, ``num_spines``), wire the
    fabric, and call :meth:`_finish_wiring`; everything else — path
    computation, ECMP memoization, graph export, structure queries — is
    identical across wirings because it only depends on
    :meth:`tor_of`.
    """

    #: Whether the wiring satisfies the rail invariants the preload
    #: pruning and the rail verify passes assume.  Non-rail fabrics set
    #: this False so those passes skip instead of failing.
    is_rail_optimized = False

    hosts: List[HostId]
    spines: List[SwitchId]
    num_segments: int
    hosts_per_segment: int
    rails_per_host: int
    num_spines: int

    def _finish_wiring(self, links: List[LinkId]) -> None:
        self._links: List[LinkId] = links
        self._link_set = frozenset(links)
        #: Memoized ECMP path lists per (src, dst) RNIC pair.  The
        #: wiring is fixed after construction, so entries never go stale
        #: by themselves; ``invalidate_path_cache`` exists for callers
        #: that monkey-patch the fabric (tests) or want cold-path
        #: measurements (the probing benchmark).
        self.path_cache_enabled = True
        self._path_cache: Dict[
            Tuple[RnicId, RnicId], List[UnderlayPath]
        ] = {}

    def tor_of(self, rnic: RnicId) -> SwitchId:
        """The ToR switch an RNIC attaches to."""
        raise NotImplementedError

    def tors(self) -> List[SwitchId]:
        """All ToR switches, sorted by index."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Structure queries
    # ------------------------------------------------------------------

    @property
    def num_hosts(self) -> int:
        """Total hosts in the fabric."""
        return len(self.hosts)

    @property
    def num_rnics(self) -> int:
        """Total physical RNICs in the fabric."""
        return self.num_hosts * self.rails_per_host

    def segment_of(self, host: HostId) -> int:
        """The segment index a host belongs to."""
        if not 0 <= host.index < self.num_hosts:
            raise TopologyError(f"unknown host {host}")
        return host.index // self.hosts_per_segment

    def rnics_of(self, host: HostId) -> List[RnicId]:
        """All physical RNICs on ``host`` in rail order."""
        self.segment_of(host)  # validates
        return [RnicId(host, rail) for rail in range(self.rails_per_host)]

    def all_rnics(self) -> List[RnicId]:
        """Every physical RNIC, sorted by (host, rail)."""
        return [r for h in self.hosts for r in self.rnics_of(h)]

    def links(self) -> List[LinkId]:
        """All physical links."""
        return list(self._links)

    def has_link(self, link: LinkId) -> bool:
        """Whether ``link`` exists in the fabric."""
        return link in self._link_set

    def device_names(self) -> List[str]:
        """Names of every device: RNICs, ToRs, and spines."""
        names = [str(r) for r in self.all_rnics()]
        names += [str(t) for t in self.tors()]
        names += [str(s) for s in self.spines]
        return names

    # ------------------------------------------------------------------
    # Path computation
    # ------------------------------------------------------------------

    def ecmp_paths(self, src: RnicId, dst: RnicId) -> List[UnderlayPath]:
        """All equal-cost underlay paths between two RNICs.

        * Same RNIC: zero-hop path.
        * Same ToR (same segment + rail): one path via that ToR.
        * Different ToRs: one path per spine switch (ECMP fan-out).

        Results are memoized per (src, dst) pair; the returned list is a
        fresh copy each call, so callers may reorder it freely.
        """
        return list(self._ecmp_paths_cached(src, dst))

    def _ecmp_paths_cached(
        self, src: RnicId, dst: RnicId
    ) -> List[UnderlayPath]:
        if not self.path_cache_enabled:
            return self._compute_ecmp_paths(src, dst)
        key = (src, dst)
        paths = self._path_cache.get(key)
        if paths is None:
            paths = self._compute_ecmp_paths(src, dst)
            self._path_cache[key] = paths
        return paths

    def _compute_ecmp_paths(
        self, src: RnicId, dst: RnicId
    ) -> List[UnderlayPath]:
        if src == dst:
            return [UnderlayPath.through([src])]
        src_tor = self.tor_of(src)
        dst_tor = self.tor_of(dst)
        if src_tor == dst_tor:
            return [UnderlayPath.through([src, src_tor, dst])]
        return [
            UnderlayPath.through([src, src_tor, spine, dst_tor, dst])
            for spine in self.spines
        ]

    def invalidate_path_cache(self) -> None:
        """Drop every memoized ECMP path list."""
        self._path_cache.clear()

    def pick_path(
        self, src: RnicId, dst: RnicId, flow_hash: int = 0
    ) -> UnderlayPath:
        """Deterministic ECMP path selection by flow hash."""
        paths = self._ecmp_paths_cached(src, dst)
        return paths[flow_hash % len(paths)]

    def graph(self) -> nx.Graph:
        """The fabric as an undirected networkx graph (for tomography)."""
        g = nx.Graph()
        g.add_nodes_from(self.device_names())
        for link in self._links:
            g.add_edge(link.a, link.b, link=link)
        return g

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(segments={self.num_segments}, "
            f"hosts/segment={self.hosts_per_segment}, "
            f"rails={self.rails_per_host}, spines={self.num_spines})"
        )


class RailOptimizedTopology(_ClosTopology):
    """The physical fabric: segments x rails of ToRs under shared spines.

    Parameters
    ----------
    num_segments:
        Number of host segments (each segment owns one ToR per rail).
    hosts_per_segment:
        Hosts attached to each segment.
    rails_per_host:
        RNICs per host; also the number of ToRs per segment.
    num_spines:
        Spine switches shared by all ToRs (ECMP width).
    """

    is_rail_optimized = True

    def __init__(
        self,
        num_segments: int = 2,
        hosts_per_segment: int = 8,
        rails_per_host: int = 8,
        num_spines: int = 4,
    ) -> None:
        if num_segments < 1:
            raise TopologyError("need at least one segment")
        if hosts_per_segment < 1:
            raise TopologyError("need at least one host per segment")
        if rails_per_host < 1:
            raise TopologyError("need at least one rail per host")
        if num_spines < 1:
            raise TopologyError("need at least one spine switch")

        self.num_segments = num_segments
        self.hosts_per_segment = hosts_per_segment
        self.rails_per_host = rails_per_host
        self.num_spines = num_spines

        self.hosts = [
            HostId(i) for i in range(num_segments * hosts_per_segment)
        ]
        self.spines = [
            SwitchId("spine", s) for s in range(num_spines)
        ]
        self._tors: Dict[Tuple[int, int], SwitchId] = {}
        for seg in range(num_segments):
            for rail in range(rails_per_host):
                self._tors[(seg, rail)] = SwitchId(
                    "tor", seg * rails_per_host + rail
                )

        links: List[LinkId] = []
        for host in self.hosts:
            seg = self.segment_of(host)
            for rail in range(rails_per_host):
                rnic = RnicId(host, rail)
                links.append(
                    LinkId.between(rnic, self._tors[(seg, rail)])
                )
        for tor in self._tors.values():
            for spine in self.spines:
                links.append(LinkId.between(tor, spine))
        self._finish_wiring(links)

    def tor_of(self, rnic: RnicId) -> SwitchId:
        """The ToR switch an RNIC attaches to."""
        if not 0 <= rnic.rail < self.rails_per_host:
            raise TopologyError(f"rail {rnic.rail} out of range for {rnic}")
        seg = self.segment_of(rnic.host)
        return self._tors[(seg, rnic.rail)]

    def tors(self) -> List[SwitchId]:
        """All ToR switches, sorted by index."""
        return sorted(self._tors.values())


class FatTreeTopology(_ClosTopology):
    """Plain (non-rail-optimized) leaf-spine fabric.

    Every RNIC of every host in a segment attaches to that segment's
    single leaf switch — no rail striping — and every leaf uplinks to
    every spine.  This is the classic fat-tree edge wiring: a host's
    NICs share one ToR, so same-"rail" traffic between segments still
    fans out over all spines, but the rail-locality invariants the
    preload pruning and the rail verify passes rely on do not hold
    (``is_rail_optimized`` is False and those passes skip).

    Exposes the exact :class:`RailOptimizedTopology` surface —
    ``rails_per_host`` degenerates to "NIC index within the host".
    """

    is_rail_optimized = False

    def __init__(
        self,
        num_segments: int = 2,
        hosts_per_segment: int = 8,
        rnics_per_host: int = 8,
        num_spines: int = 4,
    ) -> None:
        if num_segments < 1:
            raise TopologyError("need at least one segment")
        if hosts_per_segment < 1:
            raise TopologyError("need at least one host per segment")
        if rnics_per_host < 1:
            raise TopologyError("need at least one RNIC per host")
        if num_spines < 1:
            raise TopologyError("need at least one spine switch")

        self.num_segments = num_segments
        self.hosts_per_segment = hosts_per_segment
        self.rails_per_host = rnics_per_host
        self.num_spines = num_spines

        self.hosts = [
            HostId(i) for i in range(num_segments * hosts_per_segment)
        ]
        self.spines = [
            SwitchId("spine", s) for s in range(num_spines)
        ]
        self._leaves: List[SwitchId] = [
            SwitchId("tor", seg) for seg in range(num_segments)
        ]

        links: List[LinkId] = []
        for host in self.hosts:
            leaf = self._leaves[self.segment_of(host)]
            for rail in range(rnics_per_host):
                links.append(LinkId.between(RnicId(host, rail), leaf))
        for leaf in self._leaves:
            for spine in self.spines:
                links.append(LinkId.between(leaf, spine))
        self._finish_wiring(links)

    def tor_of(self, rnic: RnicId) -> SwitchId:
        """The segment leaf switch; every rail of a host shares it."""
        if not 0 <= rnic.rail < self.rails_per_host:
            raise TopologyError(f"rail {rnic.rail} out of range for {rnic}")
        return self._leaves[self.segment_of(rnic.host)]

    def tors(self) -> List[SwitchId]:
        """All leaf switches, sorted by index."""
        return list(self._leaves)
