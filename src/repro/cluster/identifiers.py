"""Typed identifiers for cluster entities.

Every physical or virtual component in the simulated cloud is addressed by
a small frozen dataclass rather than a bare string, so mixing up a host
with an RNIC or an endpoint is a type error instead of a silent bug.  All
identifiers are hashable and ordered, which lets them serve as dictionary
keys, set members, and sort keys in the localization pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "ContainerId",
    "EndpointId",
    "HostId",
    "LinkId",
    "RnicId",
    "SwitchId",
    "TaskId",
    "VfId",
]


@dataclass(frozen=True, order=True)
class HostId:
    """A physical host, e.g. ``HostId(12)``."""

    index: int

    def __str__(self) -> str:
        return f"host-{self.index}"


@dataclass(frozen=True, order=True)
class RnicId:
    """An RDMA NIC identified by its host and rail index (0..R-1).

    In a rail-optimized topology the rail index of an RNIC decides which
    top-of-rack switch it attaches to (§3.2 of the paper, Figure 10).
    """

    host: HostId
    rail: int

    def __str__(self) -> str:
        return f"{self.host}/rnic-{self.rail}"


@dataclass(frozen=True, order=True)
class VfId:
    """An SR-IOV virtual function carved out of a physical RNIC."""

    rnic: RnicId
    index: int

    def __str__(self) -> str:
        return f"{self.rnic}/vf-{self.index}"


@dataclass(frozen=True, order=True)
class TaskId:
    """A training task (one tenant job consisting of many containers)."""

    index: int

    def __str__(self) -> str:
        return f"task-{self.index}"


@dataclass(frozen=True, order=True)
class ContainerId:
    """A training container: the ``rank``-th node of a task."""

    task: TaskId
    rank: int

    def __str__(self) -> str:
        return f"{self.task}/node-{self.rank}"


@dataclass(frozen=True, order=True)
class EndpointId:
    """A (container, local RNIC slot) pair — the unit of probing.

    The paper terms the bound pair of a container and an RNIC an
    *endpoint* (§1).  ``slot`` is the container-local index of the bound
    RNIC, which equals the rail index on hosts where containers bind one
    RNIC per rail.
    """

    container: ContainerId
    slot: int

    def __str__(self) -> str:
        return f"{self.container}/ep-{self.slot}"


@dataclass(frozen=True, order=True)
class SwitchId:
    """A physical switch: ``tier`` is 'tor' or 'spine'."""

    tier: str
    index: int

    def __str__(self) -> str:
        return f"{self.tier}-{self.index}"


@dataclass(frozen=True, order=True)
class LinkId:
    """An undirected physical link between two device names.

    Endpoint names are stored in sorted order so that
    ``LinkId.between(a, b) == LinkId.between(b, a)``.
    """

    a: str
    b: str

    @staticmethod
    def between(first: object, second: object) -> "LinkId":
        """Create a canonical link id from two device identifiers."""
        x, y = sorted((str(first), str(second)))
        return LinkId(x, y)

    def touches(self, device: object) -> bool:
        """Whether ``device`` is one of the link's endpoints."""
        name = str(device)
        return name in (self.a, self.b)

    def other(self, device: object) -> str:
        """The endpoint name opposite ``device``."""
        name = str(device)
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise ValueError(f"{name} is not an endpoint of {self}")

    def __str__(self) -> str:
        return f"{self.a}<->{self.b}"
