"""Cluster substrate: topology, hosts, containers, and the VXLAN overlay."""

from repro.cluster.container import (
    Container,
    ContainerState,
    LifecycleError,
    TrainingTask,
)
from repro.cluster.flowtable import (
    ActionKind,
    FlowAction,
    FlowInconsistency,
    FlowKey,
    FlowRule,
    FlowTable,
    RnicOffloadTable,
    diff_tables,
)
from repro.cluster.host import Gpu, Host, HostInventoryError, Rnic
from repro.cluster.identifiers import (
    ContainerId,
    EndpointId,
    HostId,
    LinkId,
    RnicId,
    SwitchId,
    TaskId,
    VfId,
)
from repro.cluster.orchestrator import (
    Cluster,
    Orchestrator,
    PlacementError,
    StartupModel,
)
from repro.cluster.overlay import (
    ComponentHealth,
    OverlayError,
    OverlayHop,
    OverlayNetwork,
    OverlayTrace,
)
from repro.cluster.topology import (
    RailOptimizedTopology,
    TopologyError,
    UnderlayPath,
)

__all__ = [
    "ActionKind",
    "Cluster",
    "ComponentHealth",
    "Container",
    "ContainerId",
    "ContainerState",
    "EndpointId",
    "FlowAction",
    "FlowInconsistency",
    "FlowKey",
    "FlowRule",
    "FlowTable",
    "Gpu",
    "Host",
    "HostId",
    "HostInventoryError",
    "LifecycleError",
    "LinkId",
    "Orchestrator",
    "OverlayError",
    "OverlayHop",
    "OverlayNetwork",
    "OverlayTrace",
    "PlacementError",
    "RailOptimizedTopology",
    "Rnic",
    "RnicId",
    "RnicOffloadTable",
    "StartupModel",
    "SwitchId",
    "TaskId",
    "TopologyError",
    "TrainingTask",
    "UnderlayPath",
    "VfId",
    "diff_tables",
]
