"""The VXLAN overlay network: VNIs, overlay IPs, and forwarding state.

The overlay gives every training task an isolated L2 segment (one VXLAN
network identifier per task).  Each endpoint gets an overlay IP; per-host
OVS flow tables map ``(VNI, overlay IP)`` to either a VXLAN encapsulation
towards the destination RNIC's underlay IP or a local delivery to a VF.
Hot rules are offloaded to the RNIC hardware table; misses take the slow
software path.

The :meth:`OverlayNetwork.trace` walk doubles as the data-plane overlay
forwarding (used by the fabric to decide whether a probe gets through and
whether it rides the hardware or software path) and as the logical
reachability analysis of Algorithm 1 in the paper (used by the localizer
to find the broken overlay hop or a forwarding loop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro.cluster.container import Container
from repro.cluster.flowtable import (
    ActionKind,
    FlowAction,
    FlowKey,
    FlowRule,
    FlowTable,
    RnicOffloadTable,
)
from repro.cluster.identifiers import (
    EndpointId,
    HostId,
    RnicId,
    TaskId,
    VfId,
)

__all__ = [
    "ComponentHealth",
    "OverlayError",
    "OverlayHop",
    "OverlayNetwork",
    "OverlayTrace",
]


class OverlayError(RuntimeError):
    """Raised on invalid overlay operations."""


@dataclass
class ComponentHealth:
    """Mutable health flags a fault can set on an overlay component.

    Every flag assignment notifies the owning overlay (when attached via
    ``_on_change``) so cached probe resolutions that consulted this
    component are invalidated — faults *and* direct test mutations alike.
    """

    down: bool = False
    extra_latency_us: float = 0.0
    loss_rate: float = 0.0
    force_software_path: bool = False
    _on_change: Optional[Callable[[], None]] = field(
        default=None, repr=False, compare=False
    )

    def __setattr__(self, name: str, value: object) -> None:
        object.__setattr__(self, name, value)
        notify = getattr(self, "_on_change", None)
        if notify is not None and name != "_on_change":
            notify()

    @property
    def healthy(self) -> bool:
        """Whether every flag is at its benign default."""
        return not (
            self.down
            or self.loss_rate > 0.0
            or self.extra_latency_us > 0.0
            or self.force_software_path
        )


@dataclass(frozen=True)
class OverlayHop:
    """One step of the logical forwarding chain."""

    component: str          # e.g. "veth:task-0/node-1/ep-2" or "ovs:host-3"
    kind: str               # veth | ovs | vtep
    ok: bool
    software_path: bool = False
    note: str = ""


@dataclass
class OverlayTrace:
    """Result of walking the overlay forwarding chain.

    ``rules`` collects the flow rules whose lookup the walk hit, in hop
    order; the fabric's resolution cache replays ``rule.hit()`` on them
    for cache-served probes so packet counters advance exactly as if
    every probe had re-walked the chain.  It is bookkeeping, not an
    observation, so it is excluded from equality and repr.
    """

    hops: List[OverlayHop] = field(default_factory=list)
    reached: bool = False
    loop: bool = False
    software_path: bool = False
    src_rnic: Optional[RnicId] = None
    dst_rnic: Optional[RnicId] = None
    rules: List[FlowRule] = field(
        default_factory=list, repr=False, compare=False
    )

    @property
    def failure_component(self) -> Optional[str]:
        """The first component where forwarding broke, if any."""
        for hop in self.hops:
            if not hop.ok:
                return hop.component
        return None

    def components(self) -> List[str]:
        """Names of every component touched, in order."""
        return [hop.component for hop in self.hops]


def veth_name(endpoint: EndpointId) -> str:
    """Component name of an endpoint's veth/CNI attachment."""
    return f"veth:{endpoint}"


def ovs_name(host: HostId) -> str:
    """Component name of a host's virtual switch."""
    return f"ovs:{host}"


def vtep_name(rnic: RnicId) -> str:
    """Component name of an RNIC's VXLAN tunnel endpoint."""
    return f"vtep:{rnic}"


@dataclass(frozen=True)
class _EndpointRecord:
    endpoint: EndpointId
    overlay_ip: str
    vf: VfId
    host: HostId
    underlay_ip: str


class OverlayNetwork:
    """Overlay state for every task sharing the physical fabric."""

    def __init__(self) -> None:
        self._next_vni = 100
        self._task_vni: Dict[TaskId, int] = {}
        self._ovs: Dict[HostId, FlowTable] = {}
        self._offload: Dict[RnicId, RnicOffloadTable] = {}
        self._endpoints: Dict[EndpointId, _EndpointRecord] = {}
        self._by_underlay_ip: Dict[str, RnicId] = {}
        self._registered: Set[EndpointId] = set()
        self._health: Dict[str, ComponentHealth] = {}
        self._underlay_ip_of_rnic: Dict[RnicId, str] = {}
        self._epoch = 0

    # ------------------------------------------------------------------
    # Change tracking (drives FlowResolutionCache invalidation)
    # ------------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotone counter of forwarding-relevant overlay changes.

        Bumped by endpoint attach/detach, any OVS or RNIC-offload table
        mutation, and any component-health flag change.  A probe
        resolution cached at epoch *e* is valid exactly while
        ``epoch == e``.
        """
        return self._epoch

    def _bump_epoch(self) -> None:
        self._epoch += 1

    # ------------------------------------------------------------------
    # Task / endpoint registration
    # ------------------------------------------------------------------

    def register_task(self, task_id: TaskId) -> int:
        """Assign (or return) the VNI of ``task_id``."""
        if task_id not in self._task_vni:
            self._task_vni[task_id] = self._next_vni
            self._next_vni += 1
        return self._task_vni[task_id]

    def vni_of(self, task_id: TaskId) -> int:
        """The VNI assigned to ``task_id``."""
        if task_id not in self._task_vni:
            raise OverlayError(f"{task_id} has no VNI; register it first")
        return self._task_vni[task_id]

    @staticmethod
    def overlay_ip(endpoint: EndpointId) -> str:
        """Deterministic overlay IP, unique within a task's VNI."""
        rank = endpoint.container.rank
        return f"192.{rank // 256}.{rank % 256}.{endpoint.slot + 1}"

    def attach_container(
        self, container: Container, rnic_underlay_ips: Dict[RnicId, str]
    ) -> None:
        """Wire up a container's endpoints: install local DELIVER rules.

        Called when the container finishes network-stack initialization.
        ``rnic_underlay_ips`` maps the physical RNICs the container's VFs
        live on to their underlay IPs.
        """
        vni = self.register_task(container.id.task)
        host = container.host
        table = self._ovs_table(host)
        for endpoint in container.endpoints():
            vf = container.vf_of(endpoint)
            rnic = vf.rnic
            if rnic not in rnic_underlay_ips:
                raise OverlayError(f"no underlay IP given for {rnic}")
            underlay_ip = rnic_underlay_ips[rnic]
            self._by_underlay_ip[underlay_ip] = rnic
            self._underlay_ip_of_rnic[rnic] = underlay_ip
            record = _EndpointRecord(
                endpoint=endpoint,
                overlay_ip=self.overlay_ip(endpoint),
                vf=vf,
                host=host,
                underlay_ip=underlay_ip,
            )
            self._endpoints[endpoint] = record
            key = FlowKey(vni, record.overlay_ip)
            action = FlowAction(ActionKind.DELIVER, local_vf=vf)
            self._install_with_offload(table, key, action, rnic)
            self._registered.add(endpoint)
        self._bump_epoch()

    def detach_container(self, container: Container) -> None:
        """Remove all state for a terminated container.

        Always bumps :attr:`epoch` — even when the container held no
        attached endpoints — so probes can never resolve through a
        detached endpoint's cached trace (see
        :class:`~repro.network.fabric.FlowResolutionCache`).
        """
        vni = self.vni_of(container.id.task)
        table = self._ovs_table(container.host)
        for endpoint in container.endpoints():
            record = self._endpoints.pop(endpoint, None)
            self._registered.discard(endpoint)
            if record is None:
                continue
            key = FlowKey(vni, record.overlay_ip)
            table.remove(key)
            self._offload_table(record.vf.rnic).remove(key)
        self._bump_epoch()

    def is_registered(self, endpoint: EndpointId) -> bool:
        """Whether ``endpoint`` has been attached (probe-able)."""
        return endpoint in self._registered

    def record_of(self, endpoint: EndpointId) -> _EndpointRecord:
        """Internal record (overlay IP, VF, host, underlay IP)."""
        if endpoint not in self._endpoints:
            raise OverlayError(f"{endpoint} is not attached")
        return self._endpoints[endpoint]

    def rnic_of(self, endpoint: EndpointId) -> RnicId:
        """The physical RNIC an endpoint transmits on."""
        return self.record_of(endpoint).vf.rnic

    # ------------------------------------------------------------------
    # Tables and health (the surface faults manipulate)
    # ------------------------------------------------------------------

    def _ovs_table(self, host: HostId) -> FlowTable:
        if host not in self._ovs:
            table = FlowTable(name=f"ovs:{host}")
            table.on_mutate = self._bump_epoch
            self._ovs[host] = table
        return self._ovs[host]

    def _offload_table(self, rnic: RnicId) -> RnicOffloadTable:
        if rnic not in self._offload:
            table = RnicOffloadTable(name=f"offload:{rnic}")
            table.on_mutate = self._bump_epoch
            self._offload[rnic] = table
        return self._offload[rnic]

    def ovs_table(self, host: HostId) -> FlowTable:
        """The OVS software flow table of ``host``."""
        return self._ovs_table(host)

    def offload_table(self, rnic: RnicId) -> RnicOffloadTable:
        """The hardware flow cache of ``rnic``."""
        return self._offload_table(rnic)

    def flow_table_sizes(self) -> Dict[HostId, int]:
        """Flow-table item counts per host (the paper's Figure 6)."""
        return {host: len(table) for host, table in self._ovs.items()}

    # ------------------------------------------------------------------
    # Read-only inventory (the surface the static verifier inspects)
    # ------------------------------------------------------------------

    def hosts_with_tables(self) -> List[HostId]:
        """Hosts that have materialized an OVS table, sorted."""
        return sorted(self._ovs)

    def offload_rnics(self) -> List[RnicId]:
        """RNICs that have materialized a hardware flow cache, sorted."""
        return sorted(self._offload)

    def attached_endpoints(self) -> List[EndpointId]:
        """Every endpoint currently attached to the overlay, sorted."""
        return sorted(self._endpoints)

    def underlay_map(self) -> Dict[str, RnicId]:
        """Copy of the underlay-IP -> RNIC resolution table."""
        return dict(self._by_underlay_ip)

    def rnic_underlay_ips(self) -> Dict[RnicId, str]:
        """Copy of the RNIC -> underlay-IP mapping (VTEP addresses)."""
        return dict(self._underlay_ip_of_rnic)

    def task_vnis(self) -> Dict[TaskId, int]:
        """Copy of the task -> VNI assignment."""
        return dict(self._task_vni)

    def health(self, component: str) -> ComponentHealth:
        """Mutable health flags for a named overlay component."""
        if component not in self._health:
            self._health[component] = ComponentHealth(
                _on_change=self._bump_epoch
            )
        return self._health[component]

    def clear_health(self, component: str) -> None:
        """Reset a component to healthy."""
        if self._health.pop(component, None) is not None:
            self._bump_epoch()

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def ensure_flow(
        self, src: EndpointId, dst: EndpointId
    ) -> Optional[FlowKey]:
        """Slow-path rule installation for the src->dst overlay flow.

        Mirrors OVS first-packet behaviour: a table miss punts to the
        control plane, which installs the ENCAP rule and offloads it.
        Returns the installed key, or ``None`` when the destination is
        not (yet) registered.
        """
        if src.container.task != dst.container.task:
            raise OverlayError(
                f"{src} and {dst} belong to different tasks; "
                "cross-tenant flows are never installed"
            )
        if dst not in self._endpoints or src not in self._endpoints:
            return None
        vni = self.vni_of(src.container.task)
        src_rec = self._endpoints[src]
        dst_rec = self._endpoints[dst]
        key = FlowKey(vni, dst_rec.overlay_ip)
        table = self._ovs_table(src_rec.host)
        existing = table.lookup(key)
        if existing is None or (
            existing.action.kind == ActionKind.ENCAP
            and existing.action.remote_underlay_ip != dst_rec.underlay_ip
        ):
            action = FlowAction(
                ActionKind.ENCAP, remote_underlay_ip=dst_rec.underlay_ip
            )
            self._install_with_offload(table, key, action, src_rec.vf.rnic)
        return key

    def _install_with_offload(
        self, table: FlowTable, key: FlowKey, action: FlowAction, rnic: RnicId
    ) -> None:
        """Install an OVS rule and mirror it into the RNIC hardware cache.

        When the RNIC cannot offload (its VTEP is flagged for the
        software path), the rule stays software-only — which is exactly
        what a flow-table dump will later reveal.
        """
        rule = table.install(key, action)
        if self.health(vtep_name(rnic)).force_software_path:
            rule.offloaded = False
            rule.offloaded_to = None
            return
        rule.offloaded = True
        rule.offloaded_to = str(rnic)
        self._offload_table(rnic).install(key, action)

    def trace(
        self,
        src: EndpointId,
        dst: EndpointId,
        install_missing: bool = True,
        max_hops: int = 16,
    ) -> OverlayTrace:
        """Walk the logical overlay forwarding chain from ``src`` to ``dst``.

        With ``install_missing=True`` this behaves like the data plane
        (slow-path resolution on first use); with ``False`` it is the
        read-only reachability analysis of Algorithm 1.
        """
        trace = OverlayTrace()
        if src not in self._endpoints:
            trace.hops.append(OverlayHop(
                veth_name(src), "veth", ok=False, note="source not attached"
            ))
            return trace
        src_rec = self._endpoints[src]
        vni = self.vni_of(src.container.task)

        src_veth = veth_name(src)
        if self.health(src_veth).down:
            trace.hops.append(OverlayHop(
                src_veth, "veth", ok=False, note="source veth down"
            ))
            return trace
        trace.hops.append(OverlayHop(src_veth, "veth", ok=True))

        if install_missing:
            self.ensure_flow(src, dst)

        dst_ip = self.overlay_ip(dst)
        key = FlowKey(vni, dst_ip)
        current_host = src_rec.host
        current_rnic = src_rec.vf.rnic
        trace.src_rnic = current_rnic
        visited_hosts: Set[HostId] = set()

        for _ in range(max_hops):
            if current_host in visited_hosts:
                trace.loop = True
                trace.hops.append(OverlayHop(
                    ovs_name(current_host), "ovs", ok=False,
                    note="forwarding loop",
                ))
                return trace
            visited_hosts.add(current_host)

            ovs = ovs_name(current_host)
            if self.health(ovs).down:
                trace.hops.append(OverlayHop(
                    ovs, "ovs", ok=False, note="virtual switch down"
                ))
                return trace
            rule = self._ovs_table(current_host).lookup(key)
            if rule is None:
                trace.hops.append(OverlayHop(
                    ovs, "ovs", ok=False, note="flow table miss"
                ))
                return trace
            rule.hit()
            trace.rules.append(rule)
            trace.hops.append(OverlayHop(ovs, "ovs", ok=True))

            if rule.action.kind == ActionKind.DELIVER:
                ok = rule.action.local_vf == self._endpoints.get(
                    dst, _MISSING
                ).vf if dst in self._endpoints else False
                vtep = vtep_name(current_rnic)
                trace.hops.append(OverlayHop(
                    vtep, "vtep", ok=True,
                    software_path=self._takes_software_path(
                        current_rnic, key
                    ),
                ))
                dst_veth = veth_name(dst)
                if self.health(dst_veth).down:
                    trace.hops.append(OverlayHop(
                        dst_veth, "veth", ok=False,
                        note="destination veth down",
                    ))
                    return trace
                if not ok:
                    trace.hops.append(OverlayHop(
                        dst_veth, "veth", ok=False,
                        note="delivered to wrong VF",
                    ))
                    return trace
                trace.hops.append(OverlayHop(dst_veth, "veth", ok=True))
                trace.reached = True
                trace.dst_rnic = current_rnic
                trace.software_path = any(
                    h.software_path for h in trace.hops
                )
                return trace

            # ENCAP: leave through the local VTEP towards a remote RNIC.
            vtep = vtep_name(current_rnic)
            if self.health(vtep).down:
                trace.hops.append(OverlayHop(
                    vtep, "vtep", ok=False, note="VTEP down"
                ))
                return trace
            software = self._takes_software_path(current_rnic, key)
            trace.hops.append(OverlayHop(
                vtep, "vtep", ok=True, software_path=software
            ))

            remote_ip = rule.action.remote_underlay_ip
            remote_rnic = self._by_underlay_ip.get(remote_ip)
            if remote_rnic is None:
                trace.hops.append(OverlayHop(
                    f"underlay:{remote_ip}", "vtep", ok=False,
                    note="encap target unknown in underlay",
                ))
                return trace
            current_rnic = remote_rnic
            current_host = remote_rnic.host
            trace.dst_rnic = remote_rnic

        trace.loop = True
        trace.hops.append(OverlayHop(
            ovs_name(current_host), "ovs", ok=False, note="hop limit exceeded"
        ))
        return trace

    def _takes_software_path(self, rnic: RnicId, key: FlowKey) -> bool:
        """Whether a packet for ``key`` misses the RNIC hardware table."""
        if self.health(vtep_name(rnic)).force_software_path:
            return True
        return self._offload_table(rnic).lookup(key) is None

    def underlay_ip_of(self, rnic: RnicId) -> str:
        """Underlay IP of a physical RNIC (after any endpoint attached)."""
        if rnic not in self._underlay_ip_of_rnic:
            raise OverlayError(f"{rnic} has no attached endpoints")
        return self._underlay_ip_of_rnic[rnic]


class _Missing:
    """Sentinel with a ``vf`` attribute that never equals a real VF."""

    vf = None


_MISSING = _Missing()
