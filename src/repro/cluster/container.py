"""Training containers and their lifecycle.

Containers are the training nodes of a task.  Their lifecycle follows the
production behaviour analysed in §3.1 of the paper: containers of one task
are created on different hosts with *asynchronous* startup delays (up to
minutes apart), most have short lifetimes, and a container is only safe to
probe once it is RUNNING and has registered its endpoints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.host import HostAllocation
from repro.cluster.identifiers import (
    ContainerId,
    EndpointId,
    HostId,
    TaskId,
    VfId,
)

__all__ = [
    "Container",
    "ContainerState",
    "LifecycleError",
    "TrainingTask",
]


class LifecycleError(RuntimeError):
    """Raised on invalid container state transitions."""


class ContainerState(enum.Enum):
    """Lifecycle states of a training container."""

    PENDING = "pending"        # requested, not yet placed
    CREATING = "creating"      # placed, network stack initializing
    RUNNING = "running"        # ready: endpoints reachable and probe-able
    TERMINATED = "terminated"  # finished or torn down
    FAILED = "failed"          # crashed (e.g. container-runtime defect)


_TRANSITIONS = {
    ContainerState.PENDING: {ContainerState.CREATING},
    ContainerState.CREATING: {
        ContainerState.RUNNING,
        ContainerState.FAILED,
        ContainerState.TERMINATED,
    },
    ContainerState.RUNNING: {
        ContainerState.TERMINATED,
        ContainerState.FAILED,
    },
    ContainerState.TERMINATED: set(),
    ContainerState.FAILED: set(),
}


@dataclass
class Container:
    """One training node: GPUs + RNIC VFs on a single host."""

    id: ContainerId
    allocation: HostAllocation
    state: ContainerState = ContainerState.PENDING
    created_at: Optional[float] = None
    running_at: Optional[float] = None
    finished_at: Optional[float] = None

    @property
    def host(self) -> HostId:
        """The host this container is placed on."""
        return self.allocation.host

    @property
    def num_endpoints(self) -> int:
        """Number of (container, RNIC) endpoints, one per bound VF."""
        return len(self.allocation.vfs)

    def endpoints(self) -> List[EndpointId]:
        """All endpoints of this container in slot order."""
        return [EndpointId(self.id, s) for s in range(self.num_endpoints)]

    def endpoint(self, slot: int) -> EndpointId:
        """The endpoint on local slot ``slot``."""
        if not 0 <= slot < self.num_endpoints:
            raise LifecycleError(f"{self.id} has no endpoint slot {slot}")
        return EndpointId(self.id, slot)

    def vf_of(self, endpoint: EndpointId) -> VfId:
        """The VF backing ``endpoint``."""
        if endpoint.container != self.id:
            raise LifecycleError(f"{endpoint} is not on {self.id}")
        return self.allocation.vfs[endpoint.slot]

    def rail_of(self, endpoint: EndpointId) -> int:
        """The physical rail ``endpoint`` transmits on."""
        return self.vf_of(endpoint).rnic.rail

    @property
    def is_running(self) -> bool:
        """Whether the container is probe-able."""
        return self.state == ContainerState.RUNNING

    @property
    def is_terminal(self) -> bool:
        """Whether the container has reached a final state."""
        return self.state in (ContainerState.TERMINATED,
                              ContainerState.FAILED)

    def transition(self, new_state: ContainerState, at: float) -> None:
        """Move to ``new_state`` at simulated time ``at``."""
        if new_state not in _TRANSITIONS[self.state]:
            raise LifecycleError(
                f"{self.id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        if new_state == ContainerState.CREATING:
            self.created_at = at
        elif new_state == ContainerState.RUNNING:
            self.running_at = at
        elif new_state in (ContainerState.TERMINATED, ContainerState.FAILED):
            self.finished_at = at

    def lifetime(self) -> Optional[float]:
        """Seconds between creation and termination, if both happened."""
        if self.created_at is None or self.finished_at is None:
            return None
        return self.finished_at - self.created_at

    def startup_delay(self) -> Optional[float]:
        """Seconds from creation to RUNNING, if both happened."""
        if self.created_at is None or self.running_at is None:
            return None
        return self.running_at - self.created_at


@dataclass
class TrainingTask:
    """A tenant training job: a group of containers plus metadata."""

    id: TaskId
    num_containers: int
    gpus_per_container: int
    containers: Dict[ContainerId, Container] = field(default_factory=dict)
    vni: Optional[int] = None  # VXLAN network identifier, set by overlay

    @property
    def size(self) -> int:
        """Task size measured in containers (the paper's Figure 2 metric)."""
        return self.num_containers

    @property
    def total_gpus(self) -> int:
        """GPUs requested by the whole task."""
        return self.num_containers * self.gpus_per_container

    def container(self, rank: int) -> Container:
        """The container with the given rank."""
        cid = ContainerId(self.id, rank)
        if cid not in self.containers:
            raise LifecycleError(f"{self.id} has no rank {rank}")
        return self.containers[cid]

    def all_containers(self) -> List[Container]:
        """Containers sorted by rank."""
        return [self.containers[c] for c in sorted(self.containers)]

    def running_containers(self) -> List[Container]:
        """Containers currently in the RUNNING state, sorted by rank."""
        return [c for c in self.all_containers() if c.is_running]

    def endpoints(self) -> List[EndpointId]:
        """All endpoints across all containers, sorted."""
        eps: List[EndpointId] = []
        for container in self.all_containers():
            eps.extend(container.endpoints())
        return eps

    @property
    def all_running(self) -> bool:
        """Whether every container of the task is RUNNING."""
        return (
            len(self.containers) == self.num_containers
            and all(c.is_running for c in self.containers.values())
        )
