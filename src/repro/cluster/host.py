"""Physical hosts, GPUs, and SR-IOV RNICs.

A host carries an equal number of GPUs and RNICs (one dedicated RNIC per
GPU, the standard wiring for LLM pods — §3.1 of the paper).  Each RNIC is
carved into SR-IOV virtual functions (VFs); binding a container to an RNIC
means allocating one of its VFs, which is how the production system
described in the paper shares NICs among containers (§7, footnote 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.identifiers import ContainerId, HostId, RnicId, VfId

__all__ = ["Gpu", "Host", "HostInventoryError", "Rnic"]


class HostInventoryError(RuntimeError):
    """Raised when GPU/VF allocation requests cannot be satisfied."""


@dataclass
class Gpu:
    """A GPU slot on a host; ``bound_to`` is the owning container if any."""

    host: HostId
    index: int
    bound_to: Optional[ContainerId] = None

    @property
    def free(self) -> bool:
        """Whether the GPU is unallocated."""
        return self.bound_to is None

    def __str__(self) -> str:
        return f"{self.host}/gpu-{self.index}"


class Rnic:
    """A physical RDMA NIC with a pool of SR-IOV virtual functions."""

    def __init__(
        self, rnic_id: RnicId, num_vfs: int = 128, bandwidth_gbps: float = 200.0
    ) -> None:
        if num_vfs < 1:
            raise HostInventoryError("an RNIC needs at least one VF")
        self.id = rnic_id
        self.num_vfs = num_vfs
        self.bandwidth_gbps = bandwidth_gbps
        self.underlay_ip = f"10.{rnic_id.host.index}.{rnic_id.rail}.1"
        self._vf_owner: Dict[int, ContainerId] = {}

    @property
    def rail(self) -> int:
        """Rail index (decides the ToR the RNIC attaches to)."""
        return self.id.rail

    @property
    def allocated_vfs(self) -> int:
        """Number of VFs currently bound to containers."""
        return len(self._vf_owner)

    def allocate_vf(self, owner: ContainerId) -> VfId:
        """Bind the lowest free VF to ``owner``."""
        for index in range(self.num_vfs):
            if index not in self._vf_owner:
                self._vf_owner[index] = owner
                return VfId(self.id, index)
        raise HostInventoryError(f"{self.id} has no free VFs")

    def release_vf(self, vf: VfId) -> None:
        """Return a VF to the pool."""
        if vf.rnic != self.id:
            raise HostInventoryError(f"{vf} does not belong to {self.id}")
        if vf.index not in self._vf_owner:
            raise HostInventoryError(f"{vf} is not allocated")
        del self._vf_owner[vf.index]

    def owner_of(self, vf: VfId) -> Optional[ContainerId]:
        """The container owning ``vf``, or ``None``."""
        return self._vf_owner.get(vf.index)

    def release_all(self, owner: ContainerId) -> int:
        """Release every VF held by ``owner``; returns the count."""
        victims = [i for i, o in self._vf_owner.items() if o == owner]
        for index in victims:
            del self._vf_owner[index]
        return len(victims)

    def __str__(self) -> str:
        return str(self.id)


@dataclass
class Host:
    """A physical host: GPUs plus one RNIC per rail."""

    id: HostId
    gpus: List[Gpu] = field(default_factory=list)
    rnics: List[Rnic] = field(default_factory=list)

    @staticmethod
    def build(
        host_id: HostId,
        num_gpus: int = 8,
        num_vfs_per_rnic: int = 128,
        bandwidth_gbps: float = 200.0,
    ) -> "Host":
        """Construct a host with ``num_gpus`` GPUs and matching RNICs."""
        if num_gpus < 1:
            raise HostInventoryError("a host needs at least one GPU")
        gpus = [Gpu(host_id, i) for i in range(num_gpus)]
        rnics = [
            Rnic(RnicId(host_id, rail), num_vfs_per_rnic, bandwidth_gbps)
            for rail in range(num_gpus)
        ]
        return Host(id=host_id, gpus=gpus, rnics=rnics)

    @property
    def num_gpus(self) -> int:
        """GPU slots on this host."""
        return len(self.gpus)

    def free_gpus(self) -> List[Gpu]:
        """GPUs not bound to any container."""
        return [g for g in self.gpus if g.free]

    def rnic(self, rail: int) -> Rnic:
        """The RNIC on ``rail``."""
        if not 0 <= rail < len(self.rnics):
            raise HostInventoryError(f"{self.id} has no rail {rail}")
        return self.rnics[rail]

    def allocate(
        self, owner: ContainerId, num_gpus: int
    ) -> "HostAllocation":
        """Bind ``num_gpus`` GPUs plus one VF on each matching rail.

        GPUs and RNIC rails are paired one-to-one, so requesting four GPUs
        yields VFs on rails of the chosen GPUs.
        """
        free = self.free_gpus()
        if len(free) < num_gpus:
            raise HostInventoryError(
                f"{self.id} has {len(free)} free GPUs, need {num_gpus}"
            )
        chosen = free[:num_gpus]
        vfs = []
        for gpu in chosen:
            gpu.bound_to = owner
            vfs.append(self.rnics[gpu.index].allocate_vf(owner))
        return HostAllocation(host=self.id, owner=owner,
                              gpu_indices=[g.index for g in chosen], vfs=vfs)

    def release(self, allocation: "HostAllocation") -> None:
        """Undo a previous :meth:`allocate`."""
        if allocation.host != self.id:
            raise HostInventoryError(
                f"allocation belongs to {allocation.host}, not {self.id}"
            )
        for index in allocation.gpu_indices:
            if self.gpus[index].bound_to == allocation.owner:
                self.gpus[index].bound_to = None
        for vf in allocation.vfs:
            rnic = self.rnics[vf.rnic.rail]
            if rnic.owner_of(vf) == allocation.owner:
                rnic.release_vf(vf)


@dataclass(frozen=True)
class HostAllocation:
    """The GPUs and VFs a container holds on one host."""

    host: HostId
    owner: ContainerId
    gpu_indices: List[int]
    vfs: List[VfId]

    @property
    def rails(self) -> List[int]:
        """Rail indices of the allocated VFs, in slot order."""
        return [vf.rnic.rail for vf in self.vfs]
