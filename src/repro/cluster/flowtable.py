"""OVS flow tables and RNIC offload tables.

Each host runs a virtual switch (OVS) whose flow table maps
``(VNI, destination overlay IP)`` to a forwarding action — either VXLAN
encapsulation towards a remote RNIC's underlay IP, or local delivery to a
VF.  Hot rules are offloaded into the RNIC's hardware table; packets that
miss the hardware table fall back to the much slower software path.

The split between the OVS table (source of truth) and the RNIC offload
table (cache) is exactly what the paper's Figure-18 case study exercises:
the RNIC silently invalidated an offloaded flow, packets fell back to
software, latency jumped from 16 µs to 120 µs, and SkeletonHunter found
the inconsistency by dumping and diffing the two tables (§5.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.cluster.identifiers import VfId

__all__ = [
    "ActionKind",
    "FlowAction",
    "FlowInconsistency",
    "FlowKey",
    "FlowRule",
    "FlowTable",
    "RnicOffloadTable",
    "diff_tables",
]


@dataclass(frozen=True, order=True)
class FlowKey:
    """Match fields: the VXLAN network identifier and overlay dst IP."""

    vni: int
    dst_ip: str

    def __str__(self) -> str:
        return f"vni={self.vni},dst={self.dst_ip}"


class ActionKind(enum.Enum):
    """What to do with a matching packet."""

    ENCAP = "encap"      # VXLAN-encapsulate towards a remote underlay IP
    DELIVER = "deliver"  # decapsulate and hand to a local VF


@dataclass(frozen=True)
class FlowAction:
    """A forwarding action; exactly one target field is set per kind."""

    kind: ActionKind
    remote_underlay_ip: Optional[str] = None
    local_vf: Optional[VfId] = None

    def __post_init__(self) -> None:
        if self.kind == ActionKind.ENCAP and not self.remote_underlay_ip:
            raise ValueError("ENCAP action needs remote_underlay_ip")
        if self.kind == ActionKind.DELIVER and self.local_vf is None:
            raise ValueError("DELIVER action needs local_vf")


@dataclass
class FlowRule:
    """An installed rule with hit counters and offload bookkeeping."""

    key: FlowKey
    action: FlowAction
    offloaded: bool = False
    offloaded_to: Optional[str] = None  # RNIC device name holding the copy
    packets: int = 0

    def hit(self) -> None:
        """Record one packet matching this rule."""
        self.packets += 1


class FlowTable:
    """A keyed table of flow rules (the OVS software table).

    Every *forwarding-relevant* mutation (a rule appearing, being
    replaced, or disappearing) increments :attr:`version` and fires the
    optional :attr:`on_mutate` callback.  The overlay uses this to fold
    table churn into its resolution epoch so cached probe resolutions
    are invalidated the moment any table they walked through changes.
    Hit-counter updates (:meth:`FlowRule.hit`) deliberately do *not*
    count: they never change where a packet goes.
    """

    def __init__(self, name: str = "ovs"):
        self.name = name
        self.version = 0
        self.on_mutate: Optional[Callable[[], None]] = None
        self._rules: Dict[FlowKey, FlowRule] = {}

    def __len__(self) -> int:
        return len(self._rules)

    def _mutated(self) -> None:
        self.version += 1
        if self.on_mutate is not None:
            self.on_mutate()

    def install(self, key: FlowKey, action: FlowAction) -> FlowRule:
        """Install the rule for ``key``; last write wins.

        Duplicate-key semantics, which the cluster-wide
        ``flowtable.offload_consistency`` verification pass relies on:

        * same ``action`` again → idempotent; the existing rule (with
          its hit counters and offload bookkeeping) is returned
          unchanged, so a redundant re-install cannot silently strand
          a hardware copy;
        * a **different** ``action`` → the rule is replaced wholesale
          and its offload state reset — the caller must re-offload,
          exactly as a real OVS revalidation would.  Any hardware copy
          left behind under the old action is a genuine inconsistency,
          and the verifier reports it against the stale RNIC cache.
        """
        existing = self._rules.get(key)
        if existing is not None and existing.action == action:
            return existing
        rule = FlowRule(key=key, action=action)
        self._rules[key] = rule
        self._mutated()
        return rule

    def remove(self, key: FlowKey) -> bool:
        """Delete the rule for ``key``; returns whether it existed."""
        existed = self._rules.pop(key, None) is not None
        if existed:
            self._mutated()
        return existed

    def lookup(self, key: FlowKey) -> Optional[FlowRule]:
        """The rule matching ``key``, or ``None`` on a miss."""
        return self._rules.get(key)

    def rules(self) -> List[FlowRule]:
        """All rules sorted by key (a stable 'table dump')."""
        return [self._rules[k] for k in sorted(self._rules)]

    def keys(self) -> List[FlowKey]:
        """All match keys, sorted."""
        return sorted(self._rules)

    def clear(self) -> None:
        """Drop every rule."""
        if self._rules:
            self._rules.clear()
            self._mutated()


class RnicOffloadTable(FlowTable):
    """The RNIC hardware flow cache, mirroring offloaded OVS rules."""

    def __init__(self, name: str = "rnic-offload"):
        super().__init__(name)
        self.invalidations = 0

    def invalidate(self, key: FlowKey) -> bool:
        """Evict a hardware rule (e.g. by a buggy counter-refresh path)."""
        existed = self.remove(key)
        if existed:
            self.invalidations += 1
        return existed


@dataclass(frozen=True)
class FlowInconsistency:
    """A disagreement between the OVS table and the RNIC offload cache."""

    key: FlowKey
    reason: str


def diff_tables(
    ovs: FlowTable,
    offload: RnicOffloadTable,
    rnic_name: Optional[str] = None,
) -> List[FlowInconsistency]:
    """Diff the OVS software table against one RNIC's hardware cache.

    Flags rules that OVS believes are offloaded (to this RNIC, when
    ``rnic_name`` is given) but are missing from the hardware table (the
    Figure-18 failure mode), hardware rules with no software counterpart
    (stale entries), action mismatches, and rules stuck on the software
    path (never offloaded at all).
    """
    problems: List[FlowInconsistency] = []
    for rule in ovs.rules():
        if rnic_name is not None and rule.offloaded_to not in (
            None, rnic_name
        ):
            continue  # this rule lives in a different RNIC's cache
        hw = offload.lookup(rule.key)
        if rule.offloaded and hw is None:
            if rnic_name is None or rule.offloaded_to == rnic_name:
                problems.append(FlowInconsistency(
                    rule.key, "marked offloaded in OVS but absent from RNIC"
                ))
        elif hw is not None and hw.action != rule.action:
            problems.append(FlowInconsistency(
                rule.key, "RNIC action differs from OVS action"
            ))
        elif not rule.offloaded and hw is None:
            problems.append(FlowInconsistency(
                rule.key, "rule not offloaded (software path)"
            ))
    ovs_keys = set(ovs.keys())
    for key in offload.keys():
        if key not in ovs_keys:
            problems.append(FlowInconsistency(
                key, "stale RNIC rule with no OVS counterpart"
            ))
    return problems
