"""Timed spans: how long each pipeline stage took, wall and sim clock.

A :class:`Span` covers one unit of pipeline work — a probe round, an
analyzer flush, a localization run — and records both clocks: wall time
(``perf_counter``, what an operator's latency dashboard shows) and
simulation time (where in the run the work happened).  Spans nest: the
recorder keeps a stack of open spans so a localization span started
inside a probe-round span knows its parent.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["NULL_SPAN", "NullSpan", "Span"]


@dataclass
class Span:
    """One timed unit of pipeline work."""

    name: str
    span_id: int
    parent_id: Optional[int] = None
    sim_start: float = 0.0
    sim_end: Optional[float] = None
    wall_start: float = 0.0
    wall_end: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def closed(self) -> bool:
        """Whether the span has finished."""
        return self.wall_end is not None

    @property
    def wall_duration_s(self) -> Optional[float]:
        """Elapsed wall-clock seconds, once closed."""
        if self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    @property
    def sim_duration_s(self) -> float:
        """Elapsed simulation seconds (0 for instantaneous work)."""
        if self.sim_end is None:
            return 0.0
        return self.sim_end - self.sim_start

    def set(self, **attrs: Any) -> "Span":
        """Attach result attributes to the span; returns ``self``."""
        self.attrs.update(attrs)
        return self

    def close(self, sim_time: Optional[float] = None) -> None:
        """Stamp the end of the span on both clocks."""
        self.wall_end = time.perf_counter()
        if sim_time is not None:
            self.sim_end = sim_time
        elif self.sim_end is None:
            self.sim_end = self.sim_start

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view (the JSONL export row)."""
        return {
            "type": "span",
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "wall_duration_s": self.wall_duration_s,
            "attrs": dict(self.attrs),
        }


class NullSpan:
    """The do-nothing span handed out when recording is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "NullSpan":
        return self

    def close(self, sim_time: Optional[float] = None) -> None:
        return None

    @property
    def closed(self) -> bool:
        return True


NULL_SPAN = NullSpan()
