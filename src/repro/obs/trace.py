"""The trace recorder: structured events + timed spans + shared metrics.

This is the reproduction's analogue of the paper's log service (§6):
every pipeline stage — probing, detection, localization, handling —
emits structured events and timed spans into one shared
:class:`TraceRecorder`, whose :class:`~repro.sim.metrics.MetricRegistry`
simultaneously accumulates the per-round counters the dashboards plot.

The recorder is designed to be threaded through hot paths, so every
entry point is guarded: a disabled recorder (``enabled=False``) costs
one attribute check and records nothing, and components treat the
recorder as optional (``None`` means "not observed").
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.span import NULL_SPAN, Span
from repro.sim.metrics import MetricRegistry

__all__ = ["ScopedRecorder", "TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One structured log record emitted by a pipeline stage."""

    seq: int
    kind: str               # e.g. "round.complete", "localize.tomography"
    sim_time: float
    wall_time: float
    span_id: Optional[int] = None
    fields: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable view (the JSONL export row)."""
        return {
            "type": "event",
            "seq": self.seq,
            "kind": self.kind,
            "sim_time": self.sim_time,
            "span_id": self.span_id,
            "fields": dict(self.fields),
        }


class TraceRecorder:
    """Collects events, spans, and metrics for one monitored run."""

    def __init__(
        self,
        metrics: Optional[MetricRegistry] = None,
        enabled: bool = True,
        max_events: Optional[int] = None,
        max_spans: Optional[int] = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.enabled = enabled
        self.max_events = max_events
        # Bounded span retention, mirroring TimeSeries/max_events: a
        # long soak would otherwise grow span storage without limit.
        # Evicted (oldest, closed-first) spans are counted on both the
        # attribute and the shared registry ("trace.dropped_spans") so
        # a dashboard can see that its trace view is truncated.
        self.max_spans = max_spans
        self.dropped_events = 0
        self.dropped_spans = 0
        self._events: List[TraceEvent] = []
        self._spans: List[Span] = []
        self._seq = 0
        self._stack: List[int] = []     # ids of currently-open spans

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def event(
        self, kind: str, sim_time: float = 0.0, **fields: Any
    ) -> Optional[TraceEvent]:
        """Record one structured event (no-op when disabled)."""
        if not self.enabled:
            return None
        self._seq += 1
        record = TraceEvent(
            seq=self._seq, kind=kind, sim_time=sim_time,
            wall_time=time.perf_counter(),
            span_id=self._stack[-1] if self._stack else None,
            fields=fields,
        )
        self._events.append(record)
        if self.max_events is not None and len(self._events) > self.max_events:
            excess = len(self._events) - self.max_events
            del self._events[:excess]
            self.dropped_events += excess
        return record

    @contextmanager
    def span(
        self, name: str, sim_time: float = 0.0, **attrs: Any
    ) -> Iterator[Any]:
        """Time a block of pipeline work; yields the open span.

        The caller may stamp ``span.close(sim_time=...)`` inside the
        block to record simulated elapsed time; otherwise the span closes
        with ``sim_end == sim_start`` (instantaneous in sim time).
        """
        if not self.enabled:
            yield NULL_SPAN
            return
        self._seq += 1
        span = Span(
            name=name, span_id=self._seq,
            parent_id=self._stack[-1] if self._stack else None,
            sim_start=sim_time, wall_start=time.perf_counter(),
            attrs=dict(attrs),
        )
        self._spans.append(span)
        self._stack.append(span.span_id)
        if (
            self.max_spans is not None
            and len(self._spans) > self.max_spans
        ):
            self._evict_spans()
        try:
            yield span
        finally:
            self._stack.pop()
            if not span.closed:
                span.close()

    def _evict_spans(self) -> None:
        """Drop the oldest closed spans down to ``max_spans``.

        Open spans are never evicted — their ``close()`` still runs and
        queries during the block must find them — so the list can
        transiently exceed the cap by the nesting depth.
        """
        excess = len(self._spans) - self.max_spans
        kept: List[Span] = []
        dropped = 0
        for span in self._spans:
            if dropped < excess and span.closed:
                dropped += 1
                continue
            kept.append(span)
        if dropped:
            self._spans = kept
            self.dropped_spans += dropped
            self.metrics.increment("trace.dropped_spans", dropped)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter on the shared registry (when enabled)."""
        if self.enabled:
            self.metrics.increment(name, amount)

    def sample(self, name: str, sim_time: float, value: float) -> None:
        """Append to a time series on the shared registry (when enabled)."""
        if self.enabled:
            self.metrics.series(name).record(sim_time, value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        """All events, or only those of one ``kind`` (prefix-matched
        when ``kind`` ends with ``.``)."""
        if kind is None:
            return list(self._events)
        if kind.endswith("."):
            return [e for e in self._events if e.kind.startswith(kind)]
        return [e for e in self._events if e.kind == kind]

    def spans(self, name: Optional[str] = None) -> List[Span]:
        """All spans, or only those called ``name``."""
        if name is None:
            return list(self._spans)
        return [s for s in self._spans if s.name == name]

    def last_event(self, kind: str) -> Optional[TraceEvent]:
        """The most recent event of ``kind``, if any."""
        for record in reversed(self._events):
            if record.kind == kind:
                return record
        return None

    def children_of(self, span: Span) -> List[Span]:
        """Spans directly nested inside ``span``."""
        return [s for s in self._spans if s.parent_id == span.span_id]

    def clear(self) -> None:
        """Drop all recorded events and spans (counters are kept)."""
        self._events.clear()
        self._spans.clear()
        self._stack.clear()

    def scoped(self, prefix: str) -> "ScopedRecorder":
        """A view of this recorder that name-prefixes everything.

        The shard coordinator hands each shard a
        ``recorder.scoped(f"shard.{i}.")`` so per-shard spans, events,
        and counters land in the run's single recorder/registry under a
        distinguishable namespace, while merged (plane-wide) metrics
        keep their unprefixed names.
        """
        return ScopedRecorder(self, prefix)


class ScopedRecorder:
    """A name-prefixing facade over a shared :class:`TraceRecorder`.

    Implements the recorder surface components rely on (``event``,
    ``span``, ``count``, ``sample``, ``enabled``, ``metrics``); every
    event kind, span name, counter, and series name gains the scope
    prefix.  Queries go to the underlying recorder.
    """

    def __init__(self, recorder: TraceRecorder, prefix: str) -> None:
        self.recorder = recorder
        self.prefix = prefix

    @property
    def enabled(self) -> bool:
        """Mirrors the underlying recorder's enablement."""
        return self.recorder.enabled

    @property
    def metrics(self) -> MetricRegistry:
        """The shared registry (counter names carry the prefix)."""
        return self.recorder.metrics

    def event(
        self, kind: str, sim_time: float = 0.0, **fields: Any
    ) -> Optional[TraceEvent]:
        """Record an event under the scope's namespace."""
        return self.recorder.event(
            self.prefix + kind, sim_time=sim_time, **fields
        )

    def span(self, name: str, sim_time: float = 0.0, **attrs: Any):
        """Open a span under the scope's namespace."""
        return self.recorder.span(
            self.prefix + name, sim_time=sim_time, **attrs
        )

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment a prefixed counter on the shared registry."""
        self.recorder.count(self.prefix + name, amount)

    def sample(self, name: str, sim_time: float, value: float) -> None:
        """Append to a prefixed series on the shared registry."""
        self.recorder.sample(self.prefix + name, sim_time, value)
