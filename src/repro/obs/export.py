"""Exporters: JSON-lines trace dumps and Prometheus text metrics.

Two formats cover the two consumers the paper's log service feeds (§6):

* **JSONL** — the full trace (events and spans interleaved in recording
  order), one JSON object per line, for incident forensics and replay;
* **Prometheus text format** — counters and latest series samples, for
  the per-round dashboards (``probes.sent`` becomes
  ``skeletonhunter_probes_sent_total`` and so on).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.trace import TraceRecorder
from repro.sim.metrics import MetricRegistry

__all__ = [
    "escape_label_value",
    "format_labels",
    "load_jsonl",
    "parse_prometheus",
    "parse_prometheus_samples",
    "to_jsonl",
    "to_prometheus",
    "unescape_label_value",
    "write_jsonl",
]

_PREFIX = "skeletonhunter"
_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _rows(recorder: TraceRecorder) -> List[Dict[str, Any]]:
    rows = [e.to_dict() for e in recorder.events()]
    rows.extend(s.to_dict() for s in recorder.spans())
    # Interleave in recording order: span ids and event seqs share one
    # sequence counter, so sorting on it reconstructs the timeline.
    rows.sort(key=lambda r: r.get("seq", r.get("span_id", 0)))
    return rows


def to_jsonl(recorder: TraceRecorder) -> str:
    """Render the recorder's full trace as JSON-lines text."""
    return "\n".join(
        json.dumps(row, sort_keys=True, default=str)
        for row in _rows(recorder)
    )


def write_jsonl(recorder: TraceRecorder, path: str) -> int:
    """Write the JSONL trace to ``path``; returns the row count."""
    rows = _rows(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True, default=str))
            handle.write("\n")
    return len(rows)


def load_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse JSONL text back into row dicts (the round-trip inverse)."""
    return [
        json.loads(line) for line in text.splitlines() if line.strip()
    ]


def metric_name(name: str, counter: bool = False) -> str:
    """Map a registry name to a Prometheus metric name.

    Dots become underscores, invalid characters are stripped, and
    counters get the conventional ``_total`` suffix:
    ``probes.sent`` -> ``skeletonhunter_probes_sent_total``.
    """
    flat = _NAME_RE.sub("_", name.replace(".", "_"))
    suffix = "_total" if counter else ""
    return f"{_PREFIX}_{flat}{suffix}"


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format.

    Backslash, double quote, and newline are the three characters the
    text format requires escaping (in that order — escaping the escape
    character first keeps the mapping bijective).
    """
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def unescape_label_value(text: str) -> str:
    """Invert :func:`escape_label_value` (a left-to-right scan: the
    naive chained ``replace`` would corrupt ``\\\\n`` sequences)."""
    out: List[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\" and index + 1 < len(text):
            escaped = text[index + 1]
            if escaped == "n":
                out.append("\n")
            else:  # \\ and \" map to themselves; others pass through
                out.append(escaped)
            index += 2
            continue
        out.append(char)
        index += 1
    return "".join(out)


def format_labels(labels: Dict[str, str]) -> str:
    """Render ``{key="value",...}`` (sorted, escaped); ``""`` if empty."""
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{escape_label_value(str(value))}"'
        for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def to_prometheus(
    source: Union[TraceRecorder, MetricRegistry],
    labels: Optional[Dict[str, str]] = None,
) -> str:
    """Render a registry (or a recorder's registry) as Prometheus text.

    ``labels`` attaches a constant label set to every sample (run id,
    seed, shard — whatever distinguishes this export on a shared
    scrape), escaped per the exposition format.  Without labels the
    output is byte-identical to what earlier versions emitted.
    """
    registry = source.metrics if isinstance(source, TraceRecorder) else source
    block = format_labels(labels or {})
    lines: List[str] = []
    for name, value in sorted(registry.counters().items()):
        flat = metric_name(name, counter=True)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat}{block} {_format(value)}")
    for name in registry.series_names():
        series = registry.series(name)
        last = series.last()
        if last is None:
            continue
        flat = metric_name(name)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat}{block} {_format(last[1])}")
        lines.append(f"# TYPE {flat}_samples counter")
        lines.append(
            f"{flat}_samples{block} {len(series) + series.dropped}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def _split_sample(line: str) -> Tuple[str, Dict[str, str], str]:
    """Split one sample line into (name, labels, value text).

    The label block needs a real scanner: a quoted value may contain
    ``{``, ``}``, ``,``, spaces, or escaped quotes, so naive splitting
    on any of those corrupts the sample.
    """
    brace = line.find("{")
    space = line.find(" ")
    if brace == -1 or (space != -1 and space < brace):
        name, _, value = line.partition(" ")
        return name, {}, value
    name = line[:brace]
    labels: Dict[str, str] = {}
    index = brace + 1
    while index < len(line) and line[index] != "}":
        if line[index] == ",":
            index += 1
            continue
        eq = line.index("=", index)
        key = line[index:eq]
        if line[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {line!r}")
        index = eq + 2
        chars: List[str] = []
        while line[index] != '"':
            if line[index] == "\\":
                chars.append(line[index:index + 2])
                index += 2
            else:
                chars.append(line[index])
                index += 1
        labels[key] = unescape_label_value("".join(chars))
        index += 1
    if index >= len(line):
        raise ValueError(f"unterminated label block in {line!r}")
    return name, labels, line[index + 1:].strip()


def parse_prometheus_samples(
    text: str,
) -> List[Tuple[str, Dict[str, str], str, float]]:
    """Parse Prometheus text to ``(name, labels, type, value)`` rows.

    The label-aware inverse of :func:`to_prometheus`: values containing
    ``\\``, ``"``, or newlines round-trip exactly.
    """
    types: Dict[str, str] = {}
    out: List[Tuple[str, Dict[str, str], str, float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        name, labels, value = _split_sample(line)
        out.append((name, labels, types.get(name, "untyped"),
                    float(value)))
    return out


def parse_prometheus(text: str) -> Dict[str, Tuple[str, float]]:
    """Parse Prometheus text back to ``{name: (type, value)}``.

    Labels are parsed (so labelled samples no longer corrupt the
    value field) but dropped from the key — the historical bare-name
    view; use :func:`parse_prometheus_samples` to keep them.
    """
    return {
        name: (kind, value)
        for name, _labels, kind, value in parse_prometheus_samples(text)
    }


def _format(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
