"""Exporters: JSON-lines trace dumps and Prometheus text metrics.

Two formats cover the two consumers the paper's log service feeds (§6):

* **JSONL** — the full trace (events and spans interleaved in recording
  order), one JSON object per line, for incident forensics and replay;
* **Prometheus text format** — counters and latest series samples, for
  the per-round dashboards (``probes.sent`` becomes
  ``skeletonhunter_probes_sent_total`` and so on).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Tuple, Union

from repro.obs.trace import TraceRecorder
from repro.sim.metrics import MetricRegistry

__all__ = [
    "load_jsonl",
    "parse_prometheus",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
]

_PREFIX = "skeletonhunter"
_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def _rows(recorder: TraceRecorder) -> List[Dict[str, Any]]:
    rows = [e.to_dict() for e in recorder.events()]
    rows.extend(s.to_dict() for s in recorder.spans())
    # Interleave in recording order: span ids and event seqs share one
    # sequence counter, so sorting on it reconstructs the timeline.
    rows.sort(key=lambda r: r.get("seq", r.get("span_id", 0)))
    return rows


def to_jsonl(recorder: TraceRecorder) -> str:
    """Render the recorder's full trace as JSON-lines text."""
    return "\n".join(
        json.dumps(row, sort_keys=True, default=str)
        for row in _rows(recorder)
    )


def write_jsonl(recorder: TraceRecorder, path: str) -> int:
    """Write the JSONL trace to ``path``; returns the row count."""
    rows = _rows(recorder)
    with open(path, "w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True, default=str))
            handle.write("\n")
    return len(rows)


def load_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse JSONL text back into row dicts (the round-trip inverse)."""
    return [
        json.loads(line) for line in text.splitlines() if line.strip()
    ]


def metric_name(name: str, counter: bool = False) -> str:
    """Map a registry name to a Prometheus metric name.

    Dots become underscores, invalid characters are stripped, and
    counters get the conventional ``_total`` suffix:
    ``probes.sent`` -> ``skeletonhunter_probes_sent_total``.
    """
    flat = _NAME_RE.sub("_", name.replace(".", "_"))
    suffix = "_total" if counter else ""
    return f"{_PREFIX}_{flat}{suffix}"


def to_prometheus(
    source: Union[TraceRecorder, MetricRegistry]
) -> str:
    """Render a registry (or a recorder's registry) as Prometheus text."""
    registry = source.metrics if isinstance(source, TraceRecorder) else source
    lines: List[str] = []
    for name, value in sorted(registry.counters().items()):
        flat = metric_name(name, counter=True)
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format(value)}")
    for name in registry.series_names():
        series = registry.series(name)
        last = series.last()
        if last is None:
            continue
        flat = metric_name(name)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format(last[1])}")
        lines.append(f"# TYPE {flat}_samples counter")
        lines.append(f"{flat}_samples {len(series) + series.dropped}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> Dict[str, Tuple[str, float]]:
    """Parse Prometheus text back to ``{name: (type, value)}``.

    Only covers what :func:`to_prometheus` emits — enough to round-trip
    exports in tests and ad-hoc tooling.
    """
    types: Dict[str, str] = {}
    out: Dict[str, Tuple[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            types[name] = kind
            continue
        if line.startswith("#"):
            continue
        name, _, value = line.partition(" ")
        out[name] = (types.get(name, "untyped"), float(value))
    return out


def _format(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
