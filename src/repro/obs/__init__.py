"""Observability: pipeline tracing, run-wide metrics, explainable verdicts.

The reproduction's analogue of the paper's log-service dashboards (§6):

* :mod:`repro.obs.span` — timed spans (wall + sim clock) for pipeline
  stages;
* :mod:`repro.obs.trace` — the :class:`TraceRecorder` every component
  emits structured events into, sharing one
  :class:`~repro.sim.metrics.MetricRegistry`;
* :mod:`repro.obs.export` — JSON-lines trace dumps and Prometheus text
  metrics;
* :mod:`repro.obs.explain` — re-assembles the recorded evidence chain
  (walk steps, tomography votes, flow-table diffs) behind any diagnosis.

Enable it by building a recorder and handing it to the system::

    from repro import TraceRecorder, build_scenario

    scenario = build_scenario(observe=True)       # or observability=...
    scenario.run_for(300)
    obs = scenario.observability
    print(obs.metrics.counter("probes.sent"))
    print(to_jsonl(obs))
"""

from repro.obs.explain import explain_diagnosis, explain_report
from repro.obs.export import (
    load_jsonl,
    parse_prometheus,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.obs.span import NULL_SPAN, NullSpan, Span
from repro.obs.trace import TraceEvent, TraceRecorder

__all__ = [
    "NULL_SPAN",
    "NullSpan",
    "Span",
    "TraceEvent",
    "TraceRecorder",
    "explain_diagnosis",
    "explain_report",
    "load_jsonl",
    "parse_prometheus",
    "to_jsonl",
    "to_prometheus",
    "write_jsonl",
]
