"""Explainable diagnoses: render the evidence chain behind a verdict.

Fault-localization systems are only trusted when the evidence behind
each blamed component is inspectable (Flock's votes, deTector's walk
steps).  The localizer records its working — overlay walk steps,
tomography votes per link, flow-table validation outcomes, host
concentration counts — as trace events; this module re-assembles those
events into the operator-readable chain for any
:class:`~repro.core.localization.Diagnosis`.

Without a recorder the explanation degrades gracefully to the one-line
``evidence`` string the diagnosis has always carried.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.obs.trace import TraceEvent, TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle
    from repro.core.localization import Diagnosis, LocalizationReport

__all__ = ["explain_diagnosis", "explain_report", "pair_label"]


def pair_label(pair: Any) -> str:
    """The canonical display form of a probe pair."""
    return f"{pair.src}<->{pair.dst}"


# ----------------------------------------------------------------------
# Per-diagnosis explanation
# ----------------------------------------------------------------------

def explain_diagnosis(
    diagnosis: "Diagnosis",
    recorder: Optional[TraceRecorder] = None,
) -> str:
    """Render the full evidence chain behind one diagnosis."""
    lines = [
        f"diagnosis: {diagnosis.component} "
        f"[{diagnosis.component_class.value}]",
        f"  layer: {diagnosis.layer}, "
        f"confidence: {diagnosis.confidence:.2f}",
        f"  verdict: {diagnosis.evidence}",
        "  failing pairs: " + ", ".join(
            pair_label(p) for p in diagnosis.pairs
        ),
    ]
    if recorder is None:
        lines.append("  (no trace recorder attached: evidence chain "
                     "unavailable)")
        return "\n".join(lines)
    chain = _evidence_lines(diagnosis, recorder)
    if chain:
        lines.append("  evidence chain:")
        lines.extend("    " + line for line in chain)
    detection = _detection_lines(diagnosis, recorder)
    if detection:
        lines.append("  triggering anomalies:")
        lines.extend("    " + line for line in detection)
    return "\n".join(lines)


def _evidence_lines(
    diagnosis: "Diagnosis", recorder: TraceRecorder
) -> List[str]:
    layer = diagnosis.layer
    if layer == "overlay":
        return _overlay_chain(diagnosis, recorder)
    if layer == "underlay":
        return _tomography_chain(diagnosis, recorder)
    if layer == "rnic":
        return _rnic_chain(diagnosis, recorder)
    if layer == "host":
        return _host_chain(diagnosis, recorder)
    return []


def _matching(
    recorder: TraceRecorder, kind: str, diagnosis: "Diagnosis"
) -> Optional[TraceEvent]:
    """The latest ``kind`` event that blamed this diagnosis's component."""
    component = diagnosis.component
    for event in reversed(recorder.events(kind)):
        blamed = event.fields.get("components")
        if blamed is None:
            blamed = [event.fields.get("component")]
        if component in blamed:
            return event
    return None


def _overlay_chain(
    diagnosis: "Diagnosis", recorder: TraceRecorder
) -> List[str]:
    event = _matching(recorder, "localize.overlay", diagnosis)
    if event is None:
        return []
    fields = event.fields
    lines = [
        f"overlay walk for {fields.get('pair')} "
        f"(reached={fields.get('reached')}, loop={fields.get('loop')}):"
    ]
    for step in fields.get("steps", []):
        marker = "ok " if step.get("ok") else "XX "
        note = f"  ({step['note']})" if step.get("note") else ""
        lines.append(f"  {marker}{step.get('component')}{note}")
    return lines


def _tomography_chain(
    diagnosis: "Diagnosis", recorder: TraceRecorder
) -> List[str]:
    event = _matching(recorder, "localize.tomography", diagnosis)
    if event is None:
        return []
    fields = event.fields
    votes: Dict[str, int] = fields.get("votes", {})
    lines = [
        f"tomography over {fields.get('failing_paths')} failing paths "
        f"({fields.get('group')} symptoms, "
        f"exonerate={fields.get('exonerate')}, "
        f"{fields.get('healthy_paths')} healthy paths):"
    ]
    for link, count in sorted(
        votes.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        suspect = " <- suspect" if link in fields.get("suspects", []) else ""
        lines.append(f"  {count} vote(s): {link}{suspect}")
    promoted = fields.get("promoted_component")
    if promoted:
        lines.append(
            f"  promoted to {fields.get('promoted_kind')}: {promoted}"
        )
    return lines


def _rnic_chain(
    diagnosis: "Diagnosis", recorder: TraceRecorder
) -> List[str]:
    event = _matching(recorder, "localize.rnic", diagnosis)
    if event is None:
        return []
    fields = event.fields
    lines = [
        f"flow-table validation of {fields.get('rnic')} "
        f"(pair {fields.get('pair')}):",
        f"  {fields.get('inconsistencies')} OVS/RNIC inconsistencies, "
        f"{fields.get('silently_invalidated')} silently invalidated, "
        f"{fields.get('software_path_rules')} stuck on software path",
    ]
    for reason in fields.get("examples", []):
        lines.append(f"  e.g. {reason}")
    return lines


def _host_chain(
    diagnosis: "Diagnosis", recorder: TraceRecorder
) -> List[str]:
    event = _matching(recorder, "localize.host", diagnosis)
    if event is None:
        return []
    votes: Dict[str, int] = event.fields.get("votes", {})
    lines = ["failing-endpoint concentration per host:"]
    for host, count in sorted(
        votes.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        lines.append(f"  {count} endpoint(s): {host}")
    return lines


def _detection_lines(
    diagnosis: "Diagnosis", recorder: TraceRecorder, limit: int = 4
) -> List[str]:
    pairs = {pair_label(p) for p in diagnosis.pairs}
    matches = [
        e for e in recorder.events("detect.anomaly")
        if e.fields.get("pair") in pairs
    ]
    lines = [
        f"@{e.sim_time:.0f}s {e.fields.get('pair')}: "
        f"{e.fields.get('symptom')} via {e.fields.get('detector')} "
        f"(score {e.fields.get('score', 0.0):.2f}"
        + (
            f", threshold {e.fields.get('threshold'):.2f})"
            if e.fields.get("threshold") is not None else ")"
        )
        for e in matches[:limit]
    ]
    if len(matches) > limit:
        lines.append(f"... and {len(matches) - limit} more")
    return lines


# ----------------------------------------------------------------------
# Whole-report explanation
# ----------------------------------------------------------------------

def explain_report(
    report: "LocalizationReport",
    recorder: Optional[TraceRecorder] = None,
) -> str:
    """Render every diagnosis in a localization report, with evidence."""
    if not report.diagnoses and not report.unexplained:
        return "nothing to explain: no diagnoses and no unexplained events"
    sections = [
        explain_diagnosis(diagnosis, recorder)
        for diagnosis in report.diagnoses
    ]
    if report.unexplained:
        lines = ["unexplained failure events:"]
        for event in report.unexplained:
            lines.append(
                f"  {pair_label(event.pair)} ({event.symptom.value} "
                f"since {event.first_detected_at:.0f}s)"
            )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
