"""SkeletonHunter reproduction: diagnosing and localizing network failures
in containerized large model training (SIGCOMM 2025).

The package is organized bottom-up:

* :mod:`repro.sim` — discrete-event engine, seeded RNGs, metrics;
* :mod:`repro.cluster` — rail-optimized topology, hosts/RNICs/VFs,
  containers, orchestration, and the VXLAN overlay with OVS/RNIC flow
  tables;
* :mod:`repro.network` — probe packets, latency model, the Table-1 fault
  catalogue and injector, and the data-plane fabric;
* :mod:`repro.training` — TP/PP/DP/EP parallelism, collective traffic
  patterns, and burst-cycle throughput generation;
* :mod:`repro.analysis` — STFT features, LOF, constrained clustering,
  log-normal statistics;
* :mod:`repro.core` — SkeletonHunter itself: phased ping lists, traffic
  skeleton inference, anomaly detection, Algorithm-1 localization, and
  the :class:`~repro.core.system.SkeletonHunter` facade;
* :mod:`repro.bus` — durable telemetry bus with JSONL record/replay
  (``python -m repro record / replay / tail``);
* :mod:`repro.verify` — static fabric-verification passes and the
  determinism lint (``python -m repro.verify [--lint]``);
* :mod:`repro.baselines` — Pingmesh, deTector, and R-Pingmesh baselines;
* :mod:`repro.workloads` — production-statistics models and one-call
  monitored scenarios.

Quickstart::

    from repro import build_scenario, IssueType

    scenario = build_scenario(num_containers=8, gpus_per_container=8)
    scenario.run_for(120)                       # warm detection baselines
    scenario.apply_skeleton()                   # infer + shrink ping list
    fault = scenario.inject(IssueType.RNIC_PORT_DOWN,
                            scenario.rnic_of_rank(8))
    scenario.run_for(60)
    score, outcomes = scenario.score()
    print(score.precision, score.recall, score.localization_accuracy)
"""

from repro.cluster import (
    Cluster,
    Container,
    ContainerId,
    ContainerState,
    EndpointId,
    HostId,
    LinkId,
    Orchestrator,
    RailOptimizedTopology,
    RnicId,
    SwitchId,
    TaskId,
    TrainingTask,
)
from repro.core import (
    Analyzer,
    CampaignScore,
    CampaignScorer,
    Controller,
    DetectorConfig,
    Diagnosis,
    FailureEvent,
    InferredSkeleton,
    LocalizationReport,
    Localizer,
    PingList,
    ProbePair,
    SkeletonHunter,
    SkeletonInference,
    estimate_round_duration,
)
from repro.network import (
    DataPlaneFabric,
    Fault,
    FaultInjector,
    IssueType,
    LatencyModel,
    ProbeResult,
    Symptom,
    TransientCongestion,
)
from repro.bus import (
    JsonlRecorder,
    Recording,
    TailDashboard,
    TelemetryBus,
    Topic,
    load_recording,
)
from repro.obs import (
    Span,
    TraceEvent,
    TraceRecorder,
    explain_diagnosis,
    explain_report,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.sim import MetricRegistry, RngRegistry, SimulationEngine, TimeSeries
from repro.verify import (
    FabricVerificationError,
    FabricVerifier,
    Finding,
    VerificationContext,
    VerifierReport,
)
from repro.training import (
    ParallelismConfig,
    TrafficGenerator,
    TrainingWorkload,
    traffic_edges,
    traffic_matrix,
)
from repro.workloads import (
    MonitoredScenario,
    ProductionStatistics,
    build_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "Analyzer",
    "CampaignScore",
    "CampaignScorer",
    "Cluster",
    "Container",
    "ContainerId",
    "ContainerState",
    "Controller",
    "DataPlaneFabric",
    "DetectorConfig",
    "Diagnosis",
    "EndpointId",
    "FabricVerificationError",
    "FabricVerifier",
    "FailureEvent",
    "Fault",
    "FaultInjector",
    "Finding",
    "HostId",
    "InferredSkeleton",
    "IssueType",
    "JsonlRecorder",
    "LatencyModel",
    "LinkId",
    "LocalizationReport",
    "Localizer",
    "MetricRegistry",
    "MonitoredScenario",
    "Orchestrator",
    "ParallelismConfig",
    "PingList",
    "ProbePair",
    "ProbeResult",
    "ProductionStatistics",
    "RailOptimizedTopology",
    "Recording",
    "RngRegistry",
    "RnicId",
    "SimulationEngine",
    "SkeletonHunter",
    "SkeletonInference",
    "Span",
    "SwitchId",
    "Symptom",
    "TailDashboard",
    "TaskId",
    "TelemetryBus",
    "TimeSeries",
    "Topic",
    "TraceEvent",
    "TraceRecorder",
    "TrafficGenerator",
    "TrainingTask",
    "TrainingWorkload",
    "TransientCongestion",
    "VerificationContext",
    "VerifierReport",
    "build_scenario",
    "estimate_round_duration",
    "load_recording",
    "explain_diagnosis",
    "explain_report",
    "to_jsonl",
    "to_prometheus",
    "traffic_edges",
    "traffic_matrix",
    "write_jsonl",
    "__version__",
]
