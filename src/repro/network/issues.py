"""The catalogue of network issues from Table 1 of the paper.

Nineteen issue types across six component classes (physical switches /
inter-host network, RNICs, host boards, virtual switches, container
runtime, configurations — plus kernel-level causes), each with the symptom
the paper reports (packet loss, unconnectivity, or high latency).  The
fault injector turns each catalogue entry into a concrete perturbation of
the simulated data plane, and the evaluation harness scores localization
against the catalogue's component class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["ComponentClass", "IssueSpec", "IssueType", "Symptom", "ISSUE_CATALOG"]


class Symptom(enum.Enum):
    """Observable symptom of an issue (Table 1, 'Symptoms' column)."""

    PACKET_LOSS = "packet_loss"
    UNCONNECTIVITY = "unconnectivity"
    HIGH_LATENCY = "high_latency"


class ComponentClass(enum.Enum):
    """Component classes SkeletonHunter localizes issues to (Table 1)."""

    INTER_HOST_NETWORK = "inter_host_network"
    RNIC = "rnic"
    KERNEL = "kernel"
    HOST_BOARD = "host_board"
    VIRTUAL_SWITCH = "virtual_switch"
    CONTAINER_RUNTIME = "container_runtime"
    CONFIGURATION = "configuration"


class IssueType(enum.Enum):
    """The nineteen production issue types of Table 1."""

    CRC_ERROR = 1
    SWITCH_PORT_DOWN = 2
    SWITCH_PORT_FLAPPING = 3
    SWITCH_OFFLINE = 4
    RNIC_HARDWARE_FAILURE = 5
    RNIC_FIRMWARE_NOT_RESPONDING = 6
    RNIC_PORT_DOWN = 7
    RNIC_PORT_FLAPPING = 8
    OFFLOADING_FAILURE = 9
    BOND_ERROR = 10
    RNIC_GID_CHANGE = 11
    PCIE_NIC_ERROR = 12
    GPU_DIRECT_RDMA_ERROR = 13
    NOT_USING_RDMA = 14
    REPETITIVE_FLOW_OFFLOADING = 15
    SUBOPTIMAL_FLOW_OFFLOADING = 16
    CONTAINER_CRASH = 17
    HUGEPAGE_MISCONFIGURATION = 18
    CONGESTION_CONTROL_ISSUE = 19


@dataclass(frozen=True)
class IssueSpec:
    """Catalogue metadata for one issue type."""

    issue: IssueType
    component: ComponentClass
    symptom: Symptom
    reason: str

    @property
    def number(self) -> int:
        """The row number in Table 1."""
        return self.issue.value


ISSUE_CATALOG: Dict[IssueType, IssueSpec] = {
    spec.issue: spec
    for spec in [
        IssueSpec(
            IssueType.CRC_ERROR,
            ComponentClass.INTER_HOST_NETWORK,
            Symptom.PACKET_LOSS,
            "Physical fabric causes packet corruption.",
        ),
        IssueSpec(
            IssueType.SWITCH_PORT_DOWN,
            ComponentClass.INTER_HOST_NETWORK,
            Symptom.UNCONNECTIVITY,
            "The switch port is unreachable.",
        ),
        IssueSpec(
            IssueType.SWITCH_PORT_FLAPPING,
            ComponentClass.INTER_HOST_NETWORK,
            Symptom.PACKET_LOSS,
            "The switch port is flapping.",
        ),
        IssueSpec(
            IssueType.SWITCH_OFFLINE,
            ComponentClass.INTER_HOST_NETWORK,
            Symptom.UNCONNECTIVITY,
            "The switch crashes or is manually set to offline for upgrade.",
        ),
        IssueSpec(
            IssueType.RNIC_HARDWARE_FAILURE,
            ComponentClass.RNIC,
            Symptom.UNCONNECTIVITY,
            "Hardware components of the RNIC are not working normally.",
        ),
        IssueSpec(
            IssueType.RNIC_FIRMWARE_NOT_RESPONDING,
            ComponentClass.RNIC,
            Symptom.HIGH_LATENCY,
            "RNIC firmware bugs result in high latency of specific flows.",
        ),
        IssueSpec(
            IssueType.RNIC_PORT_DOWN,
            ComponentClass.RNIC,
            Symptom.UNCONNECTIVITY,
            "The RNIC port is consistently down.",
        ),
        IssueSpec(
            IssueType.RNIC_PORT_FLAPPING,
            ComponentClass.RNIC,
            Symptom.PACKET_LOSS,
            "The RNIC port is periodically down.",
        ),
        IssueSpec(
            IssueType.OFFLOADING_FAILURE,
            ComponentClass.RNIC,
            Symptom.HIGH_LATENCY,
            "Packet en-/de-capsulation cannot be offloaded to the RNIC.",
        ),
        IssueSpec(
            IssueType.BOND_ERROR,
            ComponentClass.RNIC,
            Symptom.UNCONNECTIVITY,
            "Unable to bond the ports of the RNIC.",
        ),
        IssueSpec(
            IssueType.RNIC_GID_CHANGE,
            ComponentClass.KERNEL,
            Symptom.UNCONNECTIVITY,
            "The network service of the OS is restarted unexpectedly.",
        ),
        IssueSpec(
            IssueType.PCIE_NIC_ERROR,
            ComponentClass.HOST_BOARD,
            Symptom.HIGH_LATENCY,
            "The RNICs in the same host cannot communicate with each other.",
        ),
        IssueSpec(
            IssueType.GPU_DIRECT_RDMA_ERROR,
            ComponentClass.HOST_BOARD,
            Symptom.HIGH_LATENCY,
            "The GPU cannot directly communicate with the RNIC in the "
            "container.",
        ),
        IssueSpec(
            IssueType.NOT_USING_RDMA,
            ComponentClass.VIRTUAL_SWITCH,
            Symptom.HIGH_LATENCY,
            "Flows that should be transmitted over RDMA are actually using "
            "TCP/UDP.",
        ),
        IssueSpec(
            IssueType.REPETITIVE_FLOW_OFFLOADING,
            ComponentClass.VIRTUAL_SWITCH,
            Symptom.HIGH_LATENCY,
            "Offloaded flows are frequently invalidated in the RNIC.",
        ),
        IssueSpec(
            IssueType.SUBOPTIMAL_FLOW_OFFLOADING,
            ComponentClass.VIRTUAL_SWITCH,
            Symptom.HIGH_LATENCY,
            "Flows are offloaded with incorrect orders with high latency of "
            "some flows.",
        ),
        IssueSpec(
            IssueType.CONTAINER_CRASH,
            ComponentClass.CONTAINER_RUNTIME,
            Symptom.UNCONNECTIVITY,
            "Containers crash shortly after creation due to container "
            "runtime defects.",
        ),
        IssueSpec(
            IssueType.HUGEPAGE_MISCONFIGURATION,
            ComponentClass.CONFIGURATION,
            Symptom.HIGH_LATENCY,
            "The host's hugepage configuration is not consistent with the "
            "RNIC.",
        ),
        IssueSpec(
            IssueType.CONGESTION_CONTROL_ISSUE,
            ComponentClass.CONFIGURATION,
            Symptom.HIGH_LATENCY,
            "The congestion control of a specific queue in the switch is "
            "not enabled.",
        ),
    ]
}


def issues_with_symptom(symptom: Symptom) -> List[IssueSpec]:
    """All catalogue entries exhibiting ``symptom``."""
    return [s for s in ISSUE_CATALOG.values() if s.symptom == symptom]


def issues_in_component(component: ComponentClass) -> List[IssueSpec]:
    """All catalogue entries attributed to ``component``."""
    return [s for s in ISSUE_CATALOG.values() if s.component == component]
