"""The catalogue of network issues from Table 1 of the paper.

Nineteen issue types across six component classes (physical switches /
inter-host network, RNICs, host boards, virtual switches, container
runtime, configurations — plus kernel-level causes), each with the symptom
the paper reports (packet loss, unconnectivity, or high latency).  The
fault injector turns each catalogue entry into a concrete perturbation of
the simulated data plane, and the evaluation harness scores localization
against the catalogue's component class.

Beyond Table 1, :class:`GrayIssueType` catalogues the *load-dependent*
gray-failure families from the SHIFT/SprayCheck literature — PFC storms,
congestion collapse, and partial link degradation — which perturb the
fabric probabilistically rather than binarily.  They live in a separate
enum so the Table-1 set stays exactly nineteen entries (several gates
and figures depend on that count); :func:`spec_of` and
:func:`all_issue_types` give callers one view over both catalogues.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Union

__all__ = [
    "ComponentClass",
    "GrayIssueType",
    "IssueSpec",
    "IssueType",
    "Symptom",
    "GRAY_CATALOG",
    "ISSUE_CATALOG",
    "all_issue_types",
    "lookup_issue",
    "spec_of",
]


class Symptom(enum.Enum):
    """Observable symptom of an issue (Table 1, 'Symptoms' column)."""

    PACKET_LOSS = "packet_loss"
    UNCONNECTIVITY = "unconnectivity"
    HIGH_LATENCY = "high_latency"


class ComponentClass(enum.Enum):
    """Component classes SkeletonHunter localizes issues to (Table 1)."""

    INTER_HOST_NETWORK = "inter_host_network"
    RNIC = "rnic"
    KERNEL = "kernel"
    HOST_BOARD = "host_board"
    VIRTUAL_SWITCH = "virtual_switch"
    CONTAINER_RUNTIME = "container_runtime"
    CONFIGURATION = "configuration"


class IssueType(enum.Enum):
    """The nineteen production issue types of Table 1."""

    CRC_ERROR = 1
    SWITCH_PORT_DOWN = 2
    SWITCH_PORT_FLAPPING = 3
    SWITCH_OFFLINE = 4
    RNIC_HARDWARE_FAILURE = 5
    RNIC_FIRMWARE_NOT_RESPONDING = 6
    RNIC_PORT_DOWN = 7
    RNIC_PORT_FLAPPING = 8
    OFFLOADING_FAILURE = 9
    BOND_ERROR = 10
    RNIC_GID_CHANGE = 11
    PCIE_NIC_ERROR = 12
    GPU_DIRECT_RDMA_ERROR = 13
    NOT_USING_RDMA = 14
    REPETITIVE_FLOW_OFFLOADING = 15
    SUBOPTIMAL_FLOW_OFFLOADING = 16
    CONTAINER_CRASH = 17
    HUGEPAGE_MISCONFIGURATION = 18
    CONGESTION_CONTROL_ISSUE = 19


class GrayIssueType(enum.Enum):
    """Load-dependent gray-failure families (SHIFT §4, SprayCheck §2).

    Values start at 101 so they can never collide with — or be mistaken
    for — a Table-1 row number.
    """

    PFC_STORM = 101
    CONGESTION_COLLAPSE = 102
    PARTIAL_LINK_DEGRADATION = 103


#: Either catalogue's enum — most call sites accept both.
AnyIssue = Union[IssueType, GrayIssueType]


@dataclass(frozen=True)
class IssueSpec:
    """Catalogue metadata for one issue type.

    ``target_kind`` names the canonical injection-target species for
    the issue (``"link"``, ``"switch"``, ``"rnic"``, ``"host"``, or
    ``"container"``) so target selection — in the CLI campaign and the
    degradation gates — is catalogue-driven: registering a new issue
    never requires a per-family code edit at the injection sites.
    """

    issue: AnyIssue
    component: ComponentClass
    symptom: Symptom
    reason: str
    target_kind: str = "rnic"

    @property
    def number(self) -> int:
        """The row number in Table 1 (or the gray-catalogue id)."""
        return self.issue.value


ISSUE_CATALOG: Dict[IssueType, IssueSpec] = {
    spec.issue: spec
    for spec in [
        IssueSpec(
            IssueType.CRC_ERROR,
            ComponentClass.INTER_HOST_NETWORK,
            Symptom.PACKET_LOSS,
            "Physical fabric causes packet corruption.",
            target_kind="link",
        ),
        IssueSpec(
            IssueType.SWITCH_PORT_DOWN,
            ComponentClass.INTER_HOST_NETWORK,
            Symptom.UNCONNECTIVITY,
            "The switch port is unreachable.",
            target_kind="link",
        ),
        IssueSpec(
            IssueType.SWITCH_PORT_FLAPPING,
            ComponentClass.INTER_HOST_NETWORK,
            Symptom.PACKET_LOSS,
            "The switch port is flapping.",
            target_kind="link",
        ),
        IssueSpec(
            IssueType.SWITCH_OFFLINE,
            ComponentClass.INTER_HOST_NETWORK,
            Symptom.UNCONNECTIVITY,
            "The switch crashes or is manually set to offline for upgrade.",
            target_kind="switch",
        ),
        IssueSpec(
            IssueType.RNIC_HARDWARE_FAILURE,
            ComponentClass.RNIC,
            Symptom.UNCONNECTIVITY,
            "Hardware components of the RNIC are not working normally.",
        ),
        IssueSpec(
            IssueType.RNIC_FIRMWARE_NOT_RESPONDING,
            ComponentClass.RNIC,
            Symptom.HIGH_LATENCY,
            "RNIC firmware bugs result in high latency of specific flows.",
        ),
        IssueSpec(
            IssueType.RNIC_PORT_DOWN,
            ComponentClass.RNIC,
            Symptom.UNCONNECTIVITY,
            "The RNIC port is consistently down.",
        ),
        IssueSpec(
            IssueType.RNIC_PORT_FLAPPING,
            ComponentClass.RNIC,
            Symptom.PACKET_LOSS,
            "The RNIC port is periodically down.",
        ),
        IssueSpec(
            IssueType.OFFLOADING_FAILURE,
            ComponentClass.RNIC,
            Symptom.HIGH_LATENCY,
            "Packet en-/de-capsulation cannot be offloaded to the RNIC.",
        ),
        IssueSpec(
            IssueType.BOND_ERROR,
            ComponentClass.RNIC,
            Symptom.UNCONNECTIVITY,
            "Unable to bond the ports of the RNIC.",
        ),
        IssueSpec(
            IssueType.RNIC_GID_CHANGE,
            ComponentClass.KERNEL,
            Symptom.UNCONNECTIVITY,
            "The network service of the OS is restarted unexpectedly.",
        ),
        IssueSpec(
            IssueType.PCIE_NIC_ERROR,
            ComponentClass.HOST_BOARD,
            Symptom.HIGH_LATENCY,
            "The RNICs in the same host cannot communicate with each other.",
            target_kind="host",
        ),
        IssueSpec(
            IssueType.GPU_DIRECT_RDMA_ERROR,
            ComponentClass.HOST_BOARD,
            Symptom.HIGH_LATENCY,
            "The GPU cannot directly communicate with the RNIC in the "
            "container.",
            target_kind="host",
        ),
        IssueSpec(
            IssueType.NOT_USING_RDMA,
            ComponentClass.VIRTUAL_SWITCH,
            Symptom.HIGH_LATENCY,
            "Flows that should be transmitted over RDMA are actually using "
            "TCP/UDP.",
            target_kind="host",
        ),
        IssueSpec(
            IssueType.REPETITIVE_FLOW_OFFLOADING,
            ComponentClass.VIRTUAL_SWITCH,
            Symptom.HIGH_LATENCY,
            "Offloaded flows are frequently invalidated in the RNIC.",
        ),
        IssueSpec(
            IssueType.SUBOPTIMAL_FLOW_OFFLOADING,
            ComponentClass.VIRTUAL_SWITCH,
            Symptom.HIGH_LATENCY,
            "Flows are offloaded with incorrect orders with high latency of "
            "some flows.",
            target_kind="host",
        ),
        IssueSpec(
            IssueType.CONTAINER_CRASH,
            ComponentClass.CONTAINER_RUNTIME,
            Symptom.UNCONNECTIVITY,
            "Containers crash shortly after creation due to container "
            "runtime defects.",
            target_kind="container",
        ),
        IssueSpec(
            IssueType.HUGEPAGE_MISCONFIGURATION,
            ComponentClass.CONFIGURATION,
            Symptom.HIGH_LATENCY,
            "The host's hugepage configuration is not consistent with the "
            "RNIC.",
            target_kind="host",
        ),
        IssueSpec(
            IssueType.CONGESTION_CONTROL_ISSUE,
            ComponentClass.CONFIGURATION,
            Symptom.HIGH_LATENCY,
            "The congestion control of a specific queue in the switch is "
            "not enabled.",
            target_kind="switch",
        ),
    ]
}


GRAY_CATALOG: Dict[GrayIssueType, IssueSpec] = {
    spec.issue: spec
    for spec in [
        IssueSpec(
            GrayIssueType.PFC_STORM,
            ComponentClass.INTER_HOST_NETWORK,
            Symptom.HIGH_LATENCY,
            "A congested port's PFC pause frames propagate upstream, "
            "stalling victim links that share the paused switch.",
            target_kind="link",
        ),
        IssueSpec(
            GrayIssueType.CONGESTION_COLLAPSE,
            ComponentClass.INTER_HOST_NETWORK,
            Symptom.PACKET_LOSS,
            "Sustained over-utilization collapses a link's effective "
            "capacity; drop rate and RTT scale with offered load.",
            target_kind="link",
        ),
        IssueSpec(
            GrayIssueType.PARTIAL_LINK_DEGRADATION,
            ComponentClass.INTER_HOST_NETWORK,
            Symptom.PACKET_LOSS,
            "A marginal link drops and delays a fraction of packets "
            "while carrying the rest normally.",
            target_kind="link",
        ),
    ]
}


def spec_of(issue: AnyIssue) -> IssueSpec:
    """Catalogue metadata for a Table-1 *or* gray issue type."""
    spec = ISSUE_CATALOG.get(issue) or GRAY_CATALOG.get(issue)
    if spec is None:
        raise KeyError(f"unknown issue type: {issue!r}")
    return spec


def lookup_issue(name: str) -> AnyIssue:
    """Resolve an issue *name* against both catalogues (for codecs)."""
    try:
        return IssueType[name]
    except KeyError:
        try:
            return GrayIssueType[name]
        except KeyError:
            raise KeyError(f"unknown issue name: {name!r}") from None


def all_issue_types() -> tuple:
    """Every scoreable issue: the Table-1 set then the gray families."""
    return tuple(IssueType) + tuple(GrayIssueType)


def issues_with_symptom(symptom: Symptom) -> List[IssueSpec]:
    """All Table-1 catalogue entries exhibiting ``symptom``."""
    return [s for s in ISSUE_CATALOG.values() if s.symptom == symptom]


def issues_in_component(component: ComponentClass) -> List[IssueSpec]:
    """All Table-1 catalogue entries attributed to ``component``."""
    return [s for s in ISSUE_CATALOG.values() if s.component == component]
