"""Network substrate: packets, latency, faults, and the data-plane fabric."""

from repro.network.fabric import DataPlaneFabric
from repro.network.faults import (
    Effects,
    Fault,
    FaultInjector,
    container_component,
    host_component,
)
from repro.network.issues import (
    ISSUE_CATALOG,
    ComponentClass,
    IssueSpec,
    IssueType,
    Symptom,
    issues_in_component,
    issues_with_symptom,
)
from repro.network.latency import LatencyModel, TransientCongestion
from repro.network.packet import ProbeResult, flow_hash

__all__ = [
    "ComponentClass",
    "DataPlaneFabric",
    "Effects",
    "Fault",
    "FaultInjector",
    "ISSUE_CATALOG",
    "IssueSpec",
    "IssueType",
    "LatencyModel",
    "ProbeResult",
    "Symptom",
    "TransientCongestion",
    "container_component",
    "flow_hash",
    "host_component",
    "issues_in_component",
    "issues_with_symptom",
]
