"""The round-trip latency model.

Healthy RoCE probes complete in well under 20 µs (§1 of the paper; the
Figure-18 case study shows a stable ~16 µs before the failure).  We model
the RTT as a per-hop budget with multiplicative log-normal noise — the
paper's long-term detector explicitly relies on healthy pair latency
being log-normally distributed (§5.2), so the substrate generates exactly
that family.

Transient congestion adds occasional latency spikes that are *not*
failures; the short-term detector must ride through them (they are the
source of detection false positives the precision metric charges for).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["LatencyModel", "TransientCongestion"]


@dataclass
class LatencyModel:
    """Per-hop RTT budget plus log-normal measurement noise.

    Parameters are one-way per-traversal costs in microseconds; the RTT
    doubles them.  ``sigma`` is the log-space standard deviation of the
    multiplicative noise (a few percent in a healthy fabric).
    """

    host_stack_us: float = 1.2      # veth + OVS + PCIe per host side
    per_link_us: float = 0.75       # serialization + propagation per link
    per_switch_us: float = 1.0      # switching latency per switch
    software_path_penalty_us: float = 104.0  # slow-path (Figure 18: ~120 µs)
    sigma: float = 0.04

    def base_rtt_us(self, num_links: int, num_switches: int) -> float:
        """Median healthy RTT for a path shape (links, switches)."""
        one_way = (
            2 * self.host_stack_us
            + num_links * self.per_link_us
            + num_switches * self.per_switch_us
        )
        return 2.0 * one_way

    def sample_rtt_us(
        self,
        rng: np.random.Generator,
        num_links: int,
        num_switches: int,
        extra_us: float = 0.0,
        software_path: bool = False,
    ) -> float:
        """One RTT sample: log-normal noise around the base, plus extras."""
        base = self.base_rtt_us(num_links, num_switches)
        noisy = base * float(rng.lognormal(mean=0.0, sigma=self.sigma))
        if software_path:
            noisy += self.software_path_penalty_us * float(
                rng.lognormal(mean=0.0, sigma=self.sigma)
            )
        return noisy + extra_us

    def lognormal_params(
        self, num_links: int, num_switches: int
    ) -> "tuple[float, float]":
        """(mu, sigma) of ln(RTT) for a healthy path of this shape."""
        return math.log(self.base_rtt_us(num_links, num_switches)), self.sigma


@dataclass
class TransientCongestion:
    """Benign short latency spikes from resource contention.

    Each probe independently hits a spike with probability ``rate``; the
    spike magnitude is exponential with mean ``mean_spike_us``.  These
    mimic the transient congestion the paper's analyzer must filter out
    (§5.2: "a sudden high latency can be caused by transient congestion").
    """

    rate: float = 0.002
    mean_spike_us: float = 12.0

    def sample_us(self, rng: np.random.Generator) -> float:
        """Extra latency (0 for the vast majority of probes)."""
        if self.rate <= 0 or float(rng.random()) >= self.rate:
            return 0.0
        return float(rng.exponential(self.mean_spike_us))
