"""The round-trip latency model.

Healthy RoCE probes complete in well under 20 µs (§1 of the paper; the
Figure-18 case study shows a stable ~16 µs before the failure).  We model
the RTT as a per-hop budget with multiplicative log-normal noise — the
paper's long-term detector explicitly relies on healthy pair latency
being log-normally distributed (§5.2), so the substrate generates exactly
that family.

Transient congestion adds occasional latency spikes that are *not*
failures; the short-term detector must ride through them (they are the
source of detection false positives the precision metric charges for).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import ndtri

__all__ = ["LatencyModel", "TransientCongestion"]

#: Uniform draws are clamped away from 0/1 before inverse-CDF transforms
#: so a (probability ~2^-53) endpoint draw cannot produce an infinity.
_U_EPS = 1e-300
_U_CAP = 1.0 - 1e-16


def _lognormal_from_uniform(
    u: np.ndarray, mu: float, sigma: float
) -> np.ndarray:
    """Log-normal samples via the inverse normal CDF.

    Sampling through plain uniforms (instead of
    ``Generator.lognormal``'s ziggurat normals) gives every probe a
    *fixed* RNG budget: batch code can draw one uniform block for a
    whole round and transform it vectorized, while consuming exactly
    the same generator stream as one-at-a-time sampling.
    """
    clipped = np.clip(u, _U_EPS, _U_CAP)
    return np.exp(mu + sigma * ndtri(clipped))


@dataclass
class LatencyModel:
    """Per-hop RTT budget plus log-normal measurement noise.

    Parameters are one-way per-traversal costs in microseconds; the RTT
    doubles them.  ``sigma`` is the log-space standard deviation of the
    multiplicative noise (a few percent in a healthy fabric).
    """

    host_stack_us: float = 1.2      # veth + OVS + PCIe per host side
    per_link_us: float = 0.75       # serialization + propagation per link
    per_switch_us: float = 1.0      # switching latency per switch
    software_path_penalty_us: float = 104.0  # slow-path (Figure 18: ~120 µs)
    sigma: float = 0.04

    def base_rtt_us(self, num_links: int, num_switches: int) -> float:
        """Median healthy RTT for a path shape (links, switches)."""
        one_way = (
            2 * self.host_stack_us
            + num_links * self.per_link_us
            + num_switches * self.per_switch_us
        )
        return 2.0 * one_way

    def sample_rtt_us(
        self,
        rng: np.random.Generator,
        num_links: int,
        num_switches: int,
        extra_us: float = 0.0,
        software_path: bool = False,
    ) -> float:
        """One RTT sample: log-normal noise around the base, plus extras.

        Always consumes exactly two uniforms (base noise + software-path
        penalty noise) whether or not the slow path is taken, so the
        draw count per probe is fixed — the property that lets
        :meth:`rtt_from_uniforms` vectorize whole probing rounds on the
        identical generator stream.
        """
        u = rng.random(2)
        return float(self.rtt_from_uniforms(
            u[0:1], u[1:2],
            num_links=num_links, num_switches=num_switches,
            extra_us=extra_us, software_path=software_path,
        )[0])

    def rtt_from_uniforms(
        self,
        u_base: np.ndarray,
        u_soft: np.ndarray,
        num_links,
        num_switches,
        extra_us=0.0,
        software_path=False,
    ) -> np.ndarray:
        """Vectorized RTT sampling from pre-drawn uniforms.

        ``num_links``/``num_switches``/``extra_us``/``software_path``
        may be scalars or arrays broadcastable against the uniforms.
        """
        num_links = np.asarray(num_links)
        num_switches = np.asarray(num_switches)
        one_way = (
            2 * self.host_stack_us
            + num_links * self.per_link_us
            + num_switches * self.per_switch_us
        )
        base = 2.0 * one_way
        noisy = base * _lognormal_from_uniform(u_base, 0.0, self.sigma)
        penalty = self.software_path_penalty_us * _lognormal_from_uniform(
            u_soft, 0.0, self.sigma
        )
        noisy = noisy + np.where(np.asarray(software_path), penalty, 0.0)
        return noisy + extra_us

    def lognormal_params(
        self, num_links: int, num_switches: int
    ) -> "tuple[float, float]":
        """(mu, sigma) of ln(RTT) for a healthy path of this shape."""
        return math.log(self.base_rtt_us(num_links, num_switches)), self.sigma


@dataclass
class TransientCongestion:
    """Benign short latency spikes from resource contention.

    Each probe independently hits a spike with probability ``rate``; the
    spike magnitude is exponential with mean ``mean_spike_us``.  These
    mimic the transient congestion the paper's analyzer must filter out
    (§5.2: "a sudden high latency can be caused by transient congestion").
    """

    rate: float = 0.002
    mean_spike_us: float = 12.0

    def sample_us(self, rng: np.random.Generator) -> float:
        """Extra latency (0 for the vast majority of probes).

        Like :meth:`LatencyModel.sample_rtt_us`, the draw budget is
        fixed: one gate uniform plus one magnitude uniform per call,
        spike or not, so batched rounds can pre-draw the whole block.
        """
        u = rng.random(2)
        return float(self.spikes_from_uniforms(u[0:1], u[1:2])[0])

    def spikes_from_uniforms(
        self, u_gate: np.ndarray, u_mag: np.ndarray
    ) -> np.ndarray:
        """Vectorized congestion spikes from pre-drawn uniforms.

        A probe spikes when its gate uniform lands below ``rate``; the
        magnitude comes from the inverse exponential CDF of the second
        uniform.
        """
        if self.rate <= 0:
            return np.zeros_like(np.asarray(u_gate, dtype=np.float64))
        clipped = np.clip(u_mag, 0.0, _U_CAP)
        magnitude = -self.mean_spike_us * np.log1p(-clipped)
        return np.where(u_gate < self.rate, magnitude, 0.0)
