"""Fault injection: turning Table-1 issues into data-plane perturbations.

Each injected :class:`Fault` targets one concrete component (a physical
link, a switch, an RNIC, a host, a container, or an overlay component) and
perturbs the data plane the way the corresponding production issue does:
dropping packets, adding latency, forcing the software path, corrupting
flow tables, or crashing the container.  Every fault carries its ground
truth — the set of component names an accurate localizer may blame — so
the evaluation harness can score detection and localization exactly like
the paper's manual verification did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cluster.container import Container
from repro.cluster.identifiers import (
    ContainerId,
    HostId,
    LinkId,
    RnicId,
    SwitchId,
)
from repro.cluster.orchestrator import Cluster
from repro.cluster.overlay import ovs_name, veth_name, vtep_name
from repro.cluster.topology import UnderlayPath
from repro.network.draws import keyed_uniform
from repro.network.issues import (
    ISSUE_CATALOG,
    ComponentClass,
    GrayIssueType,
    IssueType,
    Symptom,
    spec_of,
)
from repro.network.load import (
    LinkLoadModel,
    collapse_latency_us,
    collapse_loss_rate,
)

__all__ = [
    "Effects",
    "Fault",
    "FaultInjector",
    "container_component",
    "gray_injection_overrides",
    "host_component",
    "storm_center",
]


def host_component(host: HostId) -> str:
    """Ground-truth component name for host-level (board/config) faults."""
    return f"host:{host}"


def container_component(container_id: ContainerId) -> str:
    """Ground-truth component name for container-runtime faults."""
    return f"container:{container_id}"


@dataclass
class Effects:
    """Aggregate data-plane effect of active faults on one probe."""

    down: bool = False
    loss_rate: float = 0.0
    extra_latency_us: float = 0.0
    force_software_path: bool = False

    def merge(self, other: "Effects") -> "Effects":
        """Combine two effect sets (losses compose independently)."""
        return Effects(
            down=self.down or other.down,
            loss_rate=1.0 - (1.0 - self.loss_rate) * (1.0 - other.loss_rate),
            extra_latency_us=self.extra_latency_us + other.extra_latency_us,
            force_software_path=(
                self.force_software_path or other.force_software_path
            ),
        )


@dataclass
class Fault:
    """One injected failure with its data-plane parameters."""

    issue: IssueType
    target: object
    start: float
    end: Optional[float] = None
    loss_rate: float = 0.0
    extra_latency_us: float = 0.0
    down: bool = False
    flap_period_s: float = 0.0
    flap_duty: float = 0.5
    flow_selector: int = 1  # affect flows with hash % selector == 0
    #: Links that suffer *secondary* effects (PFC pause propagation):
    #: a path crossing one of these — but not the target — experiences
    #: :attr:`victim_loss_rate`/:attr:`victim_extra_latency_us` instead
    #: of the primary parameters.
    victim_links: FrozenSet[LinkId] = frozenset()
    victim_loss_rate: float = 0.0
    victim_extra_latency_us: float = 0.0
    culprits: Set[str] = field(default_factory=set)
    #: Assigned by :meth:`FaultInjector.inject` when left ``None``;
    #: run-local (never a process-global counter) so two same-seed
    #: runs in one process register identical ids.  Replay re-pins
    #: recorded ids via ``fault_overrides``.
    fault_id: Optional[int] = None
    _undo: List[Callable[[], None]] = field(default_factory=list, repr=False)

    @property
    def symptom(self) -> Symptom:
        """The catalogue symptom of this fault's issue type."""
        return spec_of(self.issue).symptom

    @property
    def component_class(self) -> ComponentClass:
        """The catalogue component class of this fault's issue type."""
        return spec_of(self.issue).component

    def active_at(self, t: float) -> bool:
        """Whether the fault exists at time ``t``."""
        return t >= self.start and (self.end is None or t < self.end)

    def misbehaving_at(self, t: float) -> bool:
        """Whether the fault is in its bad phase at ``t`` (flapping-aware)."""
        if not self.active_at(t):
            return False
        if self.flap_period_s <= 0:
            return True
        phase = (t - self.start) % self.flap_period_s
        return phase < self.flap_duty * self.flap_period_s

    def affects_flow(self, fhash: int) -> bool:
        """Whether a flow with hash ``fhash`` is hit (selective faults)."""
        if self.flow_selector <= 1:
            return True
        return fhash % self.flow_selector == 0

    def effects(self, t: float, fhash: int = 0) -> Effects:
        """The effect this fault contributes at ``t`` for flow ``fhash``."""
        if not self.misbehaving_at(t) or not self.affects_flow(fhash):
            return Effects()
        return Effects(
            down=self.down,
            loss_rate=self.loss_rate,
            extra_latency_us=self.extra_latency_us,
        )

    def victim_view(self) -> "_VictimView":
        """This fault as seen from one of its victim links.

        The view satisfies the same ``effects(t, fhash)`` protocol the
        fabric's cached fault tuples use, so a resolution whose path
        crosses a victim link (but not the target) caches the view and
        evaluates secondary effects per probe at zero extra cost.
        """
        view = self._victim_view
        if view is None:
            view = _VictimView(self)
            self._victim_view = view
        return view

    _victim_view: Optional["_VictimView"] = field(
        default=None, repr=False, compare=False
    )


class _VictimView:
    """A fault's secondary (pause-propagation) face on a victim link."""

    __slots__ = ("fault",)

    def __init__(self, fault: Fault) -> None:
        self.fault = fault

    def effects(self, t: float, fhash: int = 0) -> Effects:
        fault = self.fault
        if not fault.misbehaving_at(t) or not fault.affects_flow(fhash):
            return Effects()
        return Effects(
            loss_rate=fault.victim_loss_rate,
            extra_latency_us=fault.victim_extra_latency_us,
        )


class FaultInjector:
    """Owns active faults and answers the fabric's effect queries."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self._faults: Dict[int, Fault] = {}
        self._next_fault_id = 0
        self._epoch = 0
        # Observers fire as ``observer(action, fault, at)`` with action
        # "inject" or "clear" — the telemetry bus records ground truth
        # through this hook so replays can re-apply the exact schedule.
        self._observers: List[Callable[[str, Fault, float], None]] = []

    def add_observer(
        self, observer: Callable[[str, Fault, float], None]
    ) -> None:
        """Register a ground-truth observer for injects and clears."""
        self._observers.append(observer)

    def _notify(self, action: str, fault: Fault, at: float) -> None:
        for observer in list(self._observers):
            observer(action, fault, at)

    @property
    def epoch(self) -> int:
        """Monotone counter of fault registrations and clears.

        A probe resolution that cached its relevant-fault list at epoch
        *e* is valid exactly while ``epoch == e``; every :meth:`inject`
        and :meth:`clear` (which also cover the overlay/table side
        effects they apply or revert) bumps it.
        """
        return self._epoch

    # ------------------------------------------------------------------
    # Injection API
    # ------------------------------------------------------------------

    def inject(self, fault: Fault) -> Fault:
        """Register a fault and apply any overlay/table side effects.

        An unpinned fault gets the next run-local id, so same-seed
        runs in one process record byte-identical ground truth.
        """
        if fault.fault_id is None:
            while self._next_fault_id in self._faults:
                self._next_fault_id += 1
            fault.fault_id = self._next_fault_id
            self._next_fault_id += 1
        self._faults[fault.fault_id] = fault
        self._apply_side_effects(fault)
        self._epoch += 1
        self._notify("inject", fault, fault.start)
        return fault

    def clear(self, fault: Fault, at: float) -> None:
        """End a fault at time ``at`` and revert its side effects."""
        fault.end = at
        for undo in reversed(fault._undo):
            undo()
        fault._undo.clear()
        self._epoch += 1
        self._notify("clear", fault, at)

    def active_faults(self, t: float) -> List[Fault]:
        """All faults active at ``t``."""
        return [f for f in self._faults.values() if f.active_at(t)]

    def all_faults(self) -> List[Fault]:
        """Every fault ever injected, in injection order."""
        return [self._faults[k] for k in sorted(self._faults)]

    def ground_truth(self, t: float) -> Set[str]:
        """Union of culprit component names of faults active at ``t``."""
        names: Set[str] = set()
        for fault in self.active_faults(t):
            names |= fault.culprits
        return names

    # ------------------------------------------------------------------
    # Factories: one per Table-1 issue type
    # ------------------------------------------------------------------

    def inject_issue(
        self,
        issue: IssueType,
        target: object,
        start: float,
        **overrides,
    ) -> Fault:
        """Inject ``issue`` against ``target`` with canonical parameters."""
        factory = _FACTORIES.get(issue)
        if factory is None:
            raise ValueError(f"no factory registered for {issue}")
        fault = factory(self._cluster, target, start)
        if isinstance(target, RnicId):
            # Path evidence cannot distinguish a dead RNIC from its
            # access link; blaming either is a correct localization.
            tor = self._cluster.topology.tor_of(target)
            fault.culprits.add(str(LinkId.between(target, tor)))
        for key, value in overrides.items():
            setattr(fault, key, value)
        return self.inject(fault)

    # ------------------------------------------------------------------
    # Fabric-facing effect queries
    # ------------------------------------------------------------------

    def path_effects(
        self, path: UnderlayPath, t: float, fhash: int = 0
    ) -> Effects:
        """Combined underlay effects along ``path`` at ``t``."""
        combined = Effects()
        link_set = set(path.links)
        switch_set = set(path.switches())
        for fault in self._faults.values():
            if not fault.misbehaving_at(t):
                continue
            target = fault.target
            hit = False
            if isinstance(target, LinkId) and target in link_set:
                hit = True
            elif isinstance(target, SwitchId) and str(target) in switch_set:
                hit = True
            if hit:
                combined = combined.merge(fault.effects(t, fhash))
            elif fault.victim_links and not fault.victim_links.isdisjoint(
                link_set
            ):
                combined = combined.merge(
                    fault.victim_view().effects(t, fhash)
                )
        return combined

    def rnic_effects(self, rnic: RnicId, t: float, fhash: int = 0) -> Effects:
        """Combined effects of faults targeting a physical RNIC."""
        combined = Effects()
        for fault in self._faults.values():
            if isinstance(fault.target, RnicId) and fault.target == rnic:
                combined = combined.merge(fault.effects(t, fhash))
        return combined

    def host_effects(self, host: HostId, t: float, fhash: int = 0) -> Effects:
        """Combined effects of host-level (board/config) faults."""
        combined = Effects()
        for fault in self._faults.values():
            if isinstance(fault.target, HostId) and fault.target == host:
                combined = combined.merge(fault.effects(t, fhash))
        return combined

    def relevant_faults(
        self, path: UnderlayPath, src_rnic: RnicId, dst_rnic: RnicId
    ) -> Tuple[Fault, ...]:
        """Every fault whose target could perturb this probe resolution.

        The *time-independent* half of the effect queries: which faults
        sit on the underlay path, on either endpoint RNIC, or on either
        endpoint host.  The fabric caches this tuple per resolution (it
        only changes when :attr:`epoch` does) and evaluates the cheap
        time/flow-dependent :meth:`Fault.effects` per probe.  Ordered
        like the one-by-one queries: path, src RNIC, dst RNIC, src host,
        dst host.
        """
        link_set = set(path.links)
        switch_set = set(path.switches())
        on_path: List[object] = []
        on_src_rnic: List[Fault] = []
        on_dst_rnic: List[Fault] = []
        on_src_host: List[Fault] = []
        on_dst_host: List[Fault] = []
        for fault in self._faults.values():
            target = fault.target
            if isinstance(target, LinkId):
                if target in link_set:
                    on_path.append(fault)
                elif fault.victim_links and not (
                    fault.victim_links.isdisjoint(link_set)
                ):
                    # Victim-only hit: cache the secondary-effect view.
                    on_path.append(fault.victim_view())
            elif isinstance(target, SwitchId):
                if str(target) in switch_set:
                    on_path.append(fault)
            elif isinstance(target, RnicId):
                if target == src_rnic:
                    on_src_rnic.append(fault)
                if target == dst_rnic:
                    on_dst_rnic.append(fault)
            elif isinstance(target, HostId):
                if target == src_rnic.host:
                    on_src_host.append(fault)
                if target == dst_rnic.host:
                    on_dst_host.append(fault)
        return tuple(
            on_path + on_src_rnic + on_dst_rnic + on_src_host + on_dst_host
        )

    # ------------------------------------------------------------------
    # Side effects on overlay / tables
    # ------------------------------------------------------------------

    def _apply_side_effects(self, fault: Fault) -> None:
        overlay = self._cluster.overlay
        issue, target = fault.issue, fault.target

        if issue == IssueType.OFFLOADING_FAILURE and isinstance(
            target, RnicId
        ):
            health = overlay.health(vtep_name(target))
            health.force_software_path = True
            fault._undo.append(
                lambda: setattr(health, "force_software_path", False)
            )
            # Existing offloaded flows fall back to software: the hardware
            # cache empties and OVS shows the rules as not offloaded.
            hw = overlay.offload_table(target)
            table = overlay.ovs_table(target.host)
            demoted = []
            for rule in table.rules():
                if rule.offloaded and rule.offloaded_to == str(target):
                    demoted.append(rule)
                    rule.offloaded = False
            dropped = list(hw.rules())
            hw.clear()

            def _restore_offload() -> None:
                for rule in demoted:
                    rule.offloaded = True
                for rule in dropped:
                    hw.install(rule.key, rule.action)

            fault._undo.append(_restore_offload)

        elif issue == IssueType.RNIC_GID_CHANGE and isinstance(
            target, RnicId
        ):
            # The OS restarted its network service: every DELIVER rule for
            # endpoints behind this RNIC now points at a stale GID.  Model:
            # drop the deliver rules from the host OVS table.
            table = overlay.ovs_table(target.host)
            removed = []
            for rule in table.rules():
                action = rule.action
                if action.local_vf is not None and action.local_vf.rnic == target:
                    removed.append(rule)
                    table.remove(rule.key)
            offload = overlay.offload_table(target)
            hw_removed = []
            for rule in offload.rules():
                if (
                    rule.action.local_vf is not None
                    and rule.action.local_vf.rnic == target
                ):
                    hw_removed.append(rule)
                    offload.remove(rule.key)

            def _restore() -> None:
                for rule in removed:
                    fresh = table.install(rule.key, rule.action)
                    fresh.offloaded = rule.offloaded
                    fresh.offloaded_to = rule.offloaded_to
                for rule in hw_removed:
                    offload.install(rule.key, rule.action)

            fault._undo.append(_restore)

        elif issue == IssueType.NOT_USING_RDMA and isinstance(
            target, HostId
        ):
            # Flows leave via TCP through the kernel: mark rules
            # non-offloaded and purge the hardware caches on this host.
            table = overlay.ovs_table(target)
            reverted = []
            for rule in table.rules():
                if rule.offloaded:
                    rule.offloaded = False
                    reverted.append(rule)
            host = self._cluster.host(target)
            purged = []
            for rnic in host.rnics:
                hw = overlay.offload_table(rnic.id)
                for rule in hw.rules():
                    purged.append((hw, rule))
                    hw.remove(rule.key)
                health = overlay.health(vtep_name(rnic.id))
                health.force_software_path = True
                fault._undo.append(
                    lambda h=health: setattr(h, "force_software_path", False)
                )

            def _restore_rdma() -> None:
                for rule in reverted:
                    rule.offloaded = True
                for hw, rule in purged:
                    hw.install(rule.key, rule.action)

            fault._undo.append(_restore_rdma)

        elif issue == IssueType.REPETITIVE_FLOW_OFFLOADING and isinstance(
            target, RnicId
        ):
            # The RNIC keeps invalidating offloaded flows while OVS still
            # believes they are in hardware (the Figure-18 inconsistency).
            hw = overlay.offload_table(target)
            dropped = []
            for rule in hw.rules():
                dropped.append(rule)
                hw.invalidate(rule.key)

            def _reoffload() -> None:
                for rule in dropped:
                    hw.install(rule.key, rule.action)

            fault._undo.append(_reoffload)
            health = overlay.health(vtep_name(target))
            health.force_software_path = True
            fault._undo.append(
                lambda: setattr(health, "force_software_path", False)
            )

        elif issue == IssueType.CONTAINER_CRASH and isinstance(
            target, Container
        ):
            for endpoint in target.endpoints():
                h = overlay.health(veth_name(endpoint))
                h.down = True
                fault._undo.append(lambda hh=h: setattr(hh, "down", False))


# ----------------------------------------------------------------------
# Canonical fault parameters per issue type
# ----------------------------------------------------------------------


def _link_fault(issue: IssueType, **params) -> Callable:
    def factory(cluster: Cluster, target: LinkId, start: float) -> Fault:
        if not isinstance(target, LinkId):
            raise TypeError(f"{issue} targets a LinkId, got {type(target)}")
        return Fault(issue=issue, target=target, start=start,
                     culprits={str(target)}, **params)

    return factory


def _switch_fault(issue: IssueType, **params) -> Callable:
    def factory(cluster: Cluster, target: SwitchId, start: float) -> Fault:
        if not isinstance(target, SwitchId):
            raise TypeError(f"{issue} targets a SwitchId, got {type(target)}")
        return Fault(issue=issue, target=target, start=start,
                     culprits={str(target)}, **params)

    return factory


def _rnic_fault(issue: IssueType, extra_culprits=(), **params) -> Callable:
    def factory(cluster: Cluster, target: RnicId, start: float) -> Fault:
        if not isinstance(target, RnicId):
            raise TypeError(f"{issue} targets an RnicId, got {type(target)}")
        culprits = {str(target), vtep_name(target)}
        for extra in extra_culprits:
            culprits.add(extra(target))
        return Fault(issue=issue, target=target, start=start,
                     culprits=culprits, **params)

    return factory


def _host_fault(issue: IssueType, **params) -> Callable:
    def factory(cluster: Cluster, target: HostId, start: float) -> Fault:
        if not isinstance(target, HostId):
            raise TypeError(f"{issue} targets a HostId, got {type(target)}")
        culprits = {host_component(target)}
        if ISSUE_CATALOG[issue].component == ComponentClass.VIRTUAL_SWITCH:
            culprits.add(ovs_name(target))
        return Fault(issue=issue, target=target, start=start,
                     culprits=culprits, **params)

    return factory


def _container_fault(issue: IssueType, **params) -> Callable:
    def factory(cluster: Cluster, target: Container, start: float) -> Fault:
        if not isinstance(target, Container):
            raise TypeError(
                f"{issue} targets a Container, got {type(target)}"
            )
        return Fault(issue=issue, target=target, start=start,
                     culprits={container_component(target.id)}, **params)

    return factory


# ----------------------------------------------------------------------
# Gray-failure families (load-dependent; SHIFT §4 / SprayCheck §2)
# ----------------------------------------------------------------------


def storm_center(link: LinkId) -> str:
    """The switch whose paused ports propagate a PFC storm on ``link``.

    PFC pause frames travel upstream from the congested egress port, so
    the storm centres on the link's aggregation-side device: the spine
    for a ToR–spine link, the ToR for an access link.
    """
    for prefix in ("spine-", "core-", "tor-", "edge-"):
        for name in (link.a, link.b):
            if name.startswith(prefix):
                return name
    return link.a


def _pfc_storm_factory(
    cluster: Cluster, target: LinkId, start: float
) -> Fault:
    if not isinstance(target, LinkId):
        raise TypeError(
            f"{GrayIssueType.PFC_STORM} targets a LinkId, got {type(target)}"
        )
    center = storm_center(target)
    victims = frozenset(
        link for link in cluster.topology.links()
        if link.touches(center) and link != target
    )
    return Fault(
        issue=GrayIssueType.PFC_STORM, target=target, start=start,
        loss_rate=0.06, extra_latency_us=350.0,
        victim_links=victims,
        victim_loss_rate=0.02, victim_extra_latency_us=220.0,
        # Pause propagation makes the whole storm centre blameworthy:
        # an accurate localizer may pin the congested link or the
        # switch whose ports it paused.
        culprits={str(target), center},
    )


def _congestion_collapse_factory(
    cluster: Cluster, target: LinkId, start: float
) -> Fault:
    if not isinstance(target, LinkId):
        raise TypeError(
            f"{GrayIssueType.CONGESTION_COLLAPSE} targets a LinkId, "
            f"got {type(target)}"
        )
    # Canonical severity assumes a warm link; injection sites that know
    # the workload pass utilization-coupled overrides instead (see
    # :func:`gray_injection_overrides`).
    return Fault(
        issue=GrayIssueType.CONGESTION_COLLAPSE, target=target, start=start,
        loss_rate=collapse_loss_rate(0.75),
        extra_latency_us=collapse_latency_us(0.75),
        culprits={str(target)},
    )


def _partial_degradation_factory(
    cluster: Cluster, target: LinkId, start: float
) -> Fault:
    if not isinstance(target, LinkId):
        raise TypeError(
            f"{GrayIssueType.PARTIAL_LINK_DEGRADATION} targets a LinkId, "
            f"got {type(target)}"
        )
    return Fault(
        issue=GrayIssueType.PARTIAL_LINK_DEGRADATION, target=target,
        start=start, loss_rate=0.08, extra_latency_us=30.0,
        culprits={str(target)},
    )


def gray_injection_overrides(
    issue: GrayIssueType,
    target: LinkId,
    seed: int,
    load_model: Optional[LinkLoadModel] = None,
    salt: int = 0,
) -> Dict[str, float]:
    """Scenario-coupled severity overrides for a gray fault.

    Partial degradation draws its severity through the keyed-draw
    contract — a pure function of ``(seed, target, salt)``, so every
    replica of a run derives the same marginal link.  Congestion
    collapse couples severity to the link's utilization under the
    workload's traffic matrix when a :class:`LinkLoadModel` is given
    (cool links collapse mildly, hot links catastrophically).  PFC
    storms need no overrides: the factory derives the victim set from
    the topology itself.
    """
    if issue is GrayIssueType.PARTIAL_LINK_DEGRADATION:
        severity = keyed_uniform(seed, f"gray:partial:{target}", salt)
        return {
            "loss_rate": 0.05 + 0.10 * severity,
            "extra_latency_us": 18.0 + 42.0 * severity,
        }
    if issue is GrayIssueType.CONGESTION_COLLAPSE and load_model is not None:
        utilization = max(0.35, load_model.class_utilization(target))
        return {
            "loss_rate": collapse_loss_rate(utilization),
            "extra_latency_us": collapse_latency_us(utilization),
        }
    return {}


_FACTORIES: Dict[object, Callable] = {
    GrayIssueType.PFC_STORM: _pfc_storm_factory,
    GrayIssueType.CONGESTION_COLLAPSE: _congestion_collapse_factory,
    GrayIssueType.PARTIAL_LINK_DEGRADATION: _partial_degradation_factory,
    IssueType.CRC_ERROR: _link_fault(
        IssueType.CRC_ERROR, loss_rate=0.10
    ),
    IssueType.SWITCH_PORT_DOWN: _link_fault(
        IssueType.SWITCH_PORT_DOWN, down=True
    ),
    IssueType.SWITCH_PORT_FLAPPING: _link_fault(
        IssueType.SWITCH_PORT_FLAPPING,
        down=True, flap_period_s=20.0, flap_duty=0.35,
    ),
    IssueType.SWITCH_OFFLINE: _switch_fault(
        IssueType.SWITCH_OFFLINE, down=True
    ),
    IssueType.RNIC_HARDWARE_FAILURE: _rnic_fault(
        IssueType.RNIC_HARDWARE_FAILURE, down=True
    ),
    IssueType.RNIC_FIRMWARE_NOT_RESPONDING: _rnic_fault(
        IssueType.RNIC_FIRMWARE_NOT_RESPONDING,
        extra_latency_us=150.0, flow_selector=2,
    ),
    IssueType.RNIC_PORT_DOWN: _rnic_fault(
        IssueType.RNIC_PORT_DOWN, down=True
    ),
    IssueType.RNIC_PORT_FLAPPING: _rnic_fault(
        IssueType.RNIC_PORT_FLAPPING,
        down=True, flap_period_s=30.0, flap_duty=0.4,
    ),
    IssueType.OFFLOADING_FAILURE: _rnic_fault(
        IssueType.OFFLOADING_FAILURE
    ),
    IssueType.BOND_ERROR: _rnic_fault(
        IssueType.BOND_ERROR, down=True
    ),
    IssueType.RNIC_GID_CHANGE: _rnic_fault(
        IssueType.RNIC_GID_CHANGE,
        extra_culprits=(lambda r: host_component(r.host),),
    ),
    IssueType.PCIE_NIC_ERROR: _host_fault(
        IssueType.PCIE_NIC_ERROR, extra_latency_us=90.0
    ),
    IssueType.GPU_DIRECT_RDMA_ERROR: _host_fault(
        IssueType.GPU_DIRECT_RDMA_ERROR, extra_latency_us=70.0
    ),
    IssueType.NOT_USING_RDMA: _host_fault(
        IssueType.NOT_USING_RDMA
    ),
    IssueType.REPETITIVE_FLOW_OFFLOADING: _rnic_fault(
        IssueType.REPETITIVE_FLOW_OFFLOADING, loss_rate=0.0005
    ),
    IssueType.SUBOPTIMAL_FLOW_OFFLOADING: _host_fault(
        IssueType.SUBOPTIMAL_FLOW_OFFLOADING,
        extra_latency_us=60.0, flow_selector=2,
    ),
    IssueType.CONTAINER_CRASH: _container_fault(
        IssueType.CONTAINER_CRASH
    ),
    IssueType.HUGEPAGE_MISCONFIGURATION: _host_fault(
        IssueType.HUGEPAGE_MISCONFIGURATION, extra_latency_us=45.0
    ),
    IssueType.CONGESTION_CONTROL_ISSUE: _switch_fault(
        IssueType.CONGESTION_CONTROL_ISSUE, extra_latency_us=55.0
    ),
}
