"""The data-plane fabric: what actually happens to a probe packet.

A probe from endpoint A to endpoint B goes through:

1. the **overlay**: A's veth → A's host OVS (flow lookup, slow-path
   install on first use) → A's RNIC VTEP (VXLAN encap, hardware or
   software path) → ... → B's host OVS → B's veth;
2. the **underlay**: the ECMP-selected physical path between A's and B's
   RNICs (RNIC → ToR [→ spine → ToR] → RNIC).

Faults registered with the :class:`~repro.network.faults.FaultInjector`
perturb either layer; the latency model turns the healthy path shape plus
fault/congestion extras into a sampled RTT.  The fabric is the single
place where overlay state, underlay topology, faults, and noise combine —
every probing strategy (SkeletonHunter, full-mesh Pingmesh, deTector)
sends its probes through this same function.

Two performance layers keep skeleton-scale monitoring cheap (§6 of the
paper argues probing must stay invisible next to training traffic; the
simulator's per-probe cost has to follow suit):

* a :class:`FlowResolutionCache` memoizes the *deterministic* half of a
  probe — the overlay trace, the ECMP path pick, the faults that could
  touch the resolution, and the overlay component-health effects — with
  epoch-based invalidation driven by fault inject/clear, overlay
  attach/detach, flow-table mutations, and health-flag changes;
* :meth:`DataPlaneFabric.send_probe_batch` samples loss and RTT for a
  whole probing round with vectorized numpy draws.  Every probe consumes
  a fixed block of five uniforms, so the batched draw is bit-identical
  to one-at-a-time sampling and ``send_probe_batch`` returns exactly the
  :class:`~repro.network.packet.ProbeResult` stream the sequential
  :meth:`DataPlaneFabric.send_probe` loop would under the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.cluster.identifiers import EndpointId, RnicId
from repro.cluster.orchestrator import Cluster
from repro.cluster.overlay import OverlayTrace, ovs_name, veth_name, vtep_name
from repro.cluster.topology import UnderlayPath
from repro.network.draws import PairwiseDrawSource
from repro.network.faults import Effects, Fault, FaultInjector
from repro.network.latency import LatencyModel, TransientCongestion
from repro.network.packet import ProbeResult, flow_hash
from repro.sim.metrics import MetricRegistry
from repro.sim.rng import RngRegistry

__all__ = ["DataPlaneFabric", "FlowResolutionCache"]

#: Uniforms one probe consumes, in order: loss gate, base-RTT noise,
#: software-path noise, congestion gate, congestion magnitude.  Fixed
#: whether or not the probe is lost, so batched pre-draws stay aligned
#: with sequential draws.
_DRAWS_PER_PROBE = 5

#: Spraying ECMP consumes one extra trailing uniform — the per-packet
#: path pick — so columns 0–4 keep their static-mode meaning and the
#: block stays fixed-width (batched draws remain bit-identical to
#: sequential under either mode).
_DRAWS_PER_PROBE_SPRAY = 6


@dataclass(frozen=True)
class _SprayChoice:
    """One equal-probability path a sprayed probe may take."""

    path: UnderlayPath
    faults: Tuple[object, ...]
    hops: int
    switches: int


@dataclass
class _Resolution:
    """The deterministic (RNG-free, time-free) half of one probe."""

    epoch: Tuple[int, int, int]  # (overlay, injector, routing) epochs
    trace: OverlayTrace
    fhash: int
    reached: bool
    overlay_reason: str = ""
    path: Optional[UnderlayPath] = None
    faults: Tuple[Fault, ...] = ()
    # Merged component-health effects along the overlay chain.
    overlay_fx: Effects = field(default_factory=Effects)
    hops: int = 0
    switches: int = 0
    #: Spraying mode: the per-packet path *distribution* — every ECMP
    #: candidate with its own relevant-fault tuple, pre-resolved so the
    #: per-probe pick costs one uniform and one tuple index.
    spray: Tuple[_SprayChoice, ...] = ()


class FlowResolutionCache:
    """Memoizes per-(src, dst, salt) probe resolutions.

    A resolution is valid exactly while the *(overlay epoch, injector
    epoch)* pair it was computed under is current: fault registrations
    and clears, container attach/detach, OVS/offload flow-table
    mutations, and component-health flag changes each bump an epoch, so
    Figure-18-style cache-invalidation faults (a table mutating under a
    warm cache) still surface — the next probe re-walks the chain.

    Invalidation is lazy: stale entries are detected (and replaced) at
    lookup time rather than eagerly swept, so an epoch bump costs O(1).
    """

    def __init__(
        self,
        cluster: Cluster,
        injector: FaultInjector,
        enabled: bool = True,
    ) -> None:
        self._cluster = cluster
        self._injector = injector
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        #: ECMP mode resolutions are computed under ("static"/"spray");
        #: owned by the fabric via :meth:`set_mode`.
        self.ecmp_mode = "static"
        self._routing_epoch = 0
        self._entries: Dict[
            Tuple[EndpointId, EndpointId, int], _Resolution
        ] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def set_mode(self, mode: str) -> None:
        """Adopt an ECMP mode, invalidating every cached resolution.

        Toggling spraying changes what a resolution *is* (pinned pick
        vs. path distribution), so the routing epoch bumps and all
        entries cached under the previous mode go stale — a per-flow
        pick cached under static ECMP is never replayed as a sprayed
        probe, and vice versa.
        """
        if mode == self.ecmp_mode:
            return
        self.ecmp_mode = mode
        self._routing_epoch += 1

    @property
    def routing_epoch(self) -> int:
        """Monotone counter of ECMP-mode switches."""
        return self._routing_epoch

    def current_epoch(self) -> Tuple[int, int, int]:
        """The (overlay, injector, routing) epochs entries are valid
        under."""
        return (
            self._cluster.overlay.epoch,
            self._injector.epoch,
            self._routing_epoch,
        )

    def invalidate(self) -> None:
        """Drop every cached resolution (epochs make this optional)."""
        self._entries.clear()

    def resolve(
        self, src: EndpointId, dst: EndpointId, salt: int
    ) -> _Resolution:
        """The resolution for one probe, cached when possible.

        Cache-served resolutions replay ``rule.hit()`` on the flow rules
        the original walk traversed, so per-rule packet counters advance
        exactly as if the chain had been re-walked.
        """
        key = (src, dst, salt)
        if self.enabled:
            cached = self._entries.get(key)
            if cached is not None and cached.epoch == self.current_epoch():
                self.hits += 1
                for rule in cached.trace.rules:
                    rule.hit()
                return cached
        self.misses += 1
        resolution = self._compute(src, dst, salt)
        if self.enabled:
            self._entries[key] = resolution
        return resolution

    def _compute(
        self, src: EndpointId, dst: EndpointId, salt: int
    ) -> _Resolution:
        overlay = self._cluster.overlay
        trace = overlay.trace(src, dst, install_missing=True)
        if overlay.is_registered(src) and overlay.is_registered(dst):
            # The echo response travels the reverse flow, whose rule the
            # destination's first reply packet installs.
            overlay.ensure_flow(dst, src)
        fhash = flow_hash(src, dst, salt)

        if not trace.reached:
            reason = "overlay forwarding loop" if trace.loop else (
                f"overlay unreachable at {trace.failure_component}"
            )
            return _Resolution(
                epoch=self.current_epoch(), trace=trace, fhash=fhash,
                reached=False, overlay_reason=reason,
            )

        src_rnic = trace.src_rnic
        dst_rnic = trace.dst_rnic
        path = self._cluster.topology.pick_path(src_rnic, dst_rnic, fhash)
        faults = self._injector.relevant_faults(path, src_rnic, dst_rnic)
        overlay_fx = self._component_effects(src, dst, src_rnic, dst_rnic)
        spray: Tuple[_SprayChoice, ...] = ()
        if self.ecmp_mode == "spray":
            spray = tuple(
                _SprayChoice(
                    path=candidate,
                    faults=self._injector.relevant_faults(
                        candidate, src_rnic, dst_rnic
                    ),
                    hops=candidate.hops,
                    switches=len(candidate.switches()),
                )
                for candidate in self._cluster.topology.ecmp_paths(
                    src_rnic, dst_rnic
                )
            )
        # Snapshot the epoch *after* side effects: the walk itself may
        # have installed flow rules (bumping the overlay epoch), and the
        # entry must be valid from this state onward.
        return _Resolution(
            epoch=self.current_epoch(), trace=trace, fhash=fhash,
            reached=True, path=path, faults=faults, overlay_fx=overlay_fx,
            hops=path.hops, switches=len(path.switches()), spray=spray,
        )

    def _component_effects(
        self,
        src: EndpointId,
        dst: EndpointId,
        src_rnic: RnicId,
        dst_rnic: RnicId,
    ) -> Effects:
        """Latency/loss contributed by overlay component health flags."""
        overlay = self._cluster.overlay
        combined = Effects()
        components = (
            veth_name(src), ovs_name(src_rnic.host), vtep_name(src_rnic),
            vtep_name(dst_rnic), ovs_name(dst_rnic.host), veth_name(dst),
        )
        for name in components:
            health = overlay.health(name)
            combined = combined.merge(Effects(
                down=health.down,
                loss_rate=health.loss_rate,
                extra_latency_us=health.extra_latency_us,
                force_software_path=health.force_software_path,
            ))
        return combined


def _merge_fault_effects(
    faults: Tuple[object, ...],
    overlay_fx: Effects,
    at: float,
    fhash: int,
) -> Effects:
    """Total effects of ``faults`` (plus overlay health) on one probe."""
    combined = Effects()
    for fault in faults:
        contribution = fault.effects(at, fhash)
        if (
            contribution.down
            or contribution.loss_rate > 0.0
            or contribution.extra_latency_us != 0.0
            or contribution.force_software_path
        ):
            combined = combined.merge(contribution)
    return combined.merge(overlay_fx)


def _effects_at(resolution: _Resolution, at: float) -> Effects:
    """Total effects on one probe at time ``at`` (flow = its fhash)."""
    return _merge_fault_effects(
        resolution.faults, resolution.overlay_fx, at, resolution.fhash
    )


class DataPlaneFabric:
    """Sends probes across the simulated overlay + underlay."""

    def __init__(
        self,
        cluster: Cluster,
        injector: FaultInjector,
        rng: RngRegistry,
        latency_model: Optional[LatencyModel] = None,
        congestion: Optional[TransientCongestion] = None,
        metrics: Optional[MetricRegistry] = None,
        cache_enabled: bool = True,
    ) -> None:
        self.cluster = cluster
        self.injector = injector
        self.latency_model = latency_model or LatencyModel()
        self.congestion = congestion or TransientCongestion(rate=0.0)
        self._rng = rng.stream("fabric")
        # Optional counter-based draw source (sharded monitoring): when
        # set, probe uniforms are keyed by (pair, time, salt) instead of
        # consumed from the sequential stream.
        self._draw_source: Optional[PairwiseDrawSource] = None
        self._pairwise_seed: Optional[int] = None
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.resolution_cache = FlowResolutionCache(
            cluster, injector, enabled=cache_enabled
        )

    def use_pairwise_draws(self, seed: int) -> None:
        """Switch probe randomness to partition-independent keyed draws.

        After this call every probe's uniform block is a pure function
        of ``(seed, src, dst, at, salt)`` — independent of batch
        composition and draw order — which is the invariant the sharded
        monitoring plane's cross-shard equivalence gate relies on.  The
        default sequential-stream behaviour (bit-compatible with the
        pre-shard fast path) applies until this is called.
        """
        self._pairwise_seed = seed
        self._draw_source = PairwiseDrawSource(
            seed, draws_per_probe=self._draw_width()
        )

    # ------------------------------------------------------------------
    # ECMP mode
    # ------------------------------------------------------------------

    @property
    def ecmp_mode(self) -> str:
        """The active ECMP mode: ``"static"`` (pinned per-flow pick) or
        ``"spray"`` (per-packet path sampling)."""
        return self.resolution_cache.ecmp_mode

    @property
    def spraying(self) -> bool:
        """Whether per-packet path spraying is active."""
        return self.ecmp_mode == "spray"

    def set_ecmp_mode(self, mode: str) -> None:
        """Switch between static per-flow ECMP and per-packet spraying.

        Bumps the resolution cache's routing epoch (stale pinned picks
        are never replayed under the wrong mode) and re-keys the
        pairwise draw source, if one is active, to the mode's draw
        width — spraying consumes a sixth per-probe uniform for the
        path pick.
        """
        if mode not in ("static", "spray"):
            raise ValueError(f"unknown ECMP mode {mode!r}")
        if mode == self.ecmp_mode:
            return
        self.resolution_cache.set_mode(mode)
        if self._pairwise_seed is not None:
            self._draw_source = PairwiseDrawSource(
                self._pairwise_seed, draws_per_probe=self._draw_width()
            )

    def _draw_width(self) -> int:
        """Per-probe uniform-block width under the active ECMP mode."""
        if self.spraying:
            return _DRAWS_PER_PROBE_SPRAY
        return _DRAWS_PER_PROBE

    def attach_metrics(self, metrics: MetricRegistry) -> None:
        """Adopt a shared registry, folding in any counts so far.

        Called when the fabric joins an observed SkeletonHunter after
        construction; past ``probes.*`` counts are preserved.
        """
        if metrics is self.metrics:
            return
        metrics.merge_from(self.metrics)
        self.metrics = metrics

    @property
    def probes_sent(self) -> int:
        """Lifetime count of probes sent (backed by the registry)."""
        return int(self.metrics.counter("probes.sent"))

    @property
    def probes_lost(self) -> int:
        """Lifetime count of probes lost (backed by the registry)."""
        return int(self.metrics.counter("probes.lost"))

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def send_probe(
        self, src: EndpointId, dst: EndpointId, at: float, salt: int = 0
    ) -> ProbeResult:
        """Send one probe at simulated time ``at`` and observe its fate.

        Exactly equivalent to a one-element :meth:`send_probe_batch`
        (it *is* one): a round probed pair-by-pair and the same round
        probed in one batch consume the same generator stream and yield
        the same results.
        """
        return self.send_probe_batch(((src, dst),), at, salt)[0]

    def send_probe_batch(
        self,
        pairs: Iterable[object],
        at: float,
        salt: int = 0,
    ) -> List[ProbeResult]:
        """Send one probe per pair at simulated time ``at``.

        ``pairs`` may hold ``(src, dst)`` tuples or any objects with
        ``src``/``dst`` attributes (e.g.
        :class:`~repro.core.pinglist.ProbePair`).  Results come back in
        input order.  Each probe consumes a fixed five-uniform block of
        the fabric stream; the block for the whole round is drawn once
        and transformed with vectorized numpy math, which is where the
        batched path earns its throughput (see ``repro bench``).

        Resolution still happens per probe *in order*, so side effects
        (first-use flow installs, mid-batch cache invalidation by a
        fault's table mutation) land exactly as they would sequentially.
        """
        endpoints: List[Tuple[EndpointId, EndpointId]] = [
            (pair.src, pair.dst) if hasattr(pair, "src") else tuple(pair)
            for pair in pairs
        ]
        n = len(endpoints)
        if n == 0:
            return []
        if self._draw_source is None:
            draws = self._rng.random((n, self._draw_width()))
        else:
            draws = self._draw_source.uniforms(endpoints, at, salt)
        spraying = self.spraying

        cache = self.resolution_cache
        results: List[Optional[ProbeResult]] = [None] * n
        lost = 0
        # Delivered probes accumulate here for one vectorized RTT pass.
        delivered: List[int] = []
        delivered_res: List[_Resolution] = []
        delivered_path: List[Optional[UnderlayPath]] = []
        hops: List[int] = []
        switches: List[int] = []
        extra_us: List[float] = []
        software: List[bool] = []

        for i, (src, dst) in enumerate(endpoints):
            res = cache.resolve(src, dst, salt)
            trace = res.trace
            if not res.reached:
                lost += 1
                results[i] = ProbeResult(
                    src=src, dst=dst, sent_at=at, lost=True,
                    reason=res.overlay_reason,
                    src_rnic=trace.src_rnic, dst_rnic=trace.dst_rnic,
                    overlay_trace=trace,
                )
                continue
            if spraying and res.spray:
                # Per-packet path pick: the trailing uniform indexes the
                # equal-probability ECMP candidate set.
                k = len(res.spray)
                choice = res.spray[min(int(draws[i, 5] * k), k - 1)]
                effects = _merge_fault_effects(
                    choice.faults, res.overlay_fx, at, res.fhash
                )
                taken_path = choice.path
                taken_hops, taken_switches = choice.hops, choice.switches
            else:
                effects = _effects_at(res, at)
                taken_path = res.path
                taken_hops, taken_switches = res.hops, res.switches
            if effects.down:
                lost += 1
                results[i] = ProbeResult(
                    src=src, dst=dst, sent_at=at, lost=True,
                    reason="component down on path",
                    src_rnic=trace.src_rnic, dst_rnic=trace.dst_rnic,
                    underlay_path=taken_path, overlay_trace=trace,
                )
                continue
            if effects.loss_rate > 0 and float(
                draws[i, 0]
            ) < effects.loss_rate:
                lost += 1
                results[i] = ProbeResult(
                    src=src, dst=dst, sent_at=at, lost=True,
                    reason="packet dropped on path",
                    src_rnic=trace.src_rnic, dst_rnic=trace.dst_rnic,
                    underlay_path=taken_path, overlay_trace=trace,
                )
                continue
            delivered.append(i)
            delivered_res.append(res)
            delivered_path.append(taken_path)
            hops.append(taken_hops)
            switches.append(taken_switches)
            extra_us.append(effects.extra_latency_us)
            software.append(
                trace.software_path or effects.force_software_path
            )

        if delivered:
            rows = np.asarray(delivered)
            latencies = self.latency_model.rtt_from_uniforms(
                draws[rows, 1], draws[rows, 2],
                num_links=np.asarray(hops),
                num_switches=np.asarray(switches),
                extra_us=np.asarray(extra_us),
                software_path=np.asarray(software),
            )
            latencies = latencies + self.congestion.spikes_from_uniforms(
                draws[rows, 3], draws[rows, 4]
            )
            for j, i in enumerate(delivered):
                src, dst = endpoints[i]
                res = delivered_res[j]
                results[i] = ProbeResult(
                    src=src, dst=dst, sent_at=at, lost=False,
                    latency_us=float(latencies[j]),
                    software_path=bool(software[j]),
                    src_rnic=res.trace.src_rnic,
                    dst_rnic=res.trace.dst_rnic,
                    underlay_path=delivered_path[j],
                    overlay_trace=res.trace,
                )

        self.metrics.increment("probes.sent", n)
        if lost:
            self.metrics.increment("probes.lost", lost)
        soft_count = sum(software)
        if soft_count:
            self.metrics.increment("probes.software_path", soft_count)
        return [result for result in results if result is not None]

    # ------------------------------------------------------------------
    # Host-agent capabilities (used by the localizer)
    # ------------------------------------------------------------------

    def traceroute(
        self, src: EndpointId, dst: EndpointId, salt: int = 0
    ) -> Optional[UnderlayPath]:
        """The underlay path the (src, dst) flow is pinned to, if known.

        Mirrors the paper's per-host traceroute agents: reveals the actual
        ECMP choice so tomography can intersect failing paths.  Returns
        ``None`` when either endpoint is not attached to the overlay.
        """
        overlay = self.cluster.overlay
        if not overlay.is_registered(src) or not overlay.is_registered(dst):
            return None
        src_rnic = overlay.rnic_of(src)
        dst_rnic = overlay.rnic_of(dst)
        fhash = flow_hash(src, dst, salt)
        return self.cluster.topology.pick_path(src_rnic, dst_rnic, fhash)

    def path_distribution(
        self, src: EndpointId, dst: EndpointId, salt: int = 0
    ) -> List[UnderlayPath]:
        """Every underlay path a probe between ``src``/``dst`` may take.

        Under spraying, the full equal-probability ECMP candidate set
        (each path carries mass ``1/len``); under static ECMP, the
        single pinned pick.  Distribution-aware tomography weights its
        votes by this mass instead of assuming one deterministic path.
        Empty when either endpoint is not attached to the overlay.
        """
        overlay = self.cluster.overlay
        if not overlay.is_registered(src) or not overlay.is_registered(dst):
            return []
        src_rnic = overlay.rnic_of(src)
        dst_rnic = overlay.rnic_of(dst)
        if self.spraying:
            return list(
                self.cluster.topology.ecmp_paths(src_rnic, dst_rnic)
            )
        fhash = flow_hash(src, dst, salt)
        return [self.cluster.topology.pick_path(src_rnic, dst_rnic, fhash)]

    @property
    def loss_fraction(self) -> float:
        """Fraction of all probes ever sent that were lost."""
        if self.probes_sent == 0:
            return 0.0
        return self.probes_lost / self.probes_sent
