"""The data-plane fabric: what actually happens to a probe packet.

A probe from endpoint A to endpoint B goes through:

1. the **overlay**: A's veth → A's host OVS (flow lookup, slow-path
   install on first use) → A's RNIC VTEP (VXLAN encap, hardware or
   software path) → ... → B's host OVS → B's veth;
2. the **underlay**: the ECMP-selected physical path between A's and B's
   RNICs (RNIC → ToR [→ spine → ToR] → RNIC).

Faults registered with the :class:`~repro.network.faults.FaultInjector`
perturb either layer; the latency model turns the healthy path shape plus
fault/congestion extras into a sampled RTT.  The fabric is the single
place where overlay state, underlay topology, faults, and noise combine —
every probing strategy (SkeletonHunter, full-mesh Pingmesh, deTector)
sends its probes through this same function.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.identifiers import EndpointId, RnicId
from repro.cluster.orchestrator import Cluster
from repro.cluster.overlay import ovs_name, veth_name, vtep_name
from repro.cluster.topology import UnderlayPath
from repro.network.faults import Effects, FaultInjector
from repro.network.latency import LatencyModel, TransientCongestion
from repro.network.packet import ProbeResult, flow_hash
from repro.sim.metrics import MetricRegistry
from repro.sim.rng import RngRegistry

__all__ = ["DataPlaneFabric"]


class DataPlaneFabric:
    """Sends probes across the simulated overlay + underlay."""

    def __init__(
        self,
        cluster: Cluster,
        injector: FaultInjector,
        rng: RngRegistry,
        latency_model: Optional[LatencyModel] = None,
        congestion: Optional[TransientCongestion] = None,
        metrics: Optional[MetricRegistry] = None,
    ) -> None:
        self.cluster = cluster
        self.injector = injector
        self.latency_model = latency_model or LatencyModel()
        self.congestion = congestion or TransientCongestion(rate=0.0)
        self._rng = rng.stream("fabric")
        self.metrics = metrics if metrics is not None else MetricRegistry()

    def attach_metrics(self, metrics: MetricRegistry) -> None:
        """Adopt a shared registry, folding in any counts so far.

        Called when the fabric joins an observed SkeletonHunter after
        construction; past ``probes.*`` counts are preserved.
        """
        if metrics is self.metrics:
            return
        metrics.merge_from(self.metrics)
        self.metrics = metrics

    @property
    def probes_sent(self) -> int:
        """Lifetime count of probes sent (backed by the registry)."""
        return int(self.metrics.counter("probes.sent"))

    @property
    def probes_lost(self) -> int:
        """Lifetime count of probes lost (backed by the registry)."""
        return int(self.metrics.counter("probes.lost"))

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------

    def send_probe(
        self, src: EndpointId, dst: EndpointId, at: float, salt: int = 0
    ) -> ProbeResult:
        """Send one probe at simulated time ``at`` and observe its fate."""
        self.metrics.increment("probes.sent")
        overlay = self.cluster.overlay
        trace = overlay.trace(src, dst, install_missing=True)
        if overlay.is_registered(src) and overlay.is_registered(dst):
            # The echo response travels the reverse flow, whose rule the
            # destination's first reply packet installs.
            overlay.ensure_flow(dst, src)
        fhash = flow_hash(src, dst, salt)

        if not trace.reached:
            self.metrics.increment("probes.lost")
            reason = "overlay forwarding loop" if trace.loop else (
                f"overlay unreachable at {trace.failure_component}"
            )
            return ProbeResult(
                src=src, dst=dst, sent_at=at, lost=True, reason=reason,
                src_rnic=trace.src_rnic, dst_rnic=trace.dst_rnic,
                overlay_trace=trace,
            )

        src_rnic = trace.src_rnic
        dst_rnic = trace.dst_rnic
        path = self.cluster.topology.pick_path(src_rnic, dst_rnic, fhash)

        effects = self.injector.path_effects(path, at, fhash)
        effects = effects.merge(self.injector.rnic_effects(src_rnic, at, fhash))
        effects = effects.merge(self.injector.rnic_effects(dst_rnic, at, fhash))
        effects = effects.merge(
            self.injector.host_effects(src_rnic.host, at, fhash)
        )
        effects = effects.merge(
            self.injector.host_effects(dst_rnic.host, at, fhash)
        )

        overlay_extra = self._overlay_extras(src, dst, src_rnic, dst_rnic)
        effects = effects.merge(overlay_extra)

        if effects.down:
            self.metrics.increment("probes.lost")
            return ProbeResult(
                src=src, dst=dst, sent_at=at, lost=True,
                reason="component down on path",
                src_rnic=src_rnic, dst_rnic=dst_rnic,
                underlay_path=path, overlay_trace=trace,
            )
        if effects.loss_rate > 0 and float(
            self._rng.random()
        ) < effects.loss_rate:
            self.metrics.increment("probes.lost")
            return ProbeResult(
                src=src, dst=dst, sent_at=at, lost=True,
                reason="packet dropped on path",
                src_rnic=src_rnic, dst_rnic=dst_rnic,
                underlay_path=path, overlay_trace=trace,
            )

        software = trace.software_path or effects.force_software_path
        if software:
            self.metrics.increment("probes.software_path")
        latency = self.latency_model.sample_rtt_us(
            self._rng,
            num_links=path.hops,
            num_switches=len(path.switches()),
            extra_us=effects.extra_latency_us,
            software_path=software,
        )
        latency += self.congestion.sample_us(self._rng)
        return ProbeResult(
            src=src, dst=dst, sent_at=at, lost=False,
            latency_us=latency, software_path=software,
            src_rnic=src_rnic, dst_rnic=dst_rnic,
            underlay_path=path, overlay_trace=trace,
        )

    def _overlay_extras(
        self,
        src: EndpointId,
        dst: EndpointId,
        src_rnic: RnicId,
        dst_rnic: RnicId,
    ) -> Effects:
        """Latency/loss contributed by overlay component health flags."""
        overlay = self.cluster.overlay
        combined = Effects()
        components = (
            veth_name(src), ovs_name(src_rnic.host), vtep_name(src_rnic),
            vtep_name(dst_rnic), ovs_name(dst_rnic.host), veth_name(dst),
        )
        for name in components:
            health = overlay.health(name)
            combined = combined.merge(Effects(
                down=health.down,
                loss_rate=health.loss_rate,
                extra_latency_us=health.extra_latency_us,
                force_software_path=health.force_software_path,
            ))
        return combined

    # ------------------------------------------------------------------
    # Host-agent capabilities (used by the localizer)
    # ------------------------------------------------------------------

    def traceroute(
        self, src: EndpointId, dst: EndpointId, salt: int = 0
    ) -> Optional[UnderlayPath]:
        """The underlay path the (src, dst) flow is pinned to, if known.

        Mirrors the paper's per-host traceroute agents: reveals the actual
        ECMP choice so tomography can intersect failing paths.  Returns
        ``None`` when either endpoint is not attached to the overlay.
        """
        overlay = self.cluster.overlay
        if not overlay.is_registered(src) or not overlay.is_registered(dst):
            return None
        src_rnic = overlay.rnic_of(src)
        dst_rnic = overlay.rnic_of(dst)
        fhash = flow_hash(src, dst, salt)
        return self.cluster.topology.pick_path(src_rnic, dst_rnic, fhash)

    @property
    def loss_fraction(self) -> float:
        """Fraction of all probes ever sent that were lost."""
        if self.probes_sent == 0:
            return 0.0
        return self.probes_lost / self.probes_sent
