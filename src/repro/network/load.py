"""Per-link offered load derived from the workload's traffic matrix.

The gray-failure families (SHIFT §4) are *load-dependent*: a congestion
collapse only exists because training traffic over-subscribes a link,
and its severity scales with how hot the link runs.  This module turns
the workload's rank-level traffic matrix (the paper's Figure 9) into a
per-link utilization estimate by routing every communicating rank pair
over its ECMP path set with equal splitting — exactly the load an ECMP
fabric would carry in expectation, whether flows are pinned (static
hashing averages out over many pairs) or sprayed per packet.

Utilizations are normalized to the hottest link (1.0 = the busiest link
in the fabric), which is the shape the collapse curves below consume.
Everything here is a pure function of (workload, cluster), so two
replicas built from the same spec derive bit-identical load — the
keyed-draw determinism contract extends to load-coupled fault severity.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.cluster.identifiers import LinkId
from repro.cluster.topology import UnderlayPath

__all__ = [
    "LinkLoadModel",
    "collapse_latency_us",
    "collapse_loss_rate",
]


def collapse_loss_rate(utilization: float) -> float:
    """Drop rate of a collapsed link carrying ``utilization`` load.

    Quadratic in load (queue overflow grows superlinearly as offered
    load approaches capacity), floored so even a cool link collapses
    noticeably and capped below full blackout — collapse is gray, not
    binary.
    """
    u = min(max(utilization, 0.0), 1.0)
    return min(0.45, 0.04 + 0.38 * u * u)


def collapse_latency_us(utilization: float) -> float:
    """Extra RTT (µs) of a collapsed link carrying ``utilization`` load.

    An M/M/1-flavoured blow-up tamed to a power curve: queueing delay
    grows steeply but stays finite (retransmissions bound sojourn time).
    """
    u = min(max(utilization, 0.0), 1.0)
    return 40.0 + 260.0 * u ** 1.5


class LinkLoadModel:
    """Expected per-link load of a workload's collective traffic.

    ``loads`` maps each link to the number of unit flows crossing it in
    expectation (a rank pair contributes ``1/len(ecmp_paths)`` to every
    link of every path it may use).  :meth:`utilization` rescales to the
    hottest link.
    """

    def __init__(self, loads: Dict[LinkId, float]) -> None:
        self._loads = dict(loads)
        self._max = max(self._loads.values()) if self._loads else 0.0
        # Per-stratum peaks: access (RNIC-attached) links concentrate a
        # rank's entire traffic, so they dominate the global max and
        # would make every fabric link look cool by comparison.
        access = [
            load for link, load in self._loads.items()
            if self._is_access(link)
        ]
        fabric = [
            load for link, load in self._loads.items()
            if not self._is_access(link)
        ]
        self._class_max = {
            True: max(access) if access else 0.0,
            False: max(fabric) if fabric else 0.0,
        }

    @classmethod
    def from_workload(cls, workload, cluster) -> "LinkLoadModel":
        """Route the workload's traffic matrix over the cluster fabric."""
        # Local import: collectives imports nothing from repro.network,
        # but keeping the dependency one-way at module load avoids any
        # chance of a cycle as the training package grows.
        from repro.training.collectives import traffic_matrix

        topology = cluster.topology
        overlay = cluster.overlay
        matrix = traffic_matrix(workload)
        n = workload.num_ranks
        loads: Dict[LinkId, float] = {}
        for a in range(n):
            for b in range(a + 1, n):
                if not matrix[a, b]:
                    continue
                src = overlay.rnic_of(workload.endpoint_of(a))
                dst = overlay.rnic_of(workload.endpoint_of(b))
                if src == dst:
                    continue
                paths = topology.ecmp_paths(src, dst)
                if not paths:
                    continue
                share = 1.0 / len(paths)
                for path in paths:
                    for link in path.links:
                        loads[link] = loads.get(link, 0.0) + share
        return cls(loads)

    def load(self, link: LinkId) -> float:
        """Raw expected unit-flow count crossing ``link``."""
        return self._loads.get(link, 0.0)

    def utilization(self, link: LinkId) -> float:
        """Load of ``link`` relative to the fabric's hottest link."""
        if self._max <= 0.0:
            return 0.0
        return self._loads.get(link, 0.0) / self._max

    def class_utilization(self, link: LinkId) -> float:
        """Load of ``link`` relative to the hottest link of its stratum.

        Access links and switch-to-switch fabric links form separate
        capacity classes: ECMP spreads fabric load over many uplinks,
        so a congested uplink is hot *relative to the fabric layer's
        peak* even while some access link carries more absolute flow.
        Congestion-collapse severity couples to this measure.
        """
        peak = self._class_max[self._is_access(link)]
        if peak <= 0.0:
            return 0.0
        return self._loads.get(link, 0.0) / peak

    @staticmethod
    def _is_access(link: LinkId) -> bool:
        return "/rnic-" in link.a or "/rnic-" in link.b

    def path_utilization(self, path: UnderlayPath) -> float:
        """The bottleneck (max) utilization along one path."""
        if not path.links:
            return 0.0
        return max(self.utilization(link) for link in path.links)

    def distribution_utilization(
        self, paths: Iterable[UnderlayPath]
    ) -> float:
        """Expected bottleneck utilization over a path distribution."""
        utils = [self.path_utilization(p) for p in paths]
        if not utils:
            return 0.0
        return sum(utils) / len(utils)

    def hottest_link(self) -> Optional[LinkId]:
        """The busiest link (ties broken by link order), if any load."""
        if not self._loads:
            return None
        return min(
            (link for link, load in self._loads.items()
             if load == self._max),
        )

    def hot_links(self, threshold: float = 0.7) -> list:
        """Links at or above ``threshold`` utilization, sorted."""
        return sorted(
            link for link in self._loads
            if self.utilization(link) >= threshold
        )
