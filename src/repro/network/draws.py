"""Counter-based probe randomness for partition-independent rounds.

The fabric's default sampling draws each round's uniforms from one
sequential generator stream, so a probe's noise depends on *how many
probes were drawn before it* — fine for a single monitoring loop,
fatal for a sharded one, where the same pair may be probed by
different shards (or replayed after a failover) in a different global
order.

:class:`PairwiseDrawSource` replaces the stream with a *counter-based*
generator: the five uniforms of one probe are a pure function of
``(seed, src, dst, round time, salt, draw index)``, computed with a
splitmix64-style hash (vectorized over the batch).  Probe outcomes
then depend only on the probe itself, never on batch composition,
shard assignment, or execution order — which is exactly the invariant
the sharded monitoring plane's equivalence gate rests on (see
``docs/SCALING.md``).

The default sequential path is untouched: a fabric uses this source
only after an explicit
:meth:`~repro.network.fabric.DataPlaneFabric.use_pairwise_draws`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.cluster.identifiers import EndpointId
from repro.sim.rng import _stable_hash

__all__ = ["PairwiseDrawSource", "keyed_uniform", "keyed_uniforms"]

_U64 = np.uint64
_MASK64 = 0xFFFF_FFFF_FFFF_FFFF
_GOLDEN = _U64(0x9E3779B97F4A7C15)
_MIX1 = _U64(0xBF58476D1CE4E5B9)
_MIX2 = _U64(0x94D049BB133111EB)
#: 2**-53: maps the top 53 bits of a uint64 onto [0, 1).
_TO_UNIT = float(2.0 ** -53)


def _scalar_mix64(value: int) -> int:
    """The splitmix64 finalizer over a plain python int (no numpy
    scalar arithmetic: numpy warns on scalar uint64 wraparound)."""
    z = (value + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _mix64(state: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer, elementwise over a uint64 array."""
    z = (state + _GOLDEN).astype(_U64, copy=False)
    z = (z ^ (z >> _U64(30))) * _MIX1
    z = (z ^ (z >> _U64(27))) * _MIX2
    return z ^ (z >> _U64(31))


def keyed_uniform(seed: int, key: str, salt: int = 0) -> float:
    """One uniform in [0, 1) as a pure function of ``(seed, key, salt)``.

    The scalar sibling of :meth:`PairwiseDrawSource.uniforms`: the same
    inputs return the same draw in any process, at any call order.  The
    chaos injector and the retry/backoff jitter use it so that monitor-
    plane decisions never depend on execution order — the same property
    the probing plane gets from :class:`PairwiseDrawSource`.
    """
    state = _stable_hash(f"keyed:{seed}:{key}") ^ _scalar_mix64(
        salt & _MASK64
    )
    return (_scalar_mix64(state) >> 11) * _TO_UNIT


def keyed_uniforms(
    seed: int, key: str, count: int, salt: int = 0
) -> np.ndarray:
    """``count`` keyed uniforms, vectorized (see :func:`keyed_uniform`).

    Draw *i* equals ``keyed_uniform(seed, key, salt + i)`` in spirit but
    is computed in one numpy pass; the block is a pure function of the
    arguments, independent of batch size elsewhere.
    """
    base = _U64(
        _stable_hash(f"keyed:{seed}:{key}") ^ _scalar_mix64(salt & _MASK64)
    )
    offsets = (np.arange(count, dtype=np.uint64) * _GOLDEN).astype(_U64)
    bits = _mix64(base + offsets)
    return (bits >> _U64(11)).astype(np.float64) * _TO_UNIT


class PairwiseDrawSource:
    """Keyed uniform draws: one five-uniform block per (pair, time).

    Stateless by construction — two sources with the same seed return
    bit-identical blocks for the same probes regardless of call order,
    batch grouping, or which process they live in.  The per-pair key
    hash is memoized (pure cache, no behavioral state).
    """

    def __init__(self, seed: int, draws_per_probe: int = 5) -> None:
        self.seed = int(seed)
        self.draws_per_probe = int(draws_per_probe)
        self._seed_key = _stable_hash(f"pairwise-draws:{self.seed}")
        self._pair_keys: Dict[Tuple[EndpointId, EndpointId], _U64] = {}

    def _pair_key(self, src: EndpointId, dst: EndpointId) -> _U64:
        key = self._pair_keys.get((src, dst))
        if key is None:
            key = _U64(_stable_hash(f"{src}->{dst}"))
            self._pair_keys[(src, dst)] = key
        return key

    def uniforms(
        self,
        endpoints: Sequence[Tuple[EndpointId, EndpointId]],
        at: float,
        salt: int,
    ) -> np.ndarray:
        """The ``(len(endpoints), draws_per_probe)`` uniform block.

        Row *i* is the block for probe ``endpoints[i]`` at time ``at``
        — the same row the probe would get in any other batch.
        """
        n = len(endpoints)
        columns = self.draws_per_probe
        keys = np.empty(n, dtype=_U64)
        for i, (src, dst) in enumerate(endpoints):
            keys[i] = self._pair_key(src, dst)
        # Fold time and salt into the per-pair key.  float64 bit views
        # are exact, so any representable probe time keys cleanly.
        time_bits = int(np.float64(at).view(_U64))
        round_key = _scalar_mix64(
            self._seed_key ^ time_bits ^ _scalar_mix64(salt & _MASK64)
        )
        base = _mix64(keys ^ _U64(round_key))
        blocks: List[np.ndarray] = []
        for column in range(columns):
            offset = (column * 0x9E3779B97F4A7C15) & _MASK64
            bits = _mix64(base + _U64(offset))
            blocks.append((bits >> _U64(11)).astype(np.float64))
        return np.stack(blocks, axis=1) * _TO_UNIT
