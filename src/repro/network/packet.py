"""Probe packets and probing results.

A probe is one RDMA echo between two endpoints (the unit the agents
execute).  Its result carries everything the analyzer and localizer need:
the measured round-trip latency (or loss), the overlay forwarding trace,
and the underlay path the ECMP hash picked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cluster.identifiers import EndpointId, LinkId, RnicId
from repro.cluster.overlay import OverlayTrace
from repro.cluster.topology import UnderlayPath

__all__ = ["ProbeResult", "flow_hash"]


def flow_hash(src: EndpointId, dst: EndpointId, salt: int = 0) -> int:
    """A stable 64-bit flow hash used for ECMP path selection.

    RDMA connections pin to one ECMP path for their lifetime, so the hash
    depends only on the endpoint pair (plus an optional salt for flows
    that are deliberately re-established).
    """
    acc = 0xCBF29CE484222325
    for byte in f"{src}|{dst}|{salt}".encode("utf-8"):
        acc ^= byte
        acc = (acc * 0x100000001B3) & 0xFFFF_FFFF_FFFF_FFFF
    return acc


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of one probe between two endpoints."""

    src: EndpointId
    dst: EndpointId
    sent_at: float
    lost: bool
    latency_us: Optional[float] = None
    reason: str = ""
    software_path: bool = False
    src_rnic: Optional[RnicId] = None
    dst_rnic: Optional[RnicId] = None
    underlay_path: Optional[UnderlayPath] = None
    overlay_trace: Optional[OverlayTrace] = None

    def __post_init__(self) -> None:
        if not self.lost and self.latency_us is None:
            raise ValueError("a delivered probe must carry a latency")
        if self.lost and self.latency_us is not None:
            raise ValueError("a lost probe cannot carry a latency")

    @property
    def ok(self) -> bool:
        """Whether the probe completed (regardless of how slowly)."""
        return not self.lost

    def underlay_links(self) -> Tuple[LinkId, ...]:
        """Physical links the probe traversed (empty when lost pre-fabric)."""
        if self.underlay_path is None:
            return ()
        return self.underlay_path.links
