"""Flock-style probabilistic-inference localization baseline.

Flock (Kakarla et al.) localizes failures by Bayesian inference over
per-link failure posteriors instead of combinatorial intersection: every
probed pair is an observation whose likelihood depends on whether its
path crosses a bad link, and links are ranked by posterior odds after
conditioning on all observations.  The shape translates directly to this
simulator — including spraying ECMP, where a pair crosses a candidate
link only with probability ``w`` (its mass in the pair's path
distribution) and the likelihood mixes the crossed/not-crossed cases.

Per link ``L`` with prior failure probability ``p``:

* ``P(pair fails | L bad)  = w*q + (1-w)*f0`` — crossing a bad link
  fails the pair with probability ``q``; otherwise the baseline
  false-alarm rate ``f0`` applies;
* ``P(pair fails | L good) = f0``;
* healthy pairs contribute the complementary likelihoods.

Log-odds accumulate over all failing and healthy observations; links
whose posterior clears ``posterior_floor`` are suspects, ranked by
posterior.  Promotion to a shared switch/host/RNIC reuses the same rule
the tomography voter applies, so the two localizers are scored on equal
footing in ``benchmarks/bench_gray.py``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.cluster.identifiers import LinkId
from repro.cluster.orchestrator import Cluster
from repro.core.analyzer import FailureEvent
from repro.core.localization import Diagnosis, LocalizationReport
from repro.core.pinglist import ProbePair
from repro.core.tomography import PhysicalIntersection
from repro.network.fabric import DataPlaneFabric
from repro.network.issues import ComponentClass

__all__ = ["FlockLocalizer"]


class FlockLocalizer:
    """Bayesian per-link failure inference over probe observations."""

    name = "flock"

    def __init__(
        self,
        cluster: Cluster,
        fabric: DataPlaneFabric,
        prior: float = 0.02,
        hit_rate: float = 0.85,
        false_rate: float = 0.02,
        posterior_floor: float = 0.5,
        max_suspects: int = 4,
    ) -> None:
        if not 0.0 < prior < 1.0:
            raise ValueError("prior must be a probability in (0, 1)")
        if not 0.0 < false_rate < hit_rate <= 1.0:
            raise ValueError("need 0 < false_rate < hit_rate <= 1")
        self.cluster = cluster
        self.fabric = fabric
        self.prior = prior
        self.hit_rate = hit_rate
        self.false_rate = false_rate
        self.posterior_floor = posterior_floor
        self.max_suspects = max_suspects

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------

    def _crossing_mass(
        self, pair: ProbePair
    ) -> Dict[LinkId, float]:
        """P(the pair's probe crosses each link), from its distribution."""
        paths = self.fabric.path_distribution(pair.src, pair.dst)
        if not paths:
            return {}
        share = 1.0 / len(paths)
        mass: Dict[LinkId, float] = {}
        for path in paths:
            for link in path.links:
                mass[link] = mass.get(link, 0.0) + share
        return mass

    def link_posteriors(
        self,
        failing_pairs: Sequence[ProbePair],
        healthy_pairs: Sequence[ProbePair] = (),
    ) -> Dict[LinkId, float]:
        """Posterior failure probability per candidate link.

        Candidates are the links failing pairs can cross; healthy pairs
        only ever push a candidate's posterior down.
        """
        q, f0 = self.hit_rate, self.false_rate
        log_odds: Dict[LinkId, float] = {}
        prior_odds = math.log(self.prior / (1.0 - self.prior))
        for pair in failing_pairs:
            for link, w in self._crossing_mass(pair).items():
                fail_given_bad = w * q + (1.0 - w) * f0
                ratio = math.log(fail_given_bad / f0)
                log_odds[link] = log_odds.get(link, prior_odds) + ratio
        if not log_odds:
            return {}
        for pair in healthy_pairs:
            for link, w in self._crossing_mass(pair).items():
                if link not in log_odds:
                    continue
                fail_given_bad = w * q + (1.0 - w) * f0
                ratio = math.log(
                    (1.0 - fail_given_bad) / (1.0 - f0)
                )
                log_odds[link] += ratio
        return {
            link: 1.0 / (1.0 + math.exp(-odds))
            for link, odds in log_odds.items()
        }

    def localize(
        self,
        events: Sequence[FailureEvent],
        healthy_pairs: Sequence[ProbePair] = (),
        now: float = 0.0,
    ) -> LocalizationReport:
        """Rank links by posterior and report the survivors.

        Returns a :class:`LocalizationReport` so the campaign scorer
        can evaluate Flock exactly like the SkeletonHunter pipeline.
        """
        del now  # inference is time-free; signature mirrors Localizer
        failing = sorted(
            {event.pair for event in events},
            key=lambda p: (str(p.src), str(p.dst)),
        )
        posteriors = self.link_posteriors(failing, healthy_pairs)
        ranked: List[Tuple[LinkId, float]] = sorted(
            (
                (link, posterior)
                for link, posterior in posteriors.items()
                if posterior >= self.posterior_floor
            ),
            key=lambda item: (-item[1], str(item[0])),
        )[: self.max_suspects]
        report = LocalizationReport()
        if not ranked:
            report.unexplained = list(events)
            return report
        suspects = tuple(sorted(link for link, _ in ranked))
        component, kind = PhysicalIntersection._promote(suspects)
        pairs = tuple(failing)
        if component is not None:
            top_posterior = max(p for _, p in ranked)
            report.diagnoses.append(Diagnosis(
                component=component,
                component_class=(
                    ComponentClass.RNIC if kind == "rnic"
                    else ComponentClass.HOST_BOARD if kind == "host"
                    else ComponentClass.INTER_HOST_NETWORK
                ),
                layer="underlay",
                evidence=(
                    f"{len(suspects)} high-posterior links meet at "
                    f"{component} (posterior {top_posterior:.3f})"
                ),
                pairs=pairs,
                confidence=top_posterior,
            ))
        for link, posterior in ranked:
            report.diagnoses.append(Diagnosis(
                component=str(link),
                component_class=ComponentClass.INTER_HOST_NETWORK,
                layer="underlay",
                evidence=(
                    f"posterior {posterior:.3f} over "
                    f"{len(failing)} failing / "
                    f"{len(healthy_pairs)} healthy observations"
                ),
                pairs=pairs,
                confidence=posterior,
            ))
        return report
