"""Full-mesh Pingmesh baseline (Guo et al., SIGCOMM 2015).

Pingmesh probes every endpoint pair of a task, with the ping list managed
centrally by the controller.  It is the paper's comparison point in
Figures 15 and 16: correct but an order of magnitude more probes and a
round time that grows linearly in the task's endpoint count.  Two
characteristic weaknesses are modelled:

* **No rail/skeleton awareness** — the list includes every cross-rail
  pair even though training traffic never uses those paths.
* **Controller-driven activation** — the central controller refreshes
  activation on a fixed period, so containers that started *between*
  refreshes are probed before they are ready, producing startup false
  positives (the problem SkeletonHunter's data-plane registration kills).
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.container import TrainingTask
from repro.core.pinglist import PingList, ProbePair
from repro.core.probing import ProbeCostModel, estimate_round_duration
from repro.network.fabric import DataPlaneFabric
from repro.network.packet import ProbeResult

__all__ = ["PingmeshBaseline"]


class PingmeshBaseline:
    """Task-scoped full-mesh probing with periodic central activation."""

    name = "pingmesh"

    def __init__(
        self,
        task: TrainingTask,
        activation_refresh_s: float = 60.0,
        cost: Optional[ProbeCostModel] = None,
    ) -> None:
        self.task = task
        # Per-instance default (lint rule "shared-instance-default").
        self.cost = cost if cost is not None else ProbeCostModel()
        self.activation_refresh_s = activation_refresh_s
        self.ping_list = PingList.full_mesh(task.endpoints())
        self._last_refresh: Optional[float] = None

    # ------------------------------------------------------------------
    # Plan-level queries (Figures 15/16)
    # ------------------------------------------------------------------

    def probe_count(self) -> int:
        """Probes per round over the full mesh."""
        return len(self.ping_list)

    def round_duration_s(self) -> float:
        """Estimated wall-clock time of one full probing round."""
        return estimate_round_duration(self.ping_list, self.cost)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def refresh_activation(self, now: float) -> int:
        """Centrally re-sync activation with current container states.

        Returns how many containers became active in this refresh.
        Between refreshes, newly created containers are *assumed* active
        (the stale-view flaw): they get probed before their network
        stack is up.
        """
        self._last_refresh = now
        activated = 0
        for container in self.task.all_containers():
            if container.is_running:
                self.ping_list.register(container.id)
                activated += 1
            elif container.created_at is not None:
                # Stale central view: creation is visible, readiness not.
                self.ping_list.register(container.id)
                activated += 1
        return activated

    def execute_round(
        self, fabric: DataPlaneFabric, now: float, salt: int = 0
    ) -> List[ProbeResult]:
        """Probe every pair the (possibly stale) central view activated."""
        if (
            self._last_refresh is None
            or now - self._last_refresh >= self.activation_refresh_s
        ):
            self.refresh_activation(now)
        return fabric.send_probe_batch(
            self.ping_list.active_pairs(), now, salt
        )

    def startup_false_probes(self, now: float) -> List[ProbePair]:
        """Pairs currently activated whose endpoints are not RUNNING."""
        bad: List[ProbePair] = []
        for pair in self.ping_list.active_pairs():
            for endpoint in (pair.src, pair.dst):
                container = self.task.containers.get(endpoint.container)
                if container is None or not container.is_running:
                    bad.append(pair)
                    break
        return bad
