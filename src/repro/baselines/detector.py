"""deTector-style topology-aware probe planning (Peng et al., ATC 2017).

deTector reduces the probing matrix by exploiting the *topology*: it
selects a probe set that covers every physical link a task can use at
least ``coverage`` times, via a greedy set cover over candidate endpoint
pairs.  Because it knows nothing about the training workload's traffic
sparsity, it still plans an order of magnitude more probes than a traffic
skeleton does (the paper cites 15K+ probes per round at 2,048 RNICs for
deTector vs ~2.6K for SkeletonHunter).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.cluster.container import TrainingTask
from repro.cluster.identifiers import LinkId
from repro.cluster.orchestrator import Cluster
from repro.core.pinglist import PingList, PingListPhase, ProbePair
from repro.core.probing import ProbeCostModel, estimate_round_duration
from repro.network.packet import flow_hash

__all__ = ["DetectorBaseline"]


class DetectorBaseline:
    """Greedy link-cover probe planning over a task's endpoints."""

    name = "detector"

    def __init__(
        self,
        cluster: Cluster,
        task: TrainingTask,
        coverage: int = 3,
        cost: Optional[ProbeCostModel] = None,
    ) -> None:
        if coverage < 1:
            raise ValueError("coverage must be at least 1")
        self.cluster = cluster
        self.task = task
        self.coverage = coverage
        # Per-instance default (lint rule "shared-instance-default").
        self.cost = cost if cost is not None else ProbeCostModel()
        self.ping_list = self._plan()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def _candidate_pairs(self) -> List[ProbePair]:
        endpoints = self.task.endpoints()
        pairs = []
        for i, a in enumerate(endpoints):
            for b in endpoints[i + 1:]:
                if a.container != b.container:
                    pairs.append(ProbePair(a, b))
        return pairs

    def _links_of(self, pair: ProbePair) -> Set[LinkId]:
        task = self.task
        src_container = task.containers[pair.src.container]
        dst_container = task.containers[pair.dst.container]
        src_rnic = src_container.vf_of(pair.src).rnic
        dst_rnic = dst_container.vf_of(pair.dst).rnic
        path = self.cluster.topology.pick_path(
            src_rnic, dst_rnic, flow_hash(pair.src, pair.dst)
        )
        return set(path.links)

    def _plan(self) -> PingList:
        """Greedy set cover: every usable link covered ``coverage`` times.

        Uses the lazy-greedy optimization: a candidate's marginal gain
        only ever decreases as links get covered, so stale heap entries
        can be re-scored on pop instead of rescanning every candidate
        per round — which is what makes planning tractable at the
        hundred-thousand-pair scale of a 512-GPU task.
        """
        import heapq

        candidates = self._candidate_pairs()
        links_of: Dict[ProbePair, Set[LinkId]] = {
            pair: self._links_of(pair) for pair in candidates
        }
        needed: Dict[LinkId, int] = {}
        for links in links_of.values():
            for link in links:
                needed[link] = self.coverage

        def gain_of(pair: ProbePair) -> int:
            return sum(
                1 for link in links_of[pair] if needed.get(link, 0) > 0
            )

        heap = [
            (-len(links_of[pair]), index, pair)
            for index, pair in enumerate(candidates)
        ]
        heapq.heapify(heap)
        chosen: Set[ProbePair] = set()
        while heap and any(count > 0 for count in needed.values()):
            negative_gain, index, pair = heapq.heappop(heap)
            current = gain_of(pair)
            if current == 0:
                continue
            if current < -negative_gain:
                # Stale score: re-queue with the true (smaller) gain.
                heapq.heappush(heap, (-current, index, pair))
                continue
            chosen.add(pair)
            for link in links_of[pair]:
                if needed.get(link, 0) > 0:
                    needed[link] -= 1
        ping_list = PingList(pairs=chosen, phase=PingListPhase.BASIC)
        for container in self.task.all_containers():
            ping_list.register(container.id)
        return ping_list

    # ------------------------------------------------------------------
    # Plan-level queries
    # ------------------------------------------------------------------

    def probe_count(self) -> int:
        """Probes per round under the link-cover plan."""
        return len(self.ping_list)

    def round_duration_s(self) -> float:
        """Estimated wall-clock time of one probing round."""
        return estimate_round_duration(self.ping_list, self.cost)

    def covered_links(self) -> Set[LinkId]:
        """Links the plan probes at least once."""
        covered: Set[LinkId] = set()
        for pair in self.ping_list.pairs:
            covered |= self._links_of(pair)
        return covered
