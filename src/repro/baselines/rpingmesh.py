"""R-Pingmesh-style service-aware probing (Liu et al., SIGCOMM 2024).

R-Pingmesh scopes probing to a service's own endpoints (like Pingmesh)
but dedups at ToR granularity: for each ordered ToR pair the service can
communicate across, it keeps a bounded number of representative endpoint
pairs instead of the full mesh.  It is service-aware but still *traffic*
-unaware: it cannot tell which ToR pairs the training workload actually
exercises, so it probes them all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.cluster.container import TrainingTask
from repro.cluster.identifiers import SwitchId
from repro.cluster.orchestrator import Cluster
from repro.core.pinglist import PingList, PingListPhase, ProbePair
from repro.core.probing import ProbeCostModel, estimate_round_duration
from repro.network.fabric import DataPlaneFabric
from repro.network.packet import ProbeResult

__all__ = ["RPingmeshBaseline"]


class RPingmeshBaseline:
    """Per-ToR-pair representative probing within one task."""

    name = "rpingmesh"

    def __init__(
        self,
        cluster: Cluster,
        task: TrainingTask,
        pairs_per_tor_pair: int = 4,
        cost: Optional[ProbeCostModel] = None,
    ) -> None:
        if pairs_per_tor_pair < 1:
            raise ValueError("need at least one pair per ToR pair")
        self.cluster = cluster
        self.task = task
        self.pairs_per_tor_pair = pairs_per_tor_pair
        # Per-instance default (lint rule "shared-instance-default").
        self.cost = cost if cost is not None else ProbeCostModel()
        self.ping_list = self._plan()

    def _tor_of(self, endpoint) -> SwitchId:
        container = self.task.containers[endpoint.container]
        rnic = container.vf_of(endpoint).rnic
        return self.cluster.topology.tor_of(rnic)

    def _plan(self) -> PingList:
        endpoints = self.task.endpoints()
        buckets: Dict[Tuple[SwitchId, SwitchId], List[ProbePair]] = {}
        for i, a in enumerate(endpoints):
            for b in endpoints[i + 1:]:
                if a.container == b.container:
                    continue
                key = tuple(sorted((self._tor_of(a), self._tor_of(b))))
                bucket = buckets.setdefault(key, [])
                if len(bucket) < self.pairs_per_tor_pair:
                    bucket.append(ProbePair(a, b))
        pairs = {pair for bucket in buckets.values() for pair in bucket}
        ping_list = PingList(pairs=pairs, phase=PingListPhase.BASIC)
        for container in self.task.all_containers():
            ping_list.register(container.id)
        return ping_list

    def probe_count(self) -> int:
        """Probes per round under the ToR-pair plan."""
        return len(self.ping_list)

    def execute_round(
        self, fabric: DataPlaneFabric, now: float, salt: int = 0
    ) -> List[ProbeResult]:
        """Probe every active representative pair in one batch."""
        return fabric.send_probe_batch(
            self.ping_list.active_pairs(), now, salt
        )

    def round_duration_s(self) -> float:
        """Estimated wall-clock time of one probing round."""
        return estimate_round_duration(self.ping_list, self.cost)
