"""Baselines SkeletonHunter is compared against in the paper."""

from repro.baselines.detector import DetectorBaseline
from repro.baselines.flock import FlockLocalizer
from repro.baselines.pingmesh import PingmeshBaseline
from repro.baselines.rpingmesh import RPingmeshBaseline

__all__ = [
    "DetectorBaseline",
    "FlockLocalizer",
    "PingmeshBaseline",
    "RPingmeshBaseline",
]
