"""The keyed-draw contract: where taint may not go, checked whole-program.

The repo's reproducibility guarantees name two code invariants:

1. **Sink protection** — monitor-plane state that feeds verdicts
   (fabric, analyzer/detector/localizer, bus recorder payloads, shard
   worker results) must never absorb a tainted value.  A
   ``time.time()`` laundered through three helpers into
   ``Analyzer`` state breaks replay bit-exactness just as surely as a
   direct call — and is exactly what per-line linting cannot see.

2. **The keyed-draw contract** — every stochastic value consumed in
   ``network/``, ``chaos/``, and ``workloads/`` must be derivable from
   ``keyed_uniform``/``keyed_uniforms``/``PairwiseDrawSource`` or the
   seeded ``sim.rng`` streams.  Any other randomness in those layers
   makes probe outcomes depend on call order, shard assignment, or the
   process they ran in.

Both checks consume the :class:`~repro.verify.taint.TaintAnalyzer`'s
summaries and report :class:`~repro.verify.framework.Finding`\\ s whose
evidence chain prints the full source→sink call path.  Findings
deduplicate per source site: the function *closest* to where the
nondeterminism enters is blamed, not every caller above it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.verify.callgraph import CallGraph
from repro.verify.framework import Finding, PassResult, Severity
from repro.verify.taint import (
    FunctionSummary,
    Taint,
    TaintAnalyzer,
    TaintValue,
)

__all__ = ["ContractChecker", "ContractConfig", "FLOW_SINKS"]

#: Module suffix -> what kind of state lives there.  A tainted value
#: reaching any of these is a ``flow.taint-to-sink`` finding.
FLOW_SINKS: Dict[str, str] = {
    "network.fabric": "fabric state",
    "core.analyzer": "analyzer state",
    "core.detection": "detector state",
    "core.localization": "localizer state",
    "core.tomography": "localizer state",
    "core.system": "monitor-plane state",
    "bus.recorder": "bus recorder payloads",
    "bus.codec": "bus recorder payloads",
    "shard.monitor": "shard worker results",
    "shard.coordinator": "shard worker results",
    "fleet.budget": "fleet scheduler state",
    "fleet.lifecycle": "fleet scheduler state",
    "fleet.controller": "fleet scheduler state",
    "fleet.coordinator": "fleet scheduler state",
}

#: Module fragments under the keyed-draw contract: randomness here must
#: be keyed.
_CONTRACT_FRAGMENTS = (".network.", ".chaos.", ".workloads.")


@dataclass
class ContractConfig:
    """Which modules are sinks and which fall under the contract."""

    sinks: Dict[str, str] = field(
        default_factory=lambda: dict(FLOW_SINKS)
    )
    contract_fragments: Tuple[str, ...] = _CONTRACT_FRAGMENTS

    def sink_label(self, module: str) -> Optional[str]:
        for suffix, label in self.sinks.items():
            if module == suffix or module.endswith("." + suffix):
                return label
        return None

    def in_contract_scope(self, module: str) -> bool:
        padded = f".{module}."
        return any(f in padded for f in self.contract_fragments)


class ContractChecker:
    """Folds taint summaries into findings."""

    def __init__(
        self,
        graph: CallGraph,
        analyzer: TaintAnalyzer,
        config: Optional[ContractConfig] = None,
    ) -> None:
        self.graph = graph
        self.analyzer = analyzer
        self.config = config or ContractConfig()

    # -- entry ----------------------------------------------------------

    def run(self) -> Tuple[PassResult, PassResult]:
        """The two pass results: sink protection, keyed-draw contract."""
        sink_result = PassResult(name="flow.taint-to-sink")
        contract_result = PassResult(name="flow.keyed-draw-contract")
        sink_candidates: List[Finding] = []
        contract_candidates: List[Finding] = []
        for fid in sorted(self.graph.functions):
            info = self.graph.functions[fid]
            summary = self.analyzer.summary_of(fid)
            sink_label = self.config.sink_label(info.module)
            if sink_label is not None:
                sink_result.checked += 1
                sink_candidates.extend(
                    self._sink_findings(info, summary, sink_label)
                )
            if self.config.in_contract_scope(info.module):
                contract_result.checked += 1
                contract_candidates.extend(
                    self._contract_findings(info, summary)
                )
        sink_result.findings = _dedupe_per_source(sink_candidates)
        contract_result.findings = _dedupe_per_source(contract_candidates)
        return sink_result, contract_result

    # -- finding construction -------------------------------------------

    def _sink_findings(
        self, info, summary: FunctionSummary, sink_label: str
    ) -> List[Finding]:
        findings = []
        if summary.state.taint is Taint.TAINTED:
            findings.append(self._finding(
                check="flow.taint-to-sink",
                info=info,
                value=summary.state,
                explanation=(
                    f"a {summary.state.kind or 'tainted'} value reaches "
                    f"{sink_label} through {info.label()}"
                ),
            ))
        if summary.returns.taint is Taint.TAINTED:
            findings.append(self._finding(
                check="flow.taint-to-sink",
                info=info,
                value=summary.returns,
                explanation=(
                    f"{info.label()} returns a "
                    f"{summary.returns.kind or 'tainted'} value into "
                    f"{sink_label}"
                ),
            ))
        return findings

    def _contract_findings(
        self, info, summary: FunctionSummary
    ) -> List[Finding]:
        findings = []
        for value, consumed in (
            (summary.returns, "returns"),
            (summary.state, "stores"),
        ):
            if value.taint is Taint.TAINTED:
                findings.append(self._finding(
                    check="flow.keyed-draw-contract",
                    info=info,
                    value=value,
                    explanation=(
                        f"{info.label()} {consumed} a "
                        f"{value.kind or 'tainted'} value; stochastic "
                        "values here must derive from keyed_uniform/"
                        "PairwiseDrawSource/sim.rng"
                    ),
                ))
        return findings

    def _finding(
        self, check: str, info, value: TaintValue, explanation: str
    ) -> Finding:
        details = ["source -> sink call path:"]
        # The chain is stored sink-first; print source-first so the
        # evidence reads as a flow.
        for step in reversed(value.chain):
            details.append(f"  {step.format()}")
        details.append(
            f"  {info.path}:{info.lineno}: surfaces in {info.label()} "
            f"({check.rsplit('.', 1)[-1]})"
        )
        return Finding(
            check=check,
            severity=Severity.ERROR,
            component=info.label(),
            explanation=explanation,
            details=tuple(details),
        )


def _dedupe_per_source(candidates: List[Finding]) -> List[Finding]:
    """Keep one finding per source site: the shortest chain wins.

    Taint propagates to every caller above the entry point, so a
    single stray ``time.time()`` would otherwise blame half the call
    graph.  The source site is the first step of the evidence chain;
    the finding with the fewest hops is the closest consumer and the
    most actionable report.
    """
    by_source: Dict[str, Finding] = {}
    order: List[str] = []
    for finding in candidates:
        chain = [d for d in finding.details if d.startswith("  ")]
        source = chain[0] if chain else finding.component
        key = f"{finding.check}|{source}"
        held = by_source.get(key)
        if held is None:
            by_source[key] = finding
            order.append(key)
        elif len(finding.details) < len(held.details):
            by_source[key] = finding
    return [by_source[key] for key in order]
