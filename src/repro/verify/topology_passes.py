"""Topology passes: the rail-optimized wiring invariants.

The ping-list preload (§5.1) drops every cross-rail pair because
rail-optimized wiring guarantees same-rail traffic never leaves its
rail's ToR/spine plane, and tomography (§5.3) assumes all ECMP paths of
a pair are interchangeable.  Both assumptions are *structural*: a single
miswired RNIC→ToR link or an asymmetric spine fan-out silently breaks
coverage and voting.  These passes check the constructed topology
object itself, before any probe depends on it.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import networkx as nx

from repro.cluster.identifiers import RnicId, SwitchId
from repro.cluster.topology import TopologyError
from repro.verify.framework import (
    PassResult,
    VerificationContext,
    VerificationPass,
)

__all__ = [
    "ConnectivityPass",
    "EcmpEquivalencePass",
    "RailWiringPass",
    "SpineFanoutPass",
]

# Verifying ECMP equivalence over every RNIC pair is O(N^2); beyond this
# many pairs the pass falls back to a deterministic stride sample.
_MAX_ECMP_PAIRS = 2048


class RailWiringPass(VerificationPass):
    """Every RNIC attaches to the ToR of its (segment, rail) — and the
    grouping is symmetric: one ToR per (segment, rail), one rail and one
    segment per ToR, every host of the segment present."""

    name = "topology.rail_wiring"

    def run(self, context: VerificationContext) -> PassResult:
        topology = context.topology
        if not getattr(topology, "is_rail_optimized", True):
            return self.skip(
                "fabric is not rail-optimized; rail wiring invariants "
                "do not apply"
            )
        result = self.result()
        by_tor: Dict[SwitchId, List[RnicId]] = {}
        for rnic in topology.all_rnics():
            result.checked += 1
            try:
                tor = topology.tor_of(rnic)
            except TopologyError as error:
                self.finding(
                    result, rnic,
                    "RNIC has no ToR switch",
                    details=[f"tor_of raised: {error}"],
                )
                continue
            if tor.tier != "tor":
                self.finding(
                    result, rnic,
                    f"RNIC attaches to non-ToR device {tor}",
                    details=[f"expected tier 'tor', got '{tor.tier}'"],
                )
                continue
            if not topology.has_link(_link_between(rnic, tor)):
                self.finding(
                    result, rnic,
                    f"RNIC claims ToR {tor} but the access link is "
                    "missing from the fabric",
                    details=[f"no physical link {rnic}<->{tor}"],
                )
            by_tor.setdefault(tor, []).append(rnic)

        for tor, rnics in sorted(by_tor.items()):
            rails = {r.rail for r in rnics}
            segments = {topology.segment_of(r.host) for r in rnics}
            if len(rails) > 1:
                self.finding(
                    result, tor,
                    "ToR serves RNICs from multiple rails "
                    "(rail wiring asymmetric)",
                    details=[
                        f"rails seen: {sorted(rails)}",
                        *(f"{r} (rail {r.rail})" for r in sorted(rnics)),
                    ],
                )
            if len(segments) > 1:
                self.finding(
                    result, tor,
                    "ToR serves RNICs from multiple segments",
                    details=[f"segments seen: {sorted(segments)}"],
                )
            if len(rails) == 1 and len(segments) == 1 and (
                len(rnics) != topology.hosts_per_segment
            ):
                self.finding(
                    result, tor,
                    f"ToR serves {len(rnics)} RNICs, expected one per "
                    f"host of the segment "
                    f"({topology.hosts_per_segment})",
                    details=[str(r) for r in sorted(rnics)],
                )
        return result


class SpineFanoutPass(VerificationPass):
    """Every ToR uplinks to every spine, uniformly, and the fabric holds
    no links beyond access + uplink (ECMP width identical everywhere)."""

    name = "topology.spine_fanout"

    def run(self, context: VerificationContext) -> PassResult:
        topology = context.topology
        if not getattr(topology, "is_rail_optimized", True):
            return self.skip(
                "fabric is not rail-optimized; uniform rail-plane "
                "fan-out does not apply"
            )
        result = self.result()
        spines = {str(s) for s in topology.spines}
        for tor in topology.tors():
            result.checked += 1
            missing = [
                spine for spine in topology.spines
                if not topology.has_link(_link_between(tor, spine))
            ]
            if missing:
                self.finding(
                    result, tor,
                    f"ToR is missing {len(missing)} of "
                    f"{topology.num_spines} spine uplinks "
                    "(ECMP fan-out non-uniform)",
                    details=[f"no uplink to {s}" for s in missing],
                )
        expected = (
            topology.num_rnics
            + len(topology.tors()) * topology.num_spines
        )
        actual = len(topology.links())
        if actual != expected:
            self.finding(
                result, "fabric",
                f"fabric has {actual} links, wiring plan implies "
                f"{expected} (access + uniform uplinks)",
                details=[
                    f"{topology.num_rnics} RNIC access links",
                    f"{len(topology.tors())} ToRs x "
                    f"{topology.num_spines} spines uplinks",
                ],
            )
        tor_names = {str(t) for t in topology.tors()}
        rnic_names = {str(r) for r in topology.all_rnics()}
        known = tor_names | rnic_names | spines
        for link in topology.links():
            if link.a not in known or link.b not in known:
                stranger = link.a if link.a not in known else link.b
                self.finding(
                    result, stranger,
                    f"link {link} touches a device the topology does "
                    "not enumerate",
                )
        return result


class EcmpEquivalencePass(VerificationPass):
    """``ecmp_paths`` returns equal-hop, deterministic, fabric-valid
    path sets of the expected width for every (sampled) RNIC pair."""

    name = "topology.ecmp"

    def run(self, context: VerificationContext) -> PassResult:
        result = self.result()
        topology = context.topology
        for src, dst in self._pairs(topology):
            result.checked += 1
            first = topology.ecmp_paths(src, dst)
            if not first:
                self.finding(
                    result, src,
                    f"no ECMP path from {src} to {dst}",
                )
                continue
            second = topology.ecmp_paths(src, dst)
            if [p.devices for p in first] != [p.devices for p in second]:
                self.finding(
                    result, src,
                    f"ecmp_paths({src}, {dst}) is non-deterministic "
                    "(two calls returned different orders)",
                    details=[
                        "flow pinning via pick_path depends on a "
                        "stable path order",
                    ],
                )
            hops = {p.hops for p in first}
            if len(hops) > 1:
                self.finding(
                    result, src,
                    f"ECMP paths {src}->{dst} have unequal hop counts "
                    f"{sorted(hops)} (paths are not equal-cost)",
                    details=[
                        f"{'-'.join(p.devices)} ({p.hops} hops)"
                        for p in first
                    ],
                )
            expected = self._expected_width(topology, src, dst)
            if expected is not None and len(first) != expected:
                self.finding(
                    result, src,
                    f"{len(first)} ECMP paths {src}->{dst}, expected "
                    f"{expected}",
                )
            for path in first:
                if path.devices[0] != str(src) or (
                    path.devices[-1] != str(dst)
                ):
                    self.finding(
                        result, src,
                        f"path endpoints {path.devices[0]}..."
                        f"{path.devices[-1]} do not match the pair "
                        f"{src}->{dst}",
                    )
                bad = [
                    link for link in path.links
                    if not topology.has_link(link)
                ]
                for link in bad:
                    self.finding(
                        result, str(link),
                        f"ECMP path {src}->{dst} crosses a link that "
                        "does not exist in the fabric",
                        details=[f"path: {'-'.join(path.devices)}"],
                    )
        return result

    @staticmethod
    def _expected_width(topology, src: RnicId, dst: RnicId):
        try:
            src_tor = topology.tor_of(src)
            dst_tor = topology.tor_of(dst)
        except TopologyError:
            return None  # RailWiringPass already reports this
        if src_tor == dst_tor:
            return 1
        return topology.num_spines

    @staticmethod
    def _pairs(topology) -> List[Tuple[RnicId, RnicId]]:
        """Deterministic pair sample: every same-rail pair (what probes
        actually ride) plus a cross-rail stride sample."""
        rnics = topology.all_rnics()
        by_rail: Dict[int, List[RnicId]] = {}
        for rnic in rnics:
            by_rail.setdefault(rnic.rail, []).append(rnic)
        pairs: List[Tuple[RnicId, RnicId]] = []
        for rail_rnics in by_rail.values():
            for i in range(len(rail_rnics)):
                for j in range(i + 1, len(rail_rnics)):
                    pairs.append((rail_rnics[i], rail_rnics[j]))
        # Cross-rail spot checks (NCCL avoids these, but pick_path must
        # still be well-defined for them).
        for index in range(0, len(rnics) - 1, max(1, len(rnics) // 8)):
            pairs.append((rnics[index], rnics[index + 1]))
        if len(pairs) > _MAX_ECMP_PAIRS:
            stride = len(pairs) // _MAX_ECMP_PAIRS + 1
            pairs = pairs[::stride]
        return pairs


class ConnectivityPass(VerificationPass):
    """``graph()`` is one connected component with the degrees the
    two-tier Clos plan implies."""

    name = "topology.connectivity"

    def run(self, context: VerificationContext) -> PassResult:
        result = self.result()
        topology = context.topology
        graph = topology.graph()
        result.checked = graph.number_of_nodes()
        names = set(topology.device_names())
        if set(graph.nodes) != names:
            extra = sorted(set(graph.nodes) - names)
            missing = sorted(names - set(graph.nodes))
            self.finding(
                result, "fabric",
                "graph() nodes disagree with device_names()",
                details=[
                    *(f"graph-only node: {n}" for n in extra),
                    *(f"missing node: {n}" for n in missing),
                ],
            )
        if graph.number_of_nodes() and not nx.is_connected(graph):
            components = sorted(
                nx.connected_components(graph), key=len
            )
            for island in components[:-1]:
                sample = sorted(island)
                self.finding(
                    result, sample[0],
                    f"fabric is partitioned: {len(island)} device(s) "
                    "unreachable from the main component",
                    details=[str(n) for n in sample[:8]],
                )
        degrees = dict(graph.degree())
        for rnic in topology.all_rnics():
            if degrees.get(str(rnic), 0) != 1:
                self.finding(
                    result, rnic,
                    f"RNIC has degree {degrees.get(str(rnic), 0)}, "
                    "expected exactly 1 (its ToR access link)",
                )
        # Uniform wirings put the same number of access links on every
        # ToR; deriving it from totals keeps the check valid for both
        # rail-optimized (one RNIC per segment host) and fat-tree (every
        # RNIC of every segment host) fabrics.
        num_tors_total = max(1, len(topology.tors()))
        expected_tor = (
            topology.num_rnics // num_tors_total + topology.num_spines
        )
        for tor in topology.tors():
            if degrees.get(str(tor), 0) != expected_tor:
                self.finding(
                    result, tor,
                    f"ToR has degree {degrees.get(str(tor), 0)}, "
                    f"expected {expected_tor} "
                    "(access links + spine uplinks)",
                )
        num_tors = len(topology.tors())
        for spine in topology.spines:
            if degrees.get(str(spine), 0) != num_tors:
                self.finding(
                    result, spine,
                    f"spine has degree {degrees.get(str(spine), 0)}, "
                    f"expected {num_tors} (one downlink per ToR)",
                )
        return result


def _link_between(a: object, b: object):
    from repro.cluster.identifiers import LinkId

    return LinkId.between(a, b)
