"""Skeleton passes: the ping list still covers what training traverses.

Skeleton-based probing is a bet: probe only the pairs the traffic
skeleton says matter, and a failure anywhere training communicates will
still be seen (§5.1).  The bet is lost silently if the inferred
skeleton misses a traffic edge, or if a probe pair targets an endpoint
whose RNIC does not actually exist.  These passes audit that bet
against the ground-truth traffic edges the workload's parallelism
configuration implies.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.cluster.identifiers import EndpointId
from repro.cluster.overlay import OverlayError
from repro.cluster.topology import TopologyError
from repro.verify.framework import (
    PassResult,
    Severity,
    VerificationContext,
    VerificationPass,
)

__all__ = ["ProbeTargetPass", "SkeletonCoveragePass"]


def _pair_label(a: EndpointId, b: EndpointId) -> str:
    first, second = sorted((a, b))
    return f"{first}<->{second}"


class ProbeTargetPass(VerificationPass):
    """Every probe pair in every monitored ping list addresses real
    endpoints backed by real RNICs."""

    name = "skeleton.probe_targets"

    def run(self, context: VerificationContext) -> PassResult:
        hunter = context.hunter
        if hunter is None:
            return self.skip("no SkeletonHunter in context")
        result = self.result()
        cluster = context.cluster
        for task_id in hunter.controller.monitored_tasks():
            task = hunter.orchestrator.tasks.get(task_id)
            ping_list = hunter.controller.ping_list_of(task_id)
            for pair in sorted(ping_list.pairs):
                result.checked += 1
                for endpoint in (pair.src, pair.dst):
                    self._check_endpoint(
                        result, context, task, endpoint
                    )
                if pair.src == pair.dst:
                    self.finding(
                        result, pair.src,
                        "degenerate probe pair: source equals "
                        "destination",
                    )
            # Active pairs additionally resolve through the overlay.
            for pair in ping_list.active_pairs():
                for endpoint in (pair.src, pair.dst):
                    try:
                        rnic = cluster.overlay.rnic_of(endpoint)
                    except OverlayError:
                        self.finding(
                            result, endpoint,
                            "active probe endpoint is not attached "
                            "to the overlay",
                        )
                        continue
                    try:
                        context.topology.tor_of(rnic)
                    except TopologyError:
                        self.finding(
                            result, rnic,
                            f"probe pair {_pair_label(pair.src, pair.dst)} "
                            "targets an RNIC absent from the physical "
                            "topology",
                        )
        return result

    def _check_endpoint(self, result, context, task, endpoint) -> None:
        if task is None:
            self.finding(
                result, endpoint,
                "probe pair belongs to a task the orchestrator does "
                "not know",
            )
            return
        container = task.containers.get(endpoint.container)
        if container is None:
            self.finding(
                result, endpoint,
                f"probe endpoint names container {endpoint.container}, "
                "which the task never placed",
            )
            return
        if not 0 <= endpoint.slot < task.gpus_per_container:
            self.finding(
                result, endpoint,
                f"probe endpoint slot {endpoint.slot} exceeds the "
                f"container's {task.gpus_per_container} RNIC "
                "bindings",
            )


class SkeletonCoveragePass(VerificationPass):
    """The current ping list (and the inferred skeleton, once applied)
    covers every network edge the workload's traffic actually uses."""

    name = "skeleton.coverage"

    def run(self, context: VerificationContext) -> PassResult:
        hunter = context.hunter
        workload = context.workload
        if hunter is None:
            return self.skip("no SkeletonHunter in context")
        if workload is None:
            return self.skip("no workload in context")
        from repro.training.collectives import traffic_edges

        result = self.result()
        task_id = workload.task.id
        if task_id not in hunter.controller.monitored_tasks():
            return self.skip(f"{task_id} is not monitored")
        true_edges = traffic_edges(workload)
        ping_list = hunter.controller.ping_list_of(task_id)
        covered: Set[FrozenSet[EndpointId]] = {
            frozenset((pair.src, pair.dst)) for pair in ping_list.pairs
        }
        for edge in sorted(true_edges, key=sorted):
            result.checked += 1
            if edge not in covered:
                a, b = sorted(edge)
                self.finding(
                    result, _pair_label(a, b),
                    f"traffic edge {_pair_label(a, b)} is not in the "
                    f"{ping_list.phase} ping list: a failure on it "
                    "would go unprobed",
                    details=[
                        f"ping list holds {len(ping_list.pairs)} "
                        f"pairs covering {len(covered & true_edges)} "
                        f"of {len(true_edges)} traffic edges",
                    ],
                )
        skeleton = hunter.controller.skeleton_of(task_id)
        if skeleton is not None:
            missing = true_edges - skeleton.edges
            for edge in sorted(missing, key=sorted):
                a, b = sorted(edge)
                self.finding(
                    result, _pair_label(a, b),
                    "inferred skeleton misses this traffic edge "
                    f"(coverage {skeleton.coverage(true_edges):.1%})",
                    severity=Severity.WARNING,
                )
        return result
