"""A module-level call graph over a python package, built from source.

The flow analyzer (:mod:`repro.verify.flow`) needs to chase a value
through *calls*: a ``time.time()`` three helpers deep is invisible to
per-line linting but lands in an analyzer verdict all the same.  This
module builds the call graph that makes such chains walkable — purely
syntactically, without importing the code under analysis.

Resolved constructs:

* plain calls to module-level functions, in-module or across modules
  (via the shared :class:`~repro.verify.resolver.ImportTable`);
* method calls through ``self.``/``cls.``, following base classes
  declared in the package (including across modules);
* ``super().method()`` against the declaring class's bases;
* constructor calls ``ClassName(...)`` (edge to ``__init__`` when one
  is defined);
* method calls on locals with an inferable class — ``x = Foo()`` or a
  parameter annotated ``x: Foo``;
* lambdas bound to a name (``f = lambda ...``), treated as functions;
* functions passed *as values* — decorator applications,
  ``functools.partial(fn, ...)``, ``Process(target=fn)``, pool
  ``map(fn, ...)`` and friends — recorded as ``ref`` edges, because a
  function that escapes into a worker is called even though no call
  expression names it.

Resolution is best-effort and under-approximate by design: an edge the
builder cannot prove is recorded with ``callee=None`` and the spelled
target, never guessed.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.verify.resolver import ImportTable, dotted_name

__all__ = [
    "CallEdge",
    "CallGraph",
    "CallGraphBuilder",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
]

#: Pool-style dispatch methods whose first argument escapes as a worker.
_DISPATCH_METHODS = (
    "map", "map_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "apply", "apply_async", "submit",
)


@dataclass
class FunctionInfo:
    """One function (or method, or named lambda) in the package."""

    fid: str                      # "pkg.module:Qual.name"
    module: str
    qualname: str
    name: str
    path: str
    lineno: int
    node: ast.AST
    class_name: Optional[str] = None   # canonical "pkg.module.Class"

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def label(self) -> str:
        """The display form used in evidence chains."""
        return f"{self.module}.{self.qualname}"


@dataclass
class ClassInfo:
    """One class definition and its (spelled) bases."""

    canonical: str                # "pkg.module.Class"
    module: str
    name: str
    lineno: int
    bases: Tuple[str, ...] = ()   # canonical-resolved base names
    methods: Dict[str, str] = field(default_factory=dict)  # name -> fid


@dataclass
class ModuleInfo:
    """One parsed module: tree plus its import table."""

    name: str
    path: str
    tree: ast.AST
    imports: ImportTable


@dataclass(frozen=True)
class CallEdge:
    """One resolved (or recorded-unresolved) call relationship."""

    caller: str                   # fid of the calling function
    callee: Optional[str]         # fid when resolved inside the package
    target: str                   # canonical dotted name as resolved
    lineno: int
    kind: str = "call"            # call | ref | decorator | super

    def resolved(self) -> bool:
        return self.callee is not None


class CallGraph:
    """The built graph: functions, classes, modules, and edges."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.modules: Dict[str, ModuleInfo] = {}
        self.edges: List[CallEdge] = []
        self._by_caller: Dict[str, List[CallEdge]] = {}
        #: Per-call-site resolution, keyed by ``id(ast.Call node)`` —
        #: the taint pass walks the same retained trees and looks its
        #: call expressions up here instead of re-resolving names.
        self.call_targets: Dict[int, Tuple[Optional[str], str]] = {}

    def add_edge(self, edge: CallEdge) -> None:
        self.edges.append(edge)
        self._by_caller.setdefault(edge.caller, []).append(edge)

    def edges_from(self, fid: str) -> List[CallEdge]:
        """Outgoing edges of one function."""
        return self._by_caller.get(fid, [])

    def module_fid(self, module: str) -> str:
        """The pseudo-function holding a module's top-level statements."""
        return f"{module}:<module>"

    def function_for(self, canonical: str) -> Optional[str]:
        """The fid for a canonical dotted path, if it names a function
        or method defined in the package."""
        # Longest module prefix wins: "pkg.mod.Class.meth" splits into
        # module "pkg.mod" and qualname "Class.meth".
        parts = canonical.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module in self.modules:
                qualname = ".".join(parts[split:])
                fid = f"{module}:{qualname}"
                if fid in self.functions:
                    return fid
                return None
        return None

    def class_for(self, canonical: str) -> Optional[ClassInfo]:
        """The class a canonical dotted path names, if any."""
        return self.classes.get(canonical)

    def method_on(self, canonical_class: str, name: str,
                  _seen: Optional[set] = None) -> Optional[str]:
        """Resolve ``name`` on a class or its package-local ancestors."""
        seen = _seen if _seen is not None else set()
        if canonical_class in seen:
            return None
        seen.add(canonical_class)
        info = self.classes.get(canonical_class)
        if info is None:
            return None
        fid = info.methods.get(name)
        if fid is not None:
            return fid
        for base in info.bases:
            found = self.method_on(base, name, seen)
            if found is not None:
                return found
        return None


class CallGraphBuilder:
    """Parses modules and assembles a :class:`CallGraph`."""

    def __init__(self) -> None:
        self.graph = CallGraph()
        self._pending: List[ModuleInfo] = []

    # -- input ----------------------------------------------------------

    def add_source(self, module: str, source: str, path: str = "") -> None:
        """Queue one module's source text under a dotted module name."""
        tree = ast.parse(source, filename=path or module)
        info = ModuleInfo(
            name=module, path=path or module, tree=tree,
            imports=ImportTable.from_tree(tree),
        )
        self.graph.modules[module] = info
        self._pending.append(info)

    def add_package(self, root: str, package: Optional[str] = None) -> int:
        """Queue every ``.py`` file under ``root``; returns the count.

        ``package`` defaults to the directory's basename, so pointing
        at ``src/repro`` yields module names ``repro.network.fabric``
        and so on — matching how the package imports itself.
        """
        root = os.path.abspath(root)
        package = package or os.path.basename(root.rstrip(os.sep))
        count = 0
        for directory, dirs, names in os.walk(root):
            dirs.sort()     # os.walk order is filesystem-dependent
            for name in sorted(names):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(directory, name)
                relative = os.path.relpath(path, root)
                parts = relative[:-3].replace(os.sep, "/").split("/")
                if parts[-1] == "__init__":
                    parts = parts[:-1]
                module = ".".join([package] + [p for p in parts if p])
                with open(path, "r", encoding="utf-8") as handle:
                    self.add_source(module, handle.read(), path)
                count += 1
        return count

    # -- build ----------------------------------------------------------

    def build(self) -> CallGraph:
        """Collect definitions, then resolve calls, then return."""
        for info in self._pending:
            self._collect_definitions(info)
        self._resolve_bases()
        for info in self._pending:
            self._collect_calls(info)
        self._pending = []
        return self.graph

    # -- pass 1: definitions --------------------------------------------

    def _collect_definitions(self, module: ModuleInfo) -> None:
        self._walk_scope(module, module.tree, qual=(), class_ctx=None)

    def _walk_scope(
        self,
        module: ModuleInfo,
        node: ast.AST,
        qual: Tuple[str, ...],
        class_ctx: Optional[str],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._define_function(module, child, qual, class_ctx)
            elif isinstance(child, ast.ClassDef):
                self._define_class(module, child, qual)
            elif isinstance(child, ast.Assign):
                self._maybe_named_lambda(module, child, qual, class_ctx)

    def _define_function(
        self,
        module: ModuleInfo,
        node: ast.AST,
        qual: Tuple[str, ...],
        class_ctx: Optional[str],
    ) -> None:
        name = node.name  # type: ignore[attr-defined]
        qualname = ".".join(qual + (name,))
        fid = f"{module.name}:{qualname}"
        info = FunctionInfo(
            fid=fid, module=module.name, qualname=qualname, name=name,
            path=module.path, lineno=node.lineno, node=node,
            class_name=class_ctx,
        )
        self.graph.functions[fid] = info
        if class_ctx is not None:
            self.graph.classes[class_ctx].methods.setdefault(name, fid)
        # Nested defs are functions of their own (class context does not
        # survive into a method's local functions).
        self._walk_scope(module, node, qual + (name,), class_ctx=None)

    def _define_class(
        self, module: ModuleInfo, node: ast.ClassDef,
        qual: Tuple[str, ...],
    ) -> None:
        qualname = ".".join(qual + (node.name,))
        canonical = f"{module.name}.{qualname}"
        spelled_bases = tuple(
            spelled for spelled in (dotted_name(b) for b in node.bases)
            if spelled is not None
        )
        self.graph.classes[canonical] = ClassInfo(
            canonical=canonical, module=module.name, name=node.name,
            lineno=node.lineno, bases=spelled_bases,
        )
        self._walk_scope(
            module, node, qual + (node.name,), class_ctx=canonical
        )

    def _maybe_named_lambda(
        self,
        module: ModuleInfo,
        node: ast.Assign,
        qual: Tuple[str, ...],
        class_ctx: Optional[str],
    ) -> None:
        if not isinstance(node.value, ast.Lambda):
            return
        if len(node.targets) != 1 or not isinstance(
            node.targets[0], ast.Name
        ):
            return
        name = node.targets[0].id
        qualname = ".".join(qual + (name,))
        fid = f"{module.name}:{qualname}"
        self.graph.functions[fid] = FunctionInfo(
            fid=fid, module=module.name, qualname=qualname, name=name,
            path=module.path, lineno=node.lineno, node=node.value,
            class_name=class_ctx,
        )
        if class_ctx is not None:
            self.graph.classes[class_ctx].methods.setdefault(name, fid)

    def _resolve_bases(self) -> None:
        """Rewrite spelled base names to canonical class names."""
        for info in self.graph.classes.values():
            module = self.graph.modules[info.module]
            resolved = []
            for spelled in info.bases:
                canonical = self._canonical_class(module, spelled)
                if canonical is not None:
                    resolved.append(canonical)
            info.bases = tuple(resolved)

    def _canonical_class(
        self, module: ModuleInfo, spelled: str
    ) -> Optional[str]:
        # Same module first, then the import table.
        local = f"{module.name}.{spelled}"
        if local in self.graph.classes:
            return local
        canonical = module.imports.resolve(spelled)
        if canonical in self.graph.classes:
            return canonical
        return None

    # -- pass 2: calls --------------------------------------------------

    def _collect_calls(self, module: ModuleInfo) -> None:
        collector = _CallCollector(self, module)
        collector.run()


class _CallCollector:
    """Resolves the call/ref edges of one module."""

    def __init__(
        self, builder: CallGraphBuilder, module: ModuleInfo
    ) -> None:
        self.builder = builder
        self.graph = builder.graph
        self.module = module

    def run(self) -> None:
        module_fid = self.graph.module_fid(self.module.name)
        self._scan_body(
            self.module.tree, caller=module_fid, function=None
        )
        for fid, info in list(self.graph.functions.items()):
            if info.module != self.module.name:
                continue
            self._scan_function(info)

    # -- scanning -------------------------------------------------------

    def _scan_function(self, info: FunctionInfo) -> None:
        local_types = _infer_local_types(
            info, self.module, self.graph
        )
        if isinstance(info.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in info.node.decorator_list:
                self._edge_for_decorator(info, decorator)
            body: Sequence[ast.AST] = info.node.body
        else:  # a named lambda
            body = [info.node.body]  # type: ignore[attr-defined]
        for stmt in body:
            self._scan_body(stmt, caller=info.fid, function=info,
                            local_types=local_types, include_self=True)

    def _scan_body(
        self,
        node: ast.AST,
        caller: str,
        function: Optional[FunctionInfo],
        local_types: Optional[Dict[str, str]] = None,
        include_self: bool = False,
    ) -> None:
        """Walk one scope's statements, stopping at nested defs."""
        stack = [node] if include_self or not isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef,
                   ast.Lambda)
        ) else []
        while stack:
            current = stack.pop()
            if isinstance(current, ast.Call):
                self._edges_for_call(
                    current, caller, function, local_types or {}
                )
            for child in ast.iter_child_nodes(current):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef,
                     ast.ClassDef, ast.Lambda),
                ):
                    continue  # nested scopes are their own callers
                stack.append(child)

    # -- edge construction ----------------------------------------------

    def _add(self, caller: str, callee: Optional[str], target: str,
             lineno: int, kind: str = "call") -> None:
        self.graph.add_edge(CallEdge(
            caller=caller, callee=callee, target=target,
            lineno=lineno, kind=kind,
        ))

    def _edge_for_decorator(
        self, info: FunctionInfo, decorator: ast.AST
    ) -> None:
        # ``@deco(arg)`` applies the *result* of a call; the decorator
        # name is the call's func.
        node = decorator.func if isinstance(
            decorator, ast.Call
        ) else decorator
        resolved = self._resolve_callable(node, info, {})
        if resolved is None:
            return
        callee, target = resolved
        self._add(info.fid, callee, target, decorator.lineno,
                  kind="decorator")

    def _edges_for_call(
        self,
        node: ast.Call,
        caller: str,
        function: Optional[FunctionInfo],
        local_types: Dict[str, str],
    ) -> None:
        resolved = self._resolve_callable(node.func, function, local_types)
        if resolved is not None:
            callee, target = resolved
            kind = "super" if _is_super_call(node.func) else "call"
            self._add(caller, callee, target, node.lineno, kind=kind)
            self.graph.call_targets[id(node)] = (callee, target)
            spelled = dotted_name(node.func)
        else:
            spelled = dotted_name(node.func)
            if spelled is not None:
                canonical = self.module.imports.resolve(spelled)
                self._add(caller, None, canonical, node.lineno)
                self.graph.call_targets[id(node)] = (None, canonical)
        self._edges_for_escapes(node, caller, function, local_types,
                                spelled)

    def _edges_for_escapes(
        self,
        node: ast.Call,
        caller: str,
        function: Optional[FunctionInfo],
        local_types: Dict[str, str],
        spelled: Optional[str],
    ) -> None:
        """``ref`` edges for functions passed as values."""
        candidates: List[ast.AST] = []
        last = (spelled or "").rsplit(".", 1)[-1]
        if last.endswith("Process"):
            candidates.extend(
                kw.value for kw in node.keywords if kw.arg == "target"
            )
        elif last == "partial":
            if node.args:
                candidates.append(node.args[0])
        elif last in _DISPATCH_METHODS and spelled and "." in spelled:
            if node.args:
                candidates.append(node.args[0])
        else:
            # A bare function name in any argument position escapes.
            candidates.extend(node.args)
            candidates.extend(kw.value for kw in node.keywords)
        for candidate in candidates:
            if not isinstance(candidate, (ast.Name, ast.Attribute)):
                continue
            resolved = self._resolve_callable(
                candidate, function, local_types
            )
            if resolved is None:
                continue
            callee, target = resolved
            if callee is None:
                continue  # only record escapes we can pin to a def
            self._add(caller, callee, target, candidate.lineno,
                      kind="ref")

    # -- name resolution ------------------------------------------------

    def _resolve_callable(
        self,
        node: ast.AST,
        function: Optional[FunctionInfo],
        local_types: Dict[str, str],
    ) -> Optional[Tuple[Optional[str], str]]:
        """``(fid-or-None, canonical target)`` for a callable node."""
        # super().method
        if isinstance(node, ast.Attribute) and _is_super_call(node):
            return self._resolve_super(node, function)
        spelled = dotted_name(node)
        if spelled is None:
            return None
        head, _, rest = spelled.partition(".")
        # self.method / cls.method
        if head in ("self", "cls") and rest and function is not None \
                and function.class_name is not None:
            method = rest.split(".", 1)[0]
            fid = self.graph.method_on(function.class_name, method)
            target = f"{function.class_name}.{method}"
            return (fid, target)
        # x.method where x has an inferred class
        if head in local_types and rest:
            method = rest.split(".", 1)[0]
            canonical_class = local_types[head]
            fid = self.graph.method_on(canonical_class, method)
            if fid is not None:
                return (fid, f"{canonical_class}.{method}")
        # Plain name: same-module function first.
        if not rest:
            local_fid = f"{self.module.name}:{spelled}"
            if local_fid in self.graph.functions:
                return (local_fid, f"{self.module.name}.{spelled}")
            # A class constructor in this module?
            local_class = f"{self.module.name}.{spelled}"
            if local_class in self.graph.classes:
                init = self.graph.method_on(local_class, "__init__")
                return (init, f"{local_class}.__init__")
        # Through the import table.
        canonical = self.module.imports.resolve(spelled)
        fid = self.graph.function_for(canonical)
        if fid is not None:
            return (fid, canonical)
        info = self.graph.class_for(canonical)
        if info is not None:
            init = self.graph.method_on(canonical, "__init__")
            return (init, f"{canonical}.__init__")
        if canonical != spelled or "." in spelled:
            # An external target worth recording (time.time, np.random).
            return (None, canonical)
        return None

    def _resolve_super(
        self, node: ast.Attribute, function: Optional[FunctionInfo]
    ) -> Optional[Tuple[Optional[str], str]]:
        if function is None or function.class_name is None:
            return None
        info = self.graph.classes.get(function.class_name)
        if info is None:
            return None
        for base in info.bases:
            fid = self.graph.method_on(base, node.attr)
            if fid is not None:
                return (fid, f"{base}.{node.attr}")
        return (None, f"super().{node.attr}")


def _is_super_call(node: ast.AST) -> bool:
    """Whether ``node`` is the ``super().attr`` callable shape."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Call)
        and isinstance(node.value.func, ast.Name)
        and node.value.func.id == "super"
    )


def _infer_local_types(
    info: FunctionInfo, module: ModuleInfo, graph: CallGraph
) -> Dict[str, str]:
    """Map local names to canonical classes: ``x = Foo()`` and
    parameter annotations ``x: Foo``."""
    types: Dict[str, str] = {}
    node = info.node
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = list(node.args.posonlyargs) + list(node.args.args) + \
            list(node.args.kwonlyargs)
        for arg in args:
            if arg.annotation is None:
                continue
            annotation = arg.annotation
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                spelled: Optional[str] = annotation.value
            else:
                spelled = dotted_name(annotation)
            if spelled is None:
                continue
            canonical = _canonical_class_name(spelled, module, graph)
            if canonical is not None:
                types[arg.arg] = canonical
        body: Sequence[ast.AST] = node.body
    else:
        body = []
    for stmt in body:
        for sub in ast.walk(stmt):
            if not isinstance(sub, ast.Assign):
                continue
            if len(sub.targets) != 1 or not isinstance(
                sub.targets[0], ast.Name
            ):
                continue
            if not isinstance(sub.value, ast.Call):
                continue
            spelled = dotted_name(sub.value.func)
            if spelled is None:
                continue
            canonical = _canonical_class_name(spelled, module, graph)
            if canonical is not None:
                types[sub.targets[0].id] = canonical
    return types


def _canonical_class_name(
    spelled: str, module: ModuleInfo, graph: CallGraph
) -> Optional[str]:
    local = f"{module.name}.{spelled}"
    if local in graph.classes:
        return local
    canonical = module.imports.resolve(spelled)
    if canonical in graph.classes:
        return canonical
    return None
