"""Command-line entry points for static verification and the lint.

``python -m repro.verify``
    Build the default monitored scenario (same defaults as the demo),
    run every fabric-verification pass against it, and print the
    report.  Exit status 1 iff any ERROR finding.  ``--issue NAME``
    injects one Table-1 issue against rank 0's RNIC first, so the
    passes have something to catch.

``python -m repro.verify --lint [paths...]``
    Run the determinism lint over ``src/repro`` (or the given paths).
    Exit status 1 iff any violation.

``python -m repro.verify --flow [root]``
    Run the interprocedural determinism analyzer (call-graph taint,
    keyed-draw contract) over the ``repro`` package (or ``root``).
    ``--baseline``/``--write-baseline`` manage the accepted-findings
    file; ``--json-out`` writes the machine-readable report.  Exit
    status 1 iff any non-baselined finding.

The top-level ``repro verify`` subcommand delegates here.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.verify.framework import (
    FabricVerifier,
    VerificationContext,
    VerifierReport,
)
from repro.verify.flow import run_flow
from repro.verify.lint import lint_paths

__all__ = [
    "add_verify_arguments",
    "build_default_report",
    "main",
    "run_flow",
    "run_lint",
    "run_verify",
]


def add_verify_arguments(parser: argparse.ArgumentParser) -> None:
    """Install the shared ``verify`` options on ``parser``."""
    parser.add_argument(
        "--lint", action="store_true",
        help="run the determinism lint instead of the fabric passes",
    )
    parser.add_argument(
        "--flow", action="store_true",
        help="run the interprocedural determinism analyzer (call-graph "
        "taint + keyed-draw contract) instead of the fabric passes",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to analyze (default: the repro "
        "package); ignored without --lint/--flow",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="flow baseline file (default: the committed "
        "src/repro/verify/flow_baseline.json); only with --flow",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="accept every current flow finding into the baseline "
        "file and exit; only with --flow",
    )
    parser.add_argument(
        "--json-out", default=None, metavar="FILE",
        help="write the machine-readable flow report here; "
        "only with --flow",
    )
    parser.add_argument(
        "--issue", default=None, metavar="NAME",
        help="inject this Table-1 issue (e.g. REPETITIVE_FLOW_"
        "OFFLOADING) against rank 0's RNIC before verifying",
    )
    parser.add_argument(
        "--containers", type=int, default=4,
        help="containers in the scenario under verification",
    )
    parser.add_argument(
        "--gpus", type=int, default=4,
        help="GPUs (and rails) per container",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="scenario seed",
    )
    parser.add_argument(
        "--warnings-as-errors", action="store_true",
        help="exit non-zero on WARNING findings too",
    )


def build_default_report(
    num_containers: int = 4,
    gpus_per_container: int = 4,
    seed: int = 0,
    issue: Optional[str] = None,
) -> VerifierReport:
    """Construct a scenario, optionally fault it, and verify it."""
    from repro.workloads.scenarios import build_scenario

    scenario = build_scenario(
        num_containers=num_containers,
        gpus_per_container=gpus_per_container,
        seed=seed,
    )
    if issue is not None:
        from repro.network.issues import all_issue_types, lookup_issue

        try:
            kind = lookup_issue(issue.upper())
        except KeyError:
            valid = ", ".join(
                sorted(i.name for i in all_issue_types())
            )
            raise SystemExit(
                f"unknown issue {issue!r}; expected one of: {valid}"
            )
        target = scenario.rnic_of_rank(0)
        scenario.injector.inject_issue(
            kind, target, start=scenario.engine.now
        )
    verifier = FabricVerifier(recorder=scenario.observability)
    return verifier.verify(VerificationContext.from_scenario(scenario))


def run_verify(args: argparse.Namespace) -> int:
    """The fabric-verification mode; returns the process exit code."""
    report = build_default_report(
        num_containers=args.containers,
        gpus_per_container=args.gpus,
        seed=args.seed,
        issue=args.issue,
    )
    print(report.render())
    failures = report.errors()
    if args.warnings_as_errors:
        failures = failures + report.warnings()
    return 1 if failures else 0


def run_lint(args: argparse.Namespace) -> int:
    """The determinism-lint mode; returns the process exit code."""
    violations, count = lint_paths(args.paths or None)
    for violation in violations:
        print(violation.format())
    noun = "file" if count == 1 else "files"
    if violations:
        print(f"{len(violations)} violation(s) in {count} {noun}")
        return 1
    print(f"determinism lint: {count} {noun} clean")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Static fabric verification and determinism lint.",
    )
    add_verify_arguments(parser)
    args = parser.parse_args(list(argv) if argv is not None else None)
    if args.lint and args.flow:
        parser.error("--lint and --flow are mutually exclusive")
    if args.flow:
        return run_flow(args)
    if args.lint:
        return run_lint(args)
    return run_verify(args)
