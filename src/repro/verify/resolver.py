"""Import/alias resolution shared by the lint and the flow analyzer.

Both static passes need the same primitive: given the dotted name a
call site *spells* (``dt.now``, ``npr.rand``, ``time``), recover the
name it *means* (``datetime.datetime.now``, ``numpy.random.rand``,
``time.time``).  The PR-2 lint matched spelled names only, so
``from time import time`` and ``import numpy.random as npr`` walked
straight past the ``wall-clock``/``unseeded-random`` rules — exactly
the indirection gray failures hide behind.  One :class:`ImportTable`
per module now feeds both passes, so an alias that evades one evades
neither.

The table is deliberately syntactic: it resolves what the import
statements of one module declare, without executing anything.  Names
bound by assignment (``t = time.time``) are the flow analyzer's job
(it tracks values); names bound by imports are this module's.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional

__all__ = ["ImportTable", "dotted_name"]


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, else ``None``."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportTable:
    """Maps the names one module binds via imports to canonical paths.

    >>> table = ImportTable.from_source(
    ...     "import numpy.random as npr\\n"
    ...     "from time import time\\n"
    ...     "from datetime import datetime as dt\\n")
    >>> table.resolve("npr.rand")
    'numpy.random.rand'
    >>> table.resolve("time")
    'time.time'
    >>> table.resolve("dt.now")
    'datetime.datetime.now'
    >>> table.resolve("unbound.name")
    'unbound.name'
    """

    def __init__(self) -> None:
        #: local name -> canonical dotted path it is bound to.
        self.aliases: Dict[str, str] = {}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "ImportTable":
        """Collect every import binding anywhere in ``tree``.

        Function-local imports are folded into the same table: for
        alias resolution a wrong *scope* is harmless (worst case a
        name resolves that would have raised ``NameError``), while a
        missed binding is exactly the evasion being closed.
        """
        table = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                table._add_import(node)
            elif isinstance(node, ast.ImportFrom):
                table._add_import_from(node)
        return table

    @classmethod
    def from_source(cls, source: str) -> "ImportTable":
        """Convenience wrapper over :meth:`from_tree`."""
        return cls.from_tree(ast.parse(source))

    def _add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname is not None:
                # ``import numpy.random as npr``: npr -> numpy.random
                self.aliases[alias.asname] = alias.name
            else:
                # ``import numpy.random`` binds ``numpy``; the spelled
                # call already carries the canonical prefix, so the
                # identity binding just marks the name as a module.
                root = alias.name.split(".", 1)[0]
                self.aliases.setdefault(root, root)

    def _add_import_from(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            # Relative imports stay package-internal; the call graph
            # resolves those against the package itself.
            return
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    # -- resolution -----------------------------------------------------

    def resolve(self, spelled: str) -> str:
        """The canonical dotted path for a spelled dotted name.

        The first segment is looked up in the alias table; the rest of
        the chain rides along unchanged.  Unknown roots resolve to
        themselves, so resolution is always safe to apply.
        """
        root, sep, rest = spelled.partition(".")
        target = self.aliases.get(root)
        if target is None:
            return spelled
        return f"{target}{sep}{rest}" if rest else target

    def resolve_node(self, node: ast.AST) -> Optional[str]:
        """Resolve a call's ``func`` node straight to a canonical path."""
        spelled = dotted_name(node)
        if spelled is None:
            return None
        return self.resolve(spelled)

    def local_names(self) -> Iterable[str]:
        """The names this module binds via imports (sorted)."""
        return sorted(self.aliases)
