"""The pass-based fabric-verification framework.

SkeletonHunter's localization is only as sound as the invariants it
assumes about the fabric: rail-optimized wiring symmetry, ECMP path
equivalence, overlay/underlay flow-table agreement, and skeleton
coverage of every active endpoint pair (§5 of the paper).  Flock-style
fault localization depends on a faithful model of the network, and gray
failures hide exactly where such assumptions silently break — so this
module checks a constructed cluster *statically*, before a single probe
runs, instead of discovering model drift through flaky localization
results.

A :class:`VerificationPass` inspects one aspect of a
:class:`VerificationContext` (the cluster, plus optionally the running
SkeletonHunter and the training workload) and reports
:class:`Finding`\\ s — each naming the exact component, a severity, and
an evidence chain rendered in the same explainable style as
:meth:`repro.core.localization.Diagnosis.explain`.  The
:class:`FabricVerifier` runs a configurable list of passes and folds
their results into one :class:`VerifierReport`.
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro.cluster.orchestrator import Cluster
from repro.cluster.topology import RailOptimizedTopology

__all__ = [
    "FabricVerificationError",
    "FabricVerifier",
    "Finding",
    "PassResult",
    "Severity",
    "VerificationContext",
    "VerificationPass",
    "VerifierReport",
]


class Severity(enum.Enum):
    """How bad a finding is for localization soundness."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """Numeric order for sorting (ERROR highest)."""
        return {"info": 0, "warning": 1, "error": 2}[self.value]


@dataclass(frozen=True)
class Finding:
    """One violated invariant, anchored to a concrete component.

    ``component`` uses the same naming scheme as
    :class:`~repro.core.localization.Diagnosis` (``host-3/rnic-2``,
    ``ovs:host-1``, ``tor-4``, ...), so a finding and a runtime
    diagnosis blaming the same device render identically.
    """

    check: str                    # the pass that raised it
    severity: Severity
    component: str
    explanation: str              # one-line verdict
    details: Tuple[str, ...] = ()  # the evidence chain

    def explain(self) -> str:
        """Render the evidence chain (Diagnosis.explain-style)."""
        lines = [
            f"finding: {self.component} [{self.severity.value}]",
            f"  check: {self.check}",
            f"  verdict: {self.explanation}",
        ]
        if self.details:
            lines.append("  evidence:")
            lines.extend(f"    {line}" for line in self.details)
        return "\n".join(lines)


@dataclass
class PassResult:
    """What one pass inspected and what it found."""

    name: str
    findings: List[Finding] = field(default_factory=list)
    checked: int = 0              # objects inspected (for reporting)
    skipped: bool = False
    reason: str = ""              # why the pass was skipped

    @property
    def ok(self) -> bool:
        """Whether the pass ran and found nothing."""
        return not self.skipped and not self.findings


@dataclass
class VerifierReport:
    """The merged outcome of every pass the verifier ran."""

    results: List[PassResult] = field(default_factory=list)

    @property
    def findings(self) -> List[Finding]:
        """All findings, most severe first (stable within severity)."""
        collected = [f for r in self.results for f in r.findings]
        return sorted(
            collected,
            key=lambda f: (-f.severity.rank, f.check, f.component),
        )

    def errors(self) -> List[Finding]:
        """Findings at ERROR severity."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> List[Finding]:
        """Findings at WARNING severity."""
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """Whether the whole fabric verified clean (no findings at all)."""
        return not self.findings

    def components(self) -> List[str]:
        """Distinct blamed components, most severe first."""
        seen: List[str] = []
        for finding in self.findings:
            if finding.component not in seen:
                seen.append(finding.component)
        return seen

    def render(self) -> str:
        """The operator-readable report: summary plus evidence chains."""
        ran = [r for r in self.results if not r.skipped]
        skipped = [r for r in self.results if r.skipped]
        lines = [
            f"fabric verification: {len(ran)} passes, "
            f"{sum(r.checked for r in ran)} objects checked, "
            f"{len(self.findings)} finding(s)"
        ]
        for result in self.results:
            if result.skipped:
                lines.append(
                    f"  SKIP {result.name}: {result.reason}"
                )
            else:
                status = "ok  " if not result.findings else "FAIL"
                lines.append(
                    f"  {status} {result.name} "
                    f"({result.checked} checked, "
                    f"{len(result.findings)} finding(s))"
                )
        if skipped and not ran:
            lines.append("  (nothing ran)")
        for finding in self.findings:
            lines.append("")
            lines.append(finding.explain())
        return "\n".join(lines)


class FabricVerificationError(RuntimeError):
    """Raised when ``verify_on_start`` finds ERROR-severity findings."""

    def __init__(self, report: VerifierReport) -> None:
        self.report = report
        errors = report.errors()
        components = ", ".join(
            sorted({f.component for f in errors})
        )
        super().__init__(
            f"fabric verification failed: {len(errors)} error finding(s) "
            f"on {components}"
        )


@dataclass
class VerificationContext:
    """Everything a pass may inspect.

    Only ``cluster`` is mandatory; passes that need the monitoring stack
    (``hunter``) or the tenant workload (``workload``) skip themselves —
    with a recorded reason — when those are absent.  ``hunter`` is typed
    loosely to keep :mod:`repro.verify` import-free of
    :mod:`repro.core` (which imports this package for
    ``verify_on_start``).
    """

    cluster: Cluster
    hunter: Optional[Any] = None          # repro.core.system.SkeletonHunter
    workload: Optional[Any] = None        # repro.training.TrainingWorkload

    @property
    def topology(self) -> RailOptimizedTopology:
        """The cluster's physical topology."""
        return self.cluster.topology

    @classmethod
    def from_scenario(cls, scenario: Any) -> "VerificationContext":
        """Build a context from a :class:`MonitoredScenario`."""
        return cls(
            cluster=scenario.cluster,
            hunter=scenario.hunter,
            workload=getattr(scenario, "workload", None),
        )


class VerificationPass(abc.ABC):
    """One static check over a :class:`VerificationContext`."""

    #: Stable dotted name (``layer.invariant``), used in reports.
    name: str = "unnamed"

    @abc.abstractmethod
    def run(self, context: VerificationContext) -> PassResult:
        """Inspect the context and return findings."""

    # Helpers shared by the concrete passes -----------------------------

    def result(self) -> PassResult:
        """A fresh, empty result for this pass."""
        return PassResult(name=self.name)

    def skip(self, reason: str) -> PassResult:
        """A skipped result with a recorded reason."""
        return PassResult(name=self.name, skipped=True, reason=reason)

    def finding(
        self,
        result: PassResult,
        component: object,
        explanation: str,
        details: Iterable[str] = (),
        severity: Severity = Severity.ERROR,
    ) -> Finding:
        """Record one finding on ``result`` and return it."""
        found = Finding(
            check=self.name,
            severity=severity,
            component=str(component),
            explanation=explanation,
            details=tuple(details),
        )
        result.findings.append(found)
        return found


class FabricVerifier:
    """Runs a pass pipeline over a cluster and merges the results.

    With a :class:`~repro.obs.trace.TraceRecorder`, every finding is
    also emitted as a ``verify.finding`` trace event and counted under
    ``verify.findings``, so verification outcomes land on the same
    observability surface as runtime diagnoses.
    """

    def __init__(
        self,
        passes: Optional[Sequence[VerificationPass]] = None,
        recorder: Any = None,
    ) -> None:
        if passes is None:
            passes = default_passes()
        self.passes: List[VerificationPass] = list(passes)
        self.recorder = recorder

    def verify(self, context: VerificationContext) -> VerifierReport:
        """Run every pass and return the merged report."""
        report = VerifierReport()
        for verification_pass in self.passes:
            result = verification_pass.run(context)
            report.results.append(result)
            self._record(result)
        if self.recorder is not None:
            self.recorder.event(
                "verify.report",
                passes=len(report.results),
                findings=len(report.findings),
                errors=len(report.errors()),
                components=report.components(),
            )
        return report

    def verify_cluster(self, cluster: Cluster) -> VerifierReport:
        """Convenience: verify a bare cluster (no hunter/workload)."""
        return self.verify(VerificationContext(cluster=cluster))

    def _record(self, result: PassResult) -> None:
        if self.recorder is None:
            return
        for finding in result.findings:
            self.recorder.count("verify.findings")
            self.recorder.event(
                "verify.finding",
                check=finding.check,
                severity=finding.severity.value,
                component=finding.component,
                explanation=finding.explanation,
                details=list(finding.details),
            )


def default_passes() -> List[VerificationPass]:
    """The standard pipeline: topology, flow tables, overlay, skeleton."""
    from repro.verify.flowtable_passes import OffloadConsistencyPass
    from repro.verify.overlay_passes import (
        EndpointChainPass,
        VtepSymmetryPass,
    )
    from repro.verify.skeleton_passes import (
        ProbeTargetPass,
        SkeletonCoveragePass,
    )
    from repro.verify.topology_passes import (
        ConnectivityPass,
        EcmpEquivalencePass,
        RailWiringPass,
        SpineFanoutPass,
    )

    return [
        RailWiringPass(),
        SpineFanoutPass(),
        EcmpEquivalencePass(),
        ConnectivityPass(),
        OffloadConsistencyPass(),
        EndpointChainPass(),
        VtepSymmetryPass(),
        ProbeTargetPass(),
        SkeletonCoveragePass(),
    ]
