"""``repro.verify.flow`` — the interprocedural determinism analyzer.

Ties the pieces together: build a call graph over a package
(:mod:`~repro.verify.callgraph`), run the taint fixpoint
(:mod:`~repro.verify.taint`), check the keyed-draw contract and sink
protection (:mod:`~repro.verify.contract`), apply the committed
baseline (:mod:`~repro.verify.baseline`), and fold everything into the
same :class:`~repro.verify.framework.VerifierReport` the fabric passes
use — one report surface, one evidence-chain style.

Entry points::

    PYTHONPATH=src python -m repro.verify --flow
    PYTHONPATH=src python -m repro verify --flow
    PYTHONPATH=src python -m repro.verify --flow --write-baseline

Exit status is 1 iff any non-baselined finding survives.
"""

from __future__ import annotations

import argparse
import json
import os
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.verify.baseline import FlowBaseline
from repro.verify.callgraph import CallGraph, CallGraphBuilder
from repro.verify.contract import ContractChecker, ContractConfig
from repro.verify.framework import PassResult, VerifierReport
from repro.verify.taint import TaintAnalyzer, TaintConfig

__all__ = [
    "FlowAnalysis",
    "FlowAnalyzer",
    "analyze_package",
    "default_flow_root",
    "report_to_json",
    "run_flow",
]


@dataclass
class FlowAnalysis:
    """Everything one flow run produced, for reports and tests."""

    graph: CallGraph
    taint: TaintAnalyzer
    report: VerifierReport
    baseline_stats: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return not self.report.errors()


class FlowAnalyzer:
    """Configurable façade over graph building, taint, and contract."""

    def __init__(
        self,
        taint_config: Optional[TaintConfig] = None,
        contract_config: Optional[ContractConfig] = None,
    ) -> None:
        self.taint_config = taint_config or TaintConfig()
        self.contract_config = contract_config or ContractConfig()

    def analyze_graph(self, graph: CallGraph) -> FlowAnalysis:
        """Run taint + contract over an already-built graph."""
        taint = TaintAnalyzer(graph, self.taint_config)
        taint.analyze()
        checker = ContractChecker(graph, taint, self.contract_config)
        sink_result, contract_result = checker.run()
        stats = PassResult(
            name="flow.callgraph",
            checked=len(graph.functions),
        )
        report = VerifierReport(
            results=[stats, sink_result, contract_result]
        )
        return FlowAnalysis(graph=graph, taint=taint, report=report)

    def analyze_package(
        self, root: str, package: Optional[str] = None
    ) -> FlowAnalysis:
        """Parse every module under ``root`` and analyze the package."""
        builder = CallGraphBuilder()
        count = builder.add_package(root, package=package)
        if count == 0:
            raise FileNotFoundError(
                f"no python modules under {root!r} to analyze"
            )
        return self.analyze_graph(builder.build())

    def analyze_sources(
        self, sources: Dict[str, str]
    ) -> FlowAnalysis:
        """Analyze in-memory modules (``dotted name -> source``)."""
        builder = CallGraphBuilder()
        for name in sorted(sources):
            builder.add_source(name, sources[name])
        return self.analyze_graph(builder.build())


def analyze_package(
    root: Optional[str] = None, package: Optional[str] = None
) -> FlowAnalysis:
    """Module-level convenience with the default configuration."""
    return FlowAnalyzer().analyze_package(
        root if root is not None else default_flow_root(),
        package=package,
    )


def default_flow_root() -> str:
    """The installed ``repro`` package directory (what CI analyzes)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def default_baseline_path() -> str:
    """The committed baseline next to this module."""
    return os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "flow_baseline.json"
    )


def report_to_json(analysis: FlowAnalysis) -> Dict:
    """The machine-readable report CI uploads as an artifact."""
    report = analysis.report
    return {
        "version": 1,
        "functions": len(analysis.graph.functions),
        "modules": len(analysis.graph.modules),
        "edges": len(analysis.graph.edges),
        "passes": [
            {
                "name": result.name,
                "checked": result.checked,
                "findings": len(result.findings),
            }
            for result in report.results
        ],
        "findings": [
            {
                "check": f.check,
                "severity": f.severity.value,
                "component": f.component,
                "explanation": f.explanation,
                "evidence": list(f.details),
            }
            for f in report.findings
        ],
        "baseline": analysis.baseline_stats,
    }


def run_flow(args: argparse.Namespace) -> int:
    """The ``--flow`` CLI mode; returns the process exit code."""
    root = args.paths[0] if getattr(args, "paths", None) else None
    try:
        analysis = analyze_package(root)
    except (FileNotFoundError, SyntaxError) as error:
        print(f"flow analysis failed: {error}")
        return 2

    baseline_path = getattr(args, "baseline", None) or \
        default_baseline_path()
    if getattr(args, "write_baseline", False):
        baseline = FlowBaseline.from_report(analysis.report)
        baseline.save(baseline_path)
        print(
            f"wrote {len(baseline.entries)} baseline entr"
            f"{'y' if len(baseline.entries) == 1 else 'ies'} to "
            f"{baseline_path}"
        )
        return 0

    baseline = FlowBaseline.load(baseline_path)
    stale: List[str] = []
    if baseline.entries:
        stale = [
            f"{e.check}: {e.component} ({e.source})"
            for e in baseline.stale_entries(analysis.report)
        ]
        analysis.baseline_stats = baseline.apply(analysis.report)

    print(analysis.report.render())
    if analysis.baseline_stats:
        stats = analysis.baseline_stats
        print(
            f"baseline: {stats['accepted']} accepted, "
            f"{stats['new']} new, {stats['stale']} stale"
        )
    for entry in stale:
        print(f"stale baseline entry (fixed? delete it): {entry}")

    json_out = getattr(args, "json_out", None)
    if json_out:
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(report_to_json(analysis), handle, indent=2)
            handle.write("\n")
        print(f"wrote {json_out}")

    errors = analysis.report.errors()
    if getattr(args, "warnings_as_errors", False):
        errors = errors + analysis.report.warnings()
    return 1 if errors else 0
