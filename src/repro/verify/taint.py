"""Taint lattice and transfer rules for the determinism flow analysis.

Every guarantee downstream of the simulator — byte-identical bus
recordings, bit-equivalent shard merges, replayable breaker state —
reduces to one code property: *nondeterminism enters only through
seeded keyed draws*.  This module classifies how values move through
the call graph:

``PURE``
    Deterministic given the program's explicit inputs.

``KEYED``
    Stochastic but derived from a seeded keyed draw
    (``keyed_uniform``/``keyed_uniforms``, ``PairwiseDrawSource``,
    the ``sim.rng`` registry) — reproducible by construction.

``TAINTED``
    Depends on an out-of-band input: wall clock, the global RNG,
    process identity (`os.getpid`/`os.urandom`/`uuid4`), environment
    reads, module-global ``itertools.count`` counters (whose values
    depend on what else ran in the process), or hash-order iteration
    of an unordered ``set`` feeding ordered output.

Each function gets a :class:`FunctionSummary` from an intraprocedural
walk of its body; an interprocedural fixpoint then propagates taint
through returns, arguments, ``self`` attributes, and container stores
until nothing changes.  Summaries carry a provenance chain — the exact
``caller → callee → … → source()`` path — so a finding can print where
the nondeterminism *entered*, not just where it surfaced.
"""

from __future__ import annotations

import ast
import enum
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.verify.callgraph import (
    CallGraph,
    FunctionInfo,
    ModuleInfo,
    _infer_local_types,
)
from repro.verify.resolver import dotted_name

__all__ = [
    "FunctionSummary",
    "Taint",
    "TaintAnalyzer",
    "TaintConfig",
    "TaintValue",
    "TraceStep",
]


class Taint(enum.IntEnum):
    """The three-point lattice; ``join`` is ``max``."""

    PURE = 0
    KEYED = 1
    TAINTED = 2


@dataclass(frozen=True)
class TraceStep:
    """One hop of a provenance chain."""

    function: str                 # display label of the function
    path: str
    lineno: int
    note: str

    def format(self) -> str:
        return f"{self.path}:{self.lineno}: {self.note}"


@dataclass(frozen=True)
class TaintValue:
    """A lattice point plus where it came from.

    ``kind`` names the source family (``wall-clock``,
    ``unseeded-random``, ``process-identity``, ``env-read``,
    ``unordered-iteration``, ``keyed``); the chain walks from the
    consuming function down to the source call.
    """

    taint: Taint = Taint.PURE
    kind: str = ""
    chain: Tuple[TraceStep, ...] = ()

    @staticmethod
    def pure() -> "TaintValue":
        return _PURE

    def join(self, other: "TaintValue") -> "TaintValue":
        if other.taint > self.taint:
            return other
        if other.taint == self.taint and not self.chain and other.chain:
            return other
        return self

    def with_step(self, step: TraceStep) -> "TaintValue":
        if len(self.chain) >= _MAX_CHAIN:
            return self
        return replace(self, chain=(step,) + self.chain)


_PURE = TaintValue()
_MAX_CHAIN = 16


def join_all(values: Sequence[TaintValue]) -> TaintValue:
    result = _PURE
    for value in values:
        result = result.join(value)
    return result


@dataclass
class TaintConfig:
    """Source, sanitizer, and keyed-draw catalogs.

    Names are *canonical* (post :class:`~repro.verify.resolver.
    ImportTable` resolution).  Keyed draws and exempt modules match by
    dotted suffix so the same config covers ``repro.sim.rng`` and a
    test fixture's ``pkg.sim.rng``.
    """

    wall_clock: Tuple[str, ...] = (
        "time.time", "time.time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "datetime.now", "datetime.utcnow", "datetime.today",
        "date.today",
    )
    rng_prefixes: Tuple[str, ...] = ("random.", "numpy.random.")
    process_identity: Tuple[str, ...] = (
        "os.getpid", "os.getppid", "os.urandom",
        "uuid.uuid1", "uuid.uuid4", "socket.gethostname",
    )
    env_reads: Tuple[str, ...] = ("os.getenv", "os.environ.get")
    env_objects: Tuple[str, ...] = ("os.environ",)
    #: Dotted suffixes whose call results are keyed-deterministic.
    keyed_suffixes: Tuple[str, ...] = (
        "network.draws.keyed_uniform",
        "network.draws.keyed_uniforms",
        "network.draws.PairwiseDrawSource.uniforms",
        "sim.rng.derive_seed",
        "sim.rng.RngRegistry.stream",
        "sim.rng.RngRegistry.fork",
    )
    #: Module suffixes that *mint* keyed randomness: their functions
    #: return KEYED, and global-RNG machinery inside them is the
    #: sanctioned implementation, not a source.
    keyed_module_suffixes: Tuple[str, ...] = ("sim.rng", "network.draws")
    #: Calls that erase unordered-iteration taint (and only that
    #: kind): explicit ordering plus order-insensitive aggregators.
    order_sanitizers: Tuple[str, ...] = (
        "sorted", "sum", "len", "min", "max", "any", "all", "frozenset",
    )
    #: Module-level factories whose values advance with process
    #: history: ``next()`` on one is out-of-band nondeterminism.
    global_counter_factories: Tuple[str, ...] = ("itertools.count",)

    # -- classification -------------------------------------------------

    def source_kind(self, target: str) -> Optional[str]:
        """The source family of a canonical call target, if any."""
        if target in self.wall_clock or any(
            target.endswith("." + name) for name in self.wall_clock
        ):
            return "wall-clock"
        if any(target.startswith(p) for p in self.rng_prefixes):
            return "unseeded-random"
        if target in self.process_identity:
            return "process-identity"
        if target in self.env_reads:
            return "env-read"
        return None

    def is_keyed(self, target: str) -> bool:
        return any(
            target == s or target.endswith("." + s)
            for s in self.keyed_suffixes
        )

    def module_is_keyed(self, module: str) -> bool:
        return any(
            module == s or module.endswith("." + s)
            for s in self.keyed_module_suffixes
        )


@dataclass
class FunctionSummary:
    """What flows out of one function."""

    fid: str
    returns: TaintValue = field(default_factory=TaintValue.pure)
    #: Taint this function writes into ``self`` attributes, parameter
    #: containers, or globals (its *state* effect).
    state: TaintValue = field(default_factory=TaintValue.pure)
    #: Direct source calls in the body: (kind, target, lineno).
    sources: List[Tuple[str, str, int]] = field(default_factory=list)

    def key(self) -> Tuple[int, int, int]:
        """The fixpoint-comparison key (chains excluded)."""
        return (int(self.returns.taint), int(self.state.taint),
                len(self.sources))


class TaintAnalyzer:
    """Runs the interprocedural fixpoint over a built call graph."""

    def __init__(
        self, graph: CallGraph, config: Optional[TaintConfig] = None,
        max_rounds: int = 12,
    ) -> None:
        self.graph = graph
        self.config = config or TaintConfig()
        self.max_rounds = max_rounds
        self.summaries: Dict[str, FunctionSummary] = {}
        #: Class-attribute taint: ``(canonical class, attr) -> value``.
        self.attr_taint: Dict[Tuple[str, str], TaintValue] = {}
        #: Module -> names bound at module level to a global counter
        #: (``_counter = itertools.count()``).
        self.module_counters: Dict[str, Dict[str, int]] = {}

    # -- driver ---------------------------------------------------------

    def analyze(self) -> Dict[str, FunctionSummary]:
        """Iterate per-function walks until summaries stabilize."""
        self._scan_module_counters()
        self._seed_class_defaults()
        order = sorted(self.graph.functions)
        for fid in order:
            self.summaries[fid] = FunctionSummary(fid=fid)
        for _ in range(self.max_rounds):
            changed = False
            for fid in order:
                info = self.graph.functions[fid]
                before = self.summaries[fid].key()
                attr_before = len(self.attr_taint)
                self.summaries[fid] = self._analyze_function(info)
                if self.summaries[fid].key() != before:
                    changed = True
                if len(self.attr_taint) != attr_before:
                    changed = True
            if not changed:
                break
        return self.summaries

    def summary_of(self, fid: str) -> FunctionSummary:
        return self.summaries.get(fid, FunctionSummary(fid=fid))

    # -- pre-passes -----------------------------------------------------

    def _scan_module_counters(self) -> None:
        """Find ``name = itertools.count(...)`` at module level."""
        for module in self.graph.modules.values():
            counters: Dict[str, int] = {}
            for stmt in getattr(module.tree, "body", []):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                spelled = dotted_name(stmt.value.func)
                if spelled is None:
                    continue
                canonical = module.imports.resolve(spelled)
                if canonical not in self.config.global_counter_factories:
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        counters[target.id] = stmt.lineno
            if counters:
                self.module_counters[module.name] = counters

    def _seed_class_defaults(self) -> None:
        """Taint class attributes whose *defaults* draw from a source.

        ``fault_id: int = field(default_factory=lambda:
        next(_counter))`` taints ``(Class, fault_id)`` before the
        fixpoint: the nondeterminism enters at construction, so every
        later read of the attribute carries it.
        """
        for module in self.graph.modules.values():
            if self.config.module_is_keyed(module.name):
                continue
            for stmt in getattr(module.tree, "body", []):
                if not isinstance(stmt, ast.ClassDef):
                    continue
                canonical = f"{module.name}.{stmt.name}"
                for item in stmt.body:
                    attr, value_node = _class_field(item)
                    if attr is None or value_node is None:
                        continue
                    value = self._eval_default(module, value_node)
                    if value.taint is Taint.TAINTED:
                        self.attr_taint[(canonical, attr)] = value

    def _eval_default(
        self, module: ModuleInfo, node: ast.AST
    ) -> TaintValue:
        """Taint of a class-attribute default expression."""
        if isinstance(node, ast.Lambda):
            return self._eval_default(module, node.body)
        if isinstance(node, ast.Call):
            spelled = dotted_name(node.func)
            canonical = module.imports.resolve(spelled) if spelled \
                else None
            if canonical == "dataclasses.field" or spelled == "field":
                values = [
                    self._eval_default(module, keyword.value)
                    for keyword in node.keywords
                    if keyword.arg in ("default", "default_factory")
                ]
                return join_all(values)
            counter = self._counter_read(module.name, node)
            if counter is not None:
                name, lineno = counter
                step = TraceStep(
                    f"{module.name}.<class default>", module.path,
                    node.lineno,
                    f"dataclass default draws next({name}) from a "
                    "process-global counter [process-global-counter]",
                )
                return TaintValue(
                    Taint.TAINTED, "process-global-counter", (step,)
                )
            if canonical is not None:
                kind = self.config.source_kind(canonical)
                if kind is not None:
                    step = TraceStep(
                        f"{module.name}.<class default>", module.path,
                        node.lineno,
                        f"dataclass default calls {canonical}() [{kind}]",
                    )
                    return TaintValue(Taint.TAINTED, kind, (step,))
            return join_all([
                self._eval_default(module, child)
                for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.expr)
            ])
        # A bare source passed as the factory itself:
        # ``field(default_factory=uuid.uuid4)``.
        spelled = dotted_name(node)
        if spelled is not None:
            canonical = module.imports.resolve(spelled)
            kind = self.config.source_kind(canonical)
            if kind is not None:
                step = TraceStep(
                    f"{module.name}.<class default>", module.path,
                    node.lineno,
                    f"dataclass default factory is {canonical} [{kind}]",
                )
                return TaintValue(Taint.TAINTED, kind, (step,))
        values = [
            self._eval_default(module, child)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        ]
        return join_all(values)

    def _counter_read(
        self, module_name: str, node: ast.Call
    ) -> Optional[Tuple[str, int]]:
        """``(counter name, lineno)`` when ``node`` is ``next(<module
        counter>)``."""
        if not (isinstance(node.func, ast.Name)
                and node.func.id == "next" and node.args):
            return None
        arg = node.args[0]
        if not isinstance(arg, ast.Name):
            return None
        counters = self.module_counters.get(module_name, {})
        if arg.id not in counters:
            return None
        return (arg.id, node.lineno)

    # -- per-function walk ----------------------------------------------

    def _analyze_function(self, info: FunctionInfo) -> FunctionSummary:
        if self.config.module_is_keyed(info.module):
            # The sanctioned randomness mint: everything it returns is
            # keyed-deterministic by definition.
            return FunctionSummary(
                fid=info.fid,
                returns=TaintValue(
                    Taint.KEYED, "keyed",
                    (TraceStep(info.label(), info.path, info.lineno,
                               f"{info.label()}() mints keyed draws"),),
                ),
            )
        walker = _FunctionWalker(self, info)
        return walker.run()


class _FunctionWalker:
    """The intraprocedural transfer rules for one function body."""

    def __init__(self, analyzer: TaintAnalyzer, info: FunctionInfo):
        self.analyzer = analyzer
        self.graph = analyzer.graph
        self.config = analyzer.config
        self.info = info
        self.summary = FunctionSummary(fid=info.fid)
        #: Local environment: variable -> TaintValue.
        self.env: Dict[str, TaintValue] = {}
        #: Locals currently holding an unordered (set) value.
        self.set_vars: Dict[str, bool] = {}
        #: Locals with an inferable package class (``x = Foo()``,
        #: ``x: Foo`` parameters) — attribute reads on them consult
        #: the shared class-attribute taint.
        module = self.graph.modules.get(info.module)
        self.local_types: Dict[str, str] = _infer_local_types(
            info, module, self.graph
        ) if module is not None else {}

    def run(self) -> FunctionSummary:
        node = self.info.node
        if isinstance(node, ast.Lambda):
            value = self._eval(node.body)
            self.summary.returns = self.summary.returns.join(value)
            return self.summary
        body = getattr(node, "body", [])
        # Two passes pick up loop-carried and define-before-use taint
        # without a full worklist.
        for _ in range(2):
            for stmt in body:
                self._exec(stmt)
        return self.summary

    # -- statements -----------------------------------------------------

    def _exec(self, stmt: ast.AST) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._merge_return(self._eval(stmt.value))
            return
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(stmt)
            return
        if isinstance(stmt, ast.For):
            self._exec_for(stmt)
            return
        if isinstance(stmt, (ast.While, ast.If)):
            self._eval(stmt.test)
            for sub in list(stmt.body) + list(stmt.orelse):
                self._exec(sub)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value)
            for sub in stmt.body:
                self._exec(sub)
            return
        if isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self._exec(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self._exec(sub)
            for sub in list(stmt.orelse) + list(stmt.finalbody):
                self._exec(sub)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        # Everything else: evaluate contained expressions for effects.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._eval(child)
            elif isinstance(child, ast.stmt):
                self._exec(child)

    def _exec_assign(self, stmt: ast.AST) -> None:
        value_node = getattr(stmt, "value", None)
        if value_node is None:
            return
        value = self._eval(value_node)
        targets = stmt.targets if isinstance(stmt, ast.Assign) else \
            [stmt.target]
        is_set = self._is_unordered_expr(value_node)
        for target in targets:
            self._bind(target, value, is_set=is_set)

    def _bind(self, target: ast.AST, value: TaintValue,
              is_set: bool = False) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = self.env.get(
                target.id, TaintValue.pure()
            ).join(value)
            if is_set:
                self.set_vars[target.id] = True
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind(element, value, is_set=False)
            return
        if isinstance(target, ast.Attribute):
            self._write_attribute(target, value)
            return
        if isinstance(target, ast.Subscript):
            base = target.value
            if isinstance(base, ast.Attribute):
                self._write_attribute(base, value)
            elif isinstance(base, ast.Name):
                self.env[base.id] = self.env.get(
                    base.id, TaintValue.pure()
                ).join(value)
                if value.taint is Taint.TAINTED:
                    self._merge_state(value, target.lineno,
                                      f"store into {base.id}[...]")

    def _write_attribute(
        self, target: ast.Attribute, value: TaintValue
    ) -> None:
        spelled = dotted_name(target)
        root = (spelled or "").split(".", 1)[0]
        if root in ("self", "cls") and self.info.class_name is not None:
            attr = target.attr
            key = (self.info.class_name, attr)
            previous = self.analyzer.attr_taint.get(
                key, TaintValue.pure()
            )
            joined = previous.join(value)
            if joined.taint > previous.taint or (
                key not in self.analyzer.attr_taint
                and joined.taint > Taint.PURE
            ):
                self.analyzer.attr_taint[key] = joined
            if value.taint is Taint.TAINTED:
                self._merge_state(
                    value, target.lineno,
                    f"stores a tainted value into self.{attr}",
                )
        elif value.taint is Taint.TAINTED:
            self._merge_state(
                value, target.lineno,
                f"stores a tainted value into {spelled or 'an attribute'}",
            )

    def _exec_for(self, stmt: ast.For) -> None:
        iter_value = self._eval(stmt.iter)
        if self._is_unordered_expr(stmt.iter):
            iter_value = iter_value.join(self._unordered_value(stmt.iter))
        self._bind(stmt.target, iter_value)
        for _ in range(2):
            for sub in stmt.body:
                self._exec(sub)
        for sub in stmt.orelse:
            self._exec(sub)

    def _merge_return(self, value: TaintValue) -> None:
        self.summary.returns = self.summary.returns.join(value)

    def _merge_state(
        self, value: TaintValue, lineno: int, note: str
    ) -> None:
        step = TraceStep(self.info.label(), self.info.path, lineno,
                         f"{self.info.label()} {note}")
        self.summary.state = self.summary.state.join(
            value.with_step(step)
        )

    # -- expressions ----------------------------------------------------

    def _eval(self, node: ast.AST) -> TaintValue:
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Name):
            return self.env.get(node.id, TaintValue.pure())
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            value = self._eval(node.value)
            env_read = self._env_object_read(node.value)
            if env_read is not None:
                return env_read
            self._eval(node.slice)
            return value
        if isinstance(node, (ast.Await, ast.Starred, ast.UnaryOp)):
            return self._eval(
                node.value if hasattr(node, "value") else node.operand
            )
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            if node.value is not None:
                self._merge_return(self._eval(node.value))
            return TaintValue.pure()
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            return self._eval(node.body).join(self._eval(node.orelse))
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            return self._eval_comprehension(node)
        if isinstance(node, ast.Lambda):
            return TaintValue.pure()
        # Structural nodes: join the children.
        values = [
            self._eval(child) for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        ]
        return join_all(values)

    def _eval_attribute(self, node: ast.Attribute) -> TaintValue:
        spelled = dotted_name(node)
        if spelled is not None:
            root = spelled.split(".", 1)[0]
            if root in ("self", "cls") and self.info.class_name:
                value = self._class_attr(self.info.class_name, node.attr)
                if value is not None:
                    return value
                return TaintValue.pure()
            if root in self.local_types:
                value = self._class_attr(
                    self.local_types[root], node.attr
                )
                if value is not None:
                    step = TraceStep(
                        self.info.label(), self.info.path, node.lineno,
                        f"reads {spelled} "
                        f"({self.local_types[root]}.{node.attr})",
                    )
                    return value.with_step(step)
                return TaintValue.pure()
        return self._eval(node.value)

    def _class_attr(
        self, canonical_class: str, attr: str,
        _seen: Optional[set] = None,
    ) -> Optional[TaintValue]:
        seen = _seen if _seen is not None else set()
        if canonical_class in seen:
            return None
        seen.add(canonical_class)
        value = self.analyzer.attr_taint.get((canonical_class, attr))
        if value is not None:
            return value
        info = self.graph.classes.get(canonical_class)
        if info is None:
            return None
        for base in info.bases:
            value = self._class_attr(base, attr, seen)
            if value is not None:
                return value
        return None

    def _env_object_read(self, node: ast.AST) -> Optional[TaintValue]:
        spelled = dotted_name(node)
        if spelled is None:
            return None
        canonical = self.graph.modules[
            self.info.module
        ].imports.resolve(spelled)
        if canonical in self.config.env_objects:
            step = TraceStep(
                self.info.label(), self.info.path, node.lineno,
                f"reads {canonical}[...] [env-read]",
            )
            return TaintValue(Taint.TAINTED, "env-read", (step,))
        return None

    # -- calls ----------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> TaintValue:
        arg_values = [self._eval(arg) for arg in node.args]
        arg_values += [self._eval(kw.value) for kw in node.keywords]
        args = join_all(arg_values)

        callee, target = self.graph.call_targets.get(
            id(node), (None, "")
        )
        if not target:
            spelled = dotted_name(node.func)
            if spelled is None:
                # Indirect call (subscript, call result): taint of the
                # callee expression joins the arguments.
                return self._eval(node.func).join(args)
            target = spelled

        simple = target.rsplit(".", 1)[-1]
        if simple in self.config.order_sanitizers and target == simple:
            return self._eval_sanitizer(node, args)
        counter = self.analyzer._counter_read(self.info.module, node) \
            if target == "next" else None
        if counter is not None:
            name, lineno = counter
            step = TraceStep(
                self.info.label(), self.info.path, lineno,
                f"draws next({name}) from a process-global counter "
                "[process-global-counter]",
            )
            return TaintValue(
                Taint.TAINTED, "process-global-counter", (step,)
            )
        if target == "set" and node.args:
            # ``set(x)`` keeps value taint; order taint arises only
            # when the set is iterated into ordered output.
            return args

        kind = self.config.source_kind(target)
        if kind is not None:
            step = TraceStep(
                self.info.label(), self.info.path, node.lineno,
                f"calls {target}() [{kind}]",
            )
            return TaintValue(Taint.TAINTED, kind, (step,))
        if self.config.is_keyed(target):
            step = TraceStep(
                self.info.label(), self.info.path, node.lineno,
                f"draws {target}() [keyed]",
            )
            return args.join(TaintValue(Taint.KEYED, "keyed", (step,)))

        if callee is not None:
            value = self._eval_summary_call(node, callee, target, args)
        else:
            # Unknown callable: a pure function of its inputs.
            value = args
        self._container_mutation_effect(node, target, args)
        return value

    def _eval_summary_call(
        self, node: ast.Call, callee: str, target: str,
        args: TaintValue,
    ) -> TaintValue:
        summary = self.analyzer.summary_of(callee)
        info = self.graph.functions.get(callee)
        label = info.label() if info is not None else callee
        result = args
        if summary.returns.taint > Taint.PURE:
            step = TraceStep(
                self.info.label(), self.info.path, node.lineno,
                f"receives a {summary.returns.kind or 'tainted'} value "
                f"from {label}()",
            )
            result = result.join(summary.returns.with_step(step))
        if summary.state.taint is Taint.TAINTED:
            # Calling a function with tainted side effects taints our
            # own state effect (it may write into objects we share).
            step = TraceStep(
                self.info.label(), self.info.path, node.lineno,
                f"calls {label}(), which has tainted side effects",
            )
            self.summary.state = self.summary.state.join(
                summary.state.with_step(step)
            )
        if args.taint is Taint.TAINTED:
            # Passing tainted data into a callee that stores state is a
            # state effect at this call site.
            step = TraceStep(
                self.info.label(), self.info.path, node.lineno,
                f"passes a tainted value into {label}()",
            )
            self.summary.state = self.summary.state.join(
                args.with_step(step)
            )
        return result

    def _eval_sanitizer(
        self, node: ast.Call, args: TaintValue
    ) -> TaintValue:
        """``sorted()`` erases ordering taint, nothing else."""
        if args.kind == "unordered-iteration":
            return TaintValue.pure()
        return args

    def _container_mutation_effect(
        self, node: ast.Call, target: str, args: TaintValue
    ) -> None:
        """``self.xs.append(tainted)`` and friends are state writes."""
        if args.taint is not Taint.TAINTED:
            return
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method not in ("append", "add", "extend", "update",
                          "setdefault", "insert", "publish", "record",
                          "put", "push", "emit", "write"):
            return
        base = dotted_name(node.func.value)
        if base is None:
            return
        root = base.split(".", 1)[0]
        if root in ("self", "cls") or root in self.env:
            self._merge_state(
                args, node.lineno,
                f"feeds a tainted value into {base}.{method}()",
            )

    # -- unordered iteration --------------------------------------------

    def _is_unordered_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            spelled = dotted_name(node.func)
            if spelled == "set":
                return True
        if isinstance(node, ast.Name):
            return self.set_vars.get(node.id, False)
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub)
        ):
            return (self._is_unordered_expr(node.left)
                    or self._is_unordered_expr(node.right))
        return False

    def _unordered_value(self, node: ast.AST) -> TaintValue:
        step = TraceStep(
            self.info.label(), self.info.path, node.lineno,
            "iterates an unordered set into ordered output "
            "[unordered-iteration]",
        )
        return TaintValue(Taint.TAINTED, "unordered-iteration", (step,))

    def _eval_comprehension(self, node: ast.AST) -> TaintValue:
        values: List[TaintValue] = []
        ordered_output = not isinstance(node, ast.SetComp)
        for comp in node.generators:  # type: ignore[attr-defined]
            iter_value = self._eval(comp.iter)
            if ordered_output and self._is_unordered_expr(comp.iter):
                iter_value = iter_value.join(
                    self._unordered_value(comp.iter)
                )
            self._bind(comp.target, iter_value)
            values.append(iter_value)
            for condition in comp.ifs:
                self._eval(condition)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr) and not isinstance(
                child, ast.comprehension
            ):
                values.append(self._eval(child))
        return join_all(values)


def _class_field(item: ast.AST) -> Tuple[Optional[str], Optional[ast.AST]]:
    """``(attr name, default expr)`` for one class-body statement."""
    if isinstance(item, ast.AnnAssign) and isinstance(
        item.target, ast.Name
    ):
        return (item.target.id, item.value)
    if isinstance(item, ast.Assign) and len(item.targets) == 1 and \
            isinstance(item.targets[0], ast.Name):
        return (item.targets[0].id, item.value)
    return (None, None)
