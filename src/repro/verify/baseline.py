"""Committed baselines for flow findings: new ones fail, known ones warn.

A whole-program analyzer adopted onto an existing tree needs a ratchet:
pre-existing findings someone has *judged* (and recorded a
justification for) must not block CI, while any **new** finding fails
immediately.  The baseline file is committed JSON:

.. code-block:: json

    {
      "version": 1,
      "findings": [
        {
          "check": "flow.taint-to-sink",
          "component": "repro.core.analyzer.Analyzer.ingest",
          "source": "calls time.time() [wall-clock]",
          "justification": "ticket #42: migrating to sim clock"
        }
      ]
    }

Fingerprints deliberately exclude line numbers (they rot on every
edit) and match on the check, the blamed function, and the source
note.  ``repro verify --flow --write-baseline`` regenerates the file
with empty justifications for a human to fill in; an entry without a
justification is still accepted but rendered as such, so review
pressure stays on the author, not the tool.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.verify.framework import Finding, Severity, VerifierReport

__all__ = ["BaselineEntry", "FlowBaseline", "fingerprint"]

_VERSION = 1


def fingerprint(finding: Finding) -> Tuple[str, str, str]:
    """The stable identity of a finding: (check, component, source)."""
    return (finding.check, finding.component, _source_note(finding))


def _source_note(finding: Finding) -> str:
    """The source step of the evidence chain, line number stripped."""
    for detail in finding.details:
        text = detail.strip()
        if text.startswith("source") or not text:
            continue
        # "path.py:12: note" -> "note"
        parts = text.split(": ", 1)
        return parts[1] if len(parts) == 2 else text
    return ""


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding with its recorded justification."""

    check: str
    component: str
    source: str
    justification: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.check, self.component, self.source)


@dataclass
class FlowBaseline:
    """The committed set of accepted findings."""

    entries: List[BaselineEntry] = field(default_factory=list)
    path: Optional[str] = None

    # -- persistence ----------------------------------------------------

    @classmethod
    def load(cls, path: str) -> "FlowBaseline":
        """Read a baseline file; a missing file is an empty baseline."""
        if not os.path.exists(path):
            return cls(path=path)
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        version = payload.get("version")
        if version != _VERSION:
            raise ValueError(
                f"unsupported flow-baseline version {version!r} in "
                f"{path} (expected {_VERSION})"
            )
        entries = [
            BaselineEntry(
                check=str(row["check"]),
                component=str(row["component"]),
                source=str(row.get("source", "")),
                justification=str(row.get("justification", "")),
            )
            for row in payload.get("findings", [])
        ]
        return cls(entries=entries, path=path)

    def save(self, path: Optional[str] = None) -> str:
        """Write the baseline (sorted, stable) and return the path."""
        target = path or self.path
        if target is None:
            raise ValueError("no baseline path to save to")
        payload = {
            "version": _VERSION,
            "findings": [
                {
                    "check": e.check,
                    "component": e.component,
                    "source": e.source,
                    "justification": e.justification,
                }
                for e in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        with open(target, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return target

    @classmethod
    def from_report(cls, report: VerifierReport) -> "FlowBaseline":
        """A baseline accepting every finding of ``report``."""
        entries = []
        seen = set()
        for finding in report.findings:
            entry = BaselineEntry(
                check=finding.check,
                component=finding.component,
                source=_source_note(finding),
            )
            if entry.key in seen:
                continue
            seen.add(entry.key)
            entries.append(entry)
        return cls(entries=entries)

    # -- application ----------------------------------------------------

    def contains(self, finding: Finding) -> Optional[BaselineEntry]:
        """The matching entry for a finding, if one is baselined."""
        key = fingerprint(finding)
        for entry in self.entries:
            if entry.key == key:
                return entry
        return None

    def apply(self, report: VerifierReport) -> Dict[str, int]:
        """Demote baselined findings to WARNING, in place.

        Returns counters: ``new`` (still ERROR), ``accepted``
        (demoted), ``stale`` (baseline entries matching nothing — a
        fixed finding whose entry should be deleted).
        """
        matched = set()
        new = accepted = 0
        for result in report.results:
            rewritten = []
            for finding in result.findings:
                entry = self.contains(finding)
                if entry is None:
                    new += 1
                    rewritten.append(finding)
                    continue
                matched.add(entry.key)
                accepted += 1
                note = entry.justification or "no justification recorded"
                rewritten.append(Finding(
                    check=finding.check,
                    severity=Severity.WARNING,
                    component=finding.component,
                    explanation=(
                        f"[baseline: {note}] {finding.explanation}"
                    ),
                    details=finding.details,
                ))
            result.findings = rewritten
        stale = sum(
            1 for entry in self.entries if entry.key not in matched
        )
        return {"new": new, "accepted": accepted, "stale": stale}

    def stale_entries(
        self, report: VerifierReport
    ) -> List[BaselineEntry]:
        """Entries that no current finding matches."""
        current = {fingerprint(f) for f in report.findings}
        # Accepted findings were demoted but keep their fingerprint.
        return [e for e in self.entries if e.key not in current]
