"""Static verification of the simulated fabric, plus a determinism lint.

The runtime pipeline (probe → detect → localize) finds failures by
*sending traffic*; this package finds a complementary class of bugs by
*reading state*.  A :class:`FabricVerifier` runs a sequence of
:class:`VerificationPass` objects over a constructed cluster — rail
wiring, ECMP equivalence, cluster-wide OVS↔RNIC offload agreement,
per-endpoint overlay reachability, VTEP symmetry, and skeleton/ping-list
coverage — and renders each :class:`Finding` in the same
evidence-chain style as ``Diagnosis.explain``.  The determinism lint
(:mod:`repro.verify.lint`) keeps the simulator itself honest: no wall
clock, no unseeded randomness, no broad excepts in ``core/``.

Nothing here imports ``repro.core`` at module scope, so the core can
lazily call into verification (``SkeletonHunter.verify_fabric``)
without a cycle.
"""

from repro.verify.framework import (
    FabricVerificationError,
    FabricVerifier,
    Finding,
    PassResult,
    Severity,
    VerificationContext,
    VerificationPass,
    VerifierReport,
    default_passes,
)
from repro.verify.baseline import FlowBaseline
from repro.verify.callgraph import CallGraph, CallGraphBuilder
from repro.verify.contract import ContractChecker, ContractConfig
from repro.verify.flow import FlowAnalysis, FlowAnalyzer, analyze_package
from repro.verify.lint import DeterminismLinter, LintViolation, lint_paths
from repro.verify.resolver import ImportTable
from repro.verify.taint import Taint, TaintAnalyzer, TaintConfig

__all__ = [
    "CallGraph",
    "CallGraphBuilder",
    "ContractChecker",
    "ContractConfig",
    "DeterminismLinter",
    "FlowAnalysis",
    "FlowAnalyzer",
    "FlowBaseline",
    "ImportTable",
    "Taint",
    "TaintAnalyzer",
    "TaintConfig",
    "analyze_package",
    "FabricVerificationError",
    "FabricVerifier",
    "Finding",
    "LintViolation",
    "PassResult",
    "Severity",
    "VerificationContext",
    "VerificationPass",
    "VerifierReport",
    "default_passes",
    "lint_paths",
]
