"""Overlay passes: static reachability of every attached endpoint.

Algorithm 1 replays the veth → OVS → VTEP forwarding chain at
localization time; these passes check the *standing state* that walk
depends on, per endpoint, without sending anything:

* the endpoint's host OVS table holds the DELIVER rule for its
  ``(VNI, overlay IP)`` and the rule hands packets to the right VF;
* the endpoint's VF sits on an RNIC of the endpoint's own host, and
  that RNIC exists in the physical topology;
* no component of the chain (veth, OVS, VTEP) is flagged down;
* VXLAN tunnel endpoints are symmetric — the RNIC↔underlay-IP maps are
  mutual inverses, and every ENCAP rule points at an underlay IP the
  fabric can resolve back to a live VTEP whose host can deliver.
"""

from __future__ import annotations

from repro.cluster.flowtable import ActionKind, FlowKey
from repro.cluster.overlay import (
    OverlayError,
    ovs_name,
    veth_name,
    vtep_name,
)
from repro.cluster.topology import TopologyError
from repro.verify.framework import (
    PassResult,
    Severity,
    VerificationContext,
    VerificationPass,
)

__all__ = ["EndpointChainPass", "VtepSymmetryPass"]


class EndpointChainPass(VerificationPass):
    """Each attached endpoint's delivery chain is complete and healthy."""

    name = "overlay.endpoint_chain"

    def run(self, context: VerificationContext) -> PassResult:
        result = self.result()
        overlay = context.cluster.overlay
        topology = context.topology
        for endpoint in overlay.attached_endpoints():
            result.checked += 1
            record = overlay.record_of(endpoint)
            try:
                vni = overlay.vni_of(endpoint.container.task)
            except OverlayError:
                self.finding(
                    result, endpoint,
                    "endpoint attached but its task has no VNI",
                )
                continue
            rnic = record.vf.rnic
            if rnic.host != record.host:
                self.finding(
                    result, endpoint,
                    f"endpoint's VF lives on {rnic.host} but the "
                    f"endpoint is recorded on {record.host}",
                )
            try:
                topology.tor_of(rnic)
            except TopologyError as error:
                self.finding(
                    result, rnic,
                    "endpoint's RNIC does not exist in the physical "
                    "topology",
                    details=[f"tor_of raised: {error}"],
                )
            key = FlowKey(vni, record.overlay_ip)
            rule = overlay.ovs_table(record.host).lookup(key)
            if rule is None:
                self.finding(
                    result, ovs_name(record.host),
                    f"no DELIVER rule for {endpoint} "
                    f"[{key}] in its host's OVS table",
                    details=[
                        "inbound packets for this endpoint miss the "
                        "flow table and are dropped",
                    ],
                )
            elif rule.action.kind != ActionKind.DELIVER:
                self.finding(
                    result, ovs_name(record.host),
                    f"rule for {endpoint} [{key}] is "
                    f"{rule.action.kind.value}, expected local "
                    "delivery",
                )
            elif rule.action.local_vf != record.vf:
                self.finding(
                    result, ovs_name(record.host),
                    f"DELIVER rule for {endpoint} hands packets to "
                    f"{rule.action.local_vf}, not the endpoint's VF "
                    f"{record.vf}",
                )
            for component in (
                veth_name(endpoint),
                ovs_name(record.host),
                vtep_name(rnic),
            ):
                if overlay.health(component).down:
                    self.finding(
                        result, component,
                        f"{component} is down: {endpoint} is "
                        "statically unreachable",
                    )
        return result


class VtepSymmetryPass(VerificationPass):
    """RNIC↔underlay-IP maps are inverses; ENCAPs resolve and the
    remote side can deliver."""

    name = "overlay.vtep_symmetry"

    def run(self, context: VerificationContext) -> PassResult:
        result = self.result()
        overlay = context.cluster.overlay
        by_ip = overlay.underlay_map()
        by_rnic = overlay.rnic_underlay_ips()

        for rnic, ip in sorted(by_rnic.items()):
            result.checked += 1
            resolved = by_ip.get(ip)
            if resolved is None:
                self.finding(
                    result, rnic,
                    f"VTEP address {ip} is not resolvable back to any "
                    "RNIC (tunnel endpoint asymmetric)",
                )
            elif resolved != rnic:
                self.finding(
                    result, rnic,
                    f"VTEP address {ip} resolves to {resolved}, not "
                    "back to its owner (two RNICs share one underlay "
                    "IP?)",
                )
        for ip, rnic in sorted(by_ip.items()):
            if by_rnic.get(rnic) != ip:
                self.finding(
                    result, rnic,
                    f"underlay IP {ip} maps to {rnic}, whose own VTEP "
                    f"address is {by_rnic.get(rnic)!r}",
                )

        for host in overlay.hosts_with_tables():
            for rule in overlay.ovs_table(host).rules():
                if rule.action.kind != ActionKind.ENCAP:
                    continue
                result.checked += 1
                remote_ip = rule.action.remote_underlay_ip
                remote_rnic = by_ip.get(remote_ip)
                if remote_rnic is None:
                    self.finding(
                        result, ovs_name(host),
                        f"ENCAP rule [{rule.key}] targets underlay IP "
                        f"{remote_ip}, unknown to the fabric",
                        details=[
                            "encapsulated packets leave the VTEP and "
                            "are blackholed in the underlay",
                        ],
                    )
                    continue
                remote_table = overlay.ovs_table(remote_rnic.host)
                landing = remote_table.lookup(rule.key)
                if landing is None:
                    self.finding(
                        result, ovs_name(remote_rnic.host),
                        f"ENCAP rule [{rule.key}] on {host} reaches "
                        f"{remote_rnic.host}, which has no rule to "
                        "decapsulate it (dangling tunnel)",
                        severity=Severity.WARNING,
                    )
        return result
