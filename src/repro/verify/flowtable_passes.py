"""Flow-table passes: Batfish-style cross-table consistency.

The paper's Figure-18 case study hinges on the OVS software table and
the RNIC hardware cache agreeing: the RNIC silently invalidated an
offloaded flow, packets fell back to the software path, and latency
jumped 16 µs → 120 µs.  :func:`repro.cluster.flowtable.diff_tables`
diffs one (OVS, RNIC) pair at runtime; this pass generalizes the same
contract to the *whole cluster* statically:

* every OVS rule marked ``offloaded`` resolves in **exactly one** RNIC
  cache on its host — the one named by ``offloaded_to``;
* the hardware copy carries the **same action** as the software rule;
* no RNIC cache holds a rule with no OVS counterpart (stale hardware
  entry) or one its host's OVS table does not claim to have offloaded
  (unaccounted hardware rule).
"""

from __future__ import annotations

from typing import Dict

from repro.cluster.flowtable import FlowKey, FlowRule
from repro.cluster.identifiers import HostId, RnicId
from repro.verify.framework import (
    PassResult,
    Severity,
    VerificationContext,
    VerificationPass,
)

__all__ = ["OffloadConsistencyPass"]


class OffloadConsistencyPass(VerificationPass):
    """Cluster-wide OVS ↔ RNIC offload-cache agreement."""

    name = "flowtable.offload_consistency"

    def run(self, context: VerificationContext) -> PassResult:
        result = self.result()
        overlay = context.cluster.overlay
        # Hardware state, grouped by the host the RNIC lives on.
        hw_by_host: Dict[HostId, Dict[RnicId, Dict[FlowKey, FlowRule]]] = {}
        for rnic in overlay.offload_rnics():
            table = overlay.offload_table(rnic)
            hw_by_host.setdefault(rnic.host, {})[rnic] = {
                rule.key: rule for rule in table.rules()
            }

        claimed: Dict[RnicId, set] = {}  # keys OVS says each RNIC holds
        for host in overlay.hosts_with_tables():
            ovs = overlay.ovs_table(host)
            host_hw = hw_by_host.get(host, {})
            for rule in ovs.rules():
                result.checked += 1
                if rule.offloaded:
                    self._check_offloaded(
                        result, host, rule, host_hw, claimed
                    )
                else:
                    self._check_software(result, host, rule, host_hw)

        # Reverse direction: every hardware rule must be claimed by the
        # host's OVS table.
        for host, tables in sorted(hw_by_host.items()):
            ovs = overlay.ovs_table(host)
            for rnic, rules in sorted(tables.items()):
                for key, hw_rule in sorted(rules.items()):
                    result.checked += 1
                    sw = ovs.lookup(key)
                    if sw is None:
                        self.finding(
                            result, rnic,
                            f"stale hardware rule [{key}] has no OVS "
                            "counterpart on its host",
                            details=[
                                f"host {host} OVS table has no rule "
                                f"for {key}",
                                "hardware serves a flow the control "
                                "plane no longer knows",
                            ],
                        )
                    elif key not in claimed.get(rnic, set()):
                        self.finding(
                            result, rnic,
                            f"unaccounted hardware rule [{key}]: the "
                            "host's OVS table does not claim this "
                            "RNIC holds it",
                            details=[
                                f"OVS rule offloaded="
                                f"{sw.offloaded}, offloaded_to="
                                f"{sw.offloaded_to}",
                            ],
                            severity=Severity.WARNING,
                        )
        return result

    def _check_offloaded(
        self,
        result: PassResult,
        host: HostId,
        rule: FlowRule,
        host_hw: Dict[RnicId, Dict[FlowKey, FlowRule]],
        claimed: Dict[RnicId, set],
    ) -> None:
        if rule.offloaded_to is None:
            self.finding(
                result, f"ovs:{host}",
                f"rule [{rule.key}] marked offloaded but names no "
                "RNIC (offloaded_to unset)",
            )
            return
        holders = [
            rnic for rnic, rules in host_hw.items()
            if rule.key in rules
        ]
        target = next(
            (r for r in host_hw if str(r) == rule.offloaded_to), None
        )
        if target is None:
            self.finding(
                result, rule.offloaded_to,
                f"rule [{rule.key}] marked offloaded to "
                f"{rule.offloaded_to}, but that RNIC has no hardware "
                "cache on this host",
                details=[
                    f"host {host} caches: "
                    + (", ".join(str(r) for r in sorted(host_hw))
                       or "(none)"),
                ],
            )
            return
        if target not in holders:
            self.finding(
                result, rule.offloaded_to,
                f"rule [{rule.key}] marked offloaded in OVS but "
                "absent from the RNIC cache (silent invalidation)",
                details=[
                    f"OVS on {host} believes {rule.offloaded_to} "
                    "holds the rule",
                    "packets for this flow fall back to the software "
                    "path (Figure-18 failure mode)",
                ],
            )
        else:
            hw_rule = host_hw[target][rule.key]
            if hw_rule.action != rule.action:
                self.finding(
                    result, rule.offloaded_to,
                    f"hardware action for [{rule.key}] differs from "
                    "the OVS action",
                    details=[
                        f"OVS:  {rule.action}",
                        f"RNIC: {hw_rule.action}",
                        "hardware forwards this flow differently "
                        "from the control plane's intent",
                    ],
                )
            # Claimed even on an action mismatch: that divergence has
            # its own finding above and is not *also* unaccounted.
            claimed.setdefault(target, set()).add(rule.key)
        extra = [r for r in holders if r != target]
        for rnic in sorted(extra):
            self.finding(
                result, rnic,
                f"rule [{rule.key}] resolves in more than one RNIC "
                f"cache on {host} (offloaded_to names "
                f"{rule.offloaded_to})",
                details=[
                    "an offloaded rule must live in exactly one "
                    "hardware cache per host",
                ],
            )

    def _check_software(
        self,
        result: PassResult,
        host: HostId,
        rule: FlowRule,
        host_hw: Dict[RnicId, Dict[FlowKey, FlowRule]],
    ) -> None:
        holders = [
            rnic for rnic, rules in host_hw.items()
            if rule.key in rules
        ]
        for rnic in sorted(holders):
            self.finding(
                result, rnic,
                f"rule [{rule.key}] is not marked offloaded, yet "
                "this RNIC's cache holds it",
                details=[
                    "OVS would re-punt first packets while hardware "
                    "short-circuits them: state divergence",
                ],
                severity=Severity.WARNING,
            )
