"""Determinism lint: an AST checker for the simulator's own code.

Reproducible simulation is a *code* property, not just a seed: one call
to ``time.time()`` or ``np.random.rand()`` in a hot path silently
breaks run-for-run determinism, and a broad ``except`` in the
localization core can swallow the very model-drift errors static
verification exists to surface.  This linter walks the AST of
``src/repro`` and enforces:

``wall-clock``
    No ``time.time``/``time.time_ns`` and no ``datetime.now`` /
    ``utcnow`` / ``today`` anywhere in sim code.  Monotonic timers
    (``time.perf_counter``, ``time.monotonic``) stay allowed — the
    observability layer measures wall *durations* with them, which
    never feeds back into simulated behaviour.

``unseeded-random``
    No stdlib ``random`` at all, and no ``np.random.<fn>`` module-level
    calls outside ``sim/rng.py`` (the one place seeded generators are
    minted).  Passing ``np.random.Generator`` objects around is fine —
    the rule targets the *global* generators.

``broad-except``
    No bare ``except:`` and no ``except Exception/BaseException`` in
    ``core/`` — handlers there must name the failure they expect and
    let everything else propagate.

``mutable-default``
    No list/dict/set literals (or ``list()``/``dict()``/``set()``
    calls) as default argument values.

``shared-instance-default``
    No constructor call (``Name(...)`` with a capitalized name, e.g.
    ``AgentResourceModel()``) as a default argument value.  Like a
    mutable literal, the instance is built once at ``def`` time and
    shared by every call — two agents handed the same default resource
    model mutate each other's state.

``retry-without-backoff``
    A loop that visibly retries (its loop variable or ``while`` test
    names an ``attempt``/``retry`` counter) must space its attempts:
    somewhere in the body a call whose name mentions ``backoff``,
    ``sleep``, ``delay``, or ``wait`` must appear (e.g.
    ``RetryPolicy.backoff_s``).  A bare retry loop hammers the failing
    dependency and, in sim code, collapses every attempt onto one
    timestamp.

``telemetry-write``
    Telemetry must flow through the bus recorder, not ad-hoc files: a
    write-mode ``open()`` inside the observability/bus layers
    (``obs/``, ``bus/``), or an ``open()`` anywhere whose literal path
    ends in ``.jsonl``, is flagged.  The sanctioned writers — the
    JSONL recorder (``bus/recorder.py``) and the trace exporter
    (``obs/export.py``) — are exempted by name, the same mechanism as
    the RNG exemption for ``sim/rng.py``.  Side-channel telemetry
    files bypass the recording's sequencing, fingerprint, and footer,
    so a replay can never prove it saw everything the run emitted.

``worker-determinism``
    Functions handed to ``multiprocessing`` as worker entry points
    (the ``target=`` of a ``Process(...)`` call, or the function
    argument of a pool ``map``/``starmap``/``apply``/``apply_async``/
    ``imap``) must not call ``time.perf_counter``/``time.monotonic``,
    ``os.getpid``, ``os.urandom``, or ``uuid.uuid4``.  In single-
    process code monotonic timers are harmless observability; inside a
    forked worker any of these is a covert per-process input that makes
    shard results depend on which process ran them.

Spelled names are canonicalized through the shared
:class:`~repro.verify.resolver.ImportTable` before any rule matches,
so ``from time import time``, ``import numpy.random as npr``, and
``from datetime import datetime as dt`` are caught the same as their
fully-spelled forms — the alias gray zone the PR-2 lint left open.

A trailing ``# lint: allow(<rule>[, <rule>...])`` comment suppresses
one line; naming a rule the linter doesn't know is itself a violation
(``unknown-suppression``), so a typo can't silently disable a check.
The shipped tree carries zero suppressions, and the pytest in
``tests/verify/test_lint.py`` keeps it that way.  Run standalone with
``python -m repro.verify --lint [paths...]``.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.verify.resolver import ImportTable, dotted_name as _dotted_name

__all__ = [
    "DeterminismLinter",
    "LintViolation",
    "default_lint_root",
    "lint_paths",
]

_WALL_CLOCK = "wall-clock"
_UNSEEDED = "unseeded-random"
_BROAD_EXCEPT = "broad-except"
_MUTABLE_DEFAULT = "mutable-default"
_SHARED_DEFAULT = "shared-instance-default"
_WORKER_DETERMINISM = "worker-determinism"
_RETRY_NO_BACKOFF = "retry-without-backoff"
_TELEMETRY_WRITE = "telemetry-write"
_UNKNOWN_SUPPRESSION = "unknown-suppression"

#: Every rule a suppression comment may legally name.
_KNOWN_RULES = frozenset({
    _WALL_CLOCK,
    _UNSEEDED,
    _BROAD_EXCEPT,
    _MUTABLE_DEFAULT,
    _SHARED_DEFAULT,
    _WORKER_DETERMINISM,
    _RETRY_NO_BACKOFF,
    _TELEMETRY_WRITE,
})

#: Dotted-call suffixes that read the wall clock.
_WALL_CLOCK_CALLS = (
    "time.time",
    "time.time_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: Module-level numpy randomness roots (``np.random.rand`` etc.).
_NP_RANDOM_ROOTS = ("np.random.", "numpy.random.")

#: Files (relative, ``/``-separated suffixes) allowed to touch the
#: global numpy RNG machinery: the seeded-stream registry itself.
_RNG_EXEMPT_SUFFIXES = ("sim/rng.py",)

#: Directories (path fragments) where broad excepts are forbidden.
_BROAD_EXCEPT_SCOPE = ("core",)

_MUTABLE_CALLS = ("list", "dict", "set", "bytearray")

#: Dotted-call suffixes that are per-process inputs: harmless in
#: single-process code, nondeterministic inside a forked worker.
_WORKER_FORBIDDEN_CALLS = (
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "os.getpid",
    "os.urandom",
    "uuid.uuid4",
)

#: Directories (path fragments) whose write-mode ``open()`` calls are
#: telemetry writes by construction.
_TELEMETRY_SCOPE = ("obs", "bus")

#: Files (relative, ``/``-separated suffixes) allowed to open telemetry
#: files for writing: the recorder and the trace exporter.
_TELEMETRY_EXEMPT_SUFFIXES = ("bus/recorder.py", "obs/export.py")

#: Loop-variable / test-name fragments that mark a loop as a retry loop.
_RETRY_NAME_FRAGMENTS = ("attempt", "retry", "retries")

#: Call-name fragments that count as spacing the attempts out.
_BACKOFF_NAME_FRAGMENTS = ("backoff", "sleep", "delay", "wait")

#: Pool methods whose first argument is a worker entry point.
_POOL_DISPATCH_METHODS = (
    "map", "map_async", "imap", "imap_unordered",
    "starmap", "starmap_async", "apply", "apply_async", "submit",
)


@dataclass(frozen=True)
class LintViolation:
    """One rule violation at a precise source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """The ``path:line:col: rule: message`` display form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: " \
               f"{self.message}"


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set,
                         ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CALLS
    return False


def _constructor_name(node: ast.AST) -> Optional[str]:
    """The dotted name of a constructor-style call (``Class(...)`` or
    ``pkg.Class(...)``), identified by a capitalized final segment."""
    if not isinstance(node, ast.Call):
        return None
    dotted = _dotted_name(node.func)
    if dotted is None:
        return None
    last = dotted.rsplit(".", 1)[-1]
    if last[:1].isupper():
        return dotted
    return None


def _open_write_mode(node: ast.Call) -> Optional[str]:
    """The literal mode string of a write-capable ``open()`` call.

    ``None`` for read-only opens and for dynamic (non-literal) modes —
    the rule only fires on provable writes.
    """
    mode = "r"
    if len(node.args) >= 2:
        arg = node.args[1]
        if not (isinstance(arg, ast.Constant)
                and isinstance(arg.value, str)):
            return None
        mode = arg.value
    for keyword in node.keywords:
        if keyword.arg == "mode":
            value = keyword.value
            if not (isinstance(value, ast.Constant)
                    and isinstance(value.value, str)):
                return None
            mode = value.value
    if any(flag in mode for flag in "wax+"):
        return mode
    return None


def _opens_jsonl_literal(node: ast.Call) -> bool:
    """Whether the ``open()`` call's literal path ends in ``.jsonl``."""
    if not node.args:
        return False
    arg = node.args[0]
    return (isinstance(arg, ast.Constant)
            and isinstance(arg.value, str)
            and arg.value.endswith(".jsonl"))


class _Visitor(ast.NodeVisitor):
    """Collects violations for one module."""

    def __init__(
        self,
        path: str,
        rng_exempt: bool,
        broad_except_scoped: bool,
        allowed: Dict[int, set],
        telemetry_scoped: bool = False,
        telemetry_exempt: bool = False,
        imports: Optional[ImportTable] = None,
    ) -> None:
        self.path = path
        self.rng_exempt = rng_exempt
        self.broad_except_scoped = broad_except_scoped
        self.telemetry_scoped = telemetry_scoped
        self.telemetry_exempt = telemetry_exempt
        self.allowed = allowed
        self.imports = imports if imports is not None else ImportTable()
        self.violations: List[LintViolation] = []
        #: Simple names handed to multiprocessing as entry points.
        self.worker_names: set = set()
        #: Every function definition in the module, by simple name.
        self.function_defs: Dict[str, List[ast.AST]] = {}

    # -- helpers -------------------------------------------------------

    def _emit(
        self, node: ast.AST, rule: str, message: str
    ) -> None:
        line = getattr(node, "lineno", 0)
        if rule in self.allowed.get(line, set()):
            return
        self.violations.append(LintViolation(
            path=self.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
        ))

    # -- calls: wall clock and randomness ------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        spelled = _dotted_name(node.func)
        resolved = None
        if spelled is not None:
            resolved = self.imports.resolve(spelled)
            self._check_call(node, resolved, spelled)
        self._check_telemetry_write(node)
        self._collect_worker_targets(node, resolved)
        self.generic_visit(node)

    def _spell(self, spelled: str, resolved: str) -> str:
        """Display form: the spelled name, plus what it resolves to
        when an import alias hides the canonical path."""
        if resolved == spelled:
            return spelled
        return f"{spelled} (= {resolved})"

    def _check_telemetry_write(self, node: ast.Call) -> None:
        """Direct ``open(..., "w")`` telemetry writes bypass the bus
        recorder; fires in obs/bus-scoped files and, anywhere, on a
        write-mode open of a literal ``*.jsonl`` path."""
        if self.telemetry_exempt:
            return
        if not (isinstance(node.func, ast.Name)
                and node.func.id == "open"):
            return
        mode = _open_write_mode(node)
        if mode is None:
            return
        if self.telemetry_scoped or _opens_jsonl_literal(node):
            self._emit(
                node, _TELEMETRY_WRITE,
                f"direct open(..., {mode!r}) writes telemetry outside "
                "the recorder; publish on the TelemetryBus and let "
                "JsonlRecorder persist it",
            )

    def _collect_worker_targets(
        self, node: ast.Call, dotted: Optional[str]
    ) -> None:
        """Remember functions dispatched as multiprocessing workers."""
        if dotted is None:
            return
        last = dotted.rsplit(".", 1)[-1]
        if last.endswith("Process"):
            for keyword in node.keywords:
                if keyword.arg == "target" and isinstance(
                    keyword.value, ast.Name
                ):
                    self.worker_names.add(keyword.value.id)
        elif last in _POOL_DISPATCH_METHODS and "." in dotted:
            if node.args and isinstance(node.args[0], ast.Name):
                self.worker_names.add(node.args[0].id)

    def _check_call(
        self, node: ast.Call, dotted: str, spelled: str
    ) -> None:
        label = self._spell(spelled, dotted)
        for forbidden in _WALL_CLOCK_CALLS:
            if dotted == forbidden or dotted.endswith("." + forbidden):
                self._emit(
                    node, _WALL_CLOCK,
                    f"call to {label}() reads the wall clock; sim "
                    "code must take time from the simulation engine",
                )
                return
        if dotted.startswith("random.") or dotted == "random.random":
            self._emit(
                node, _UNSEEDED,
                f"call to {label}() uses the global stdlib RNG; "
                "draw from a named RngRegistry stream instead",
            )
            return
        if not self.rng_exempt:
            for root in _NP_RANDOM_ROOTS:
                if dotted.startswith(root):
                    self._emit(
                        node, _UNSEEDED,
                        f"call to {label}() touches numpy's global "
                        "RNG machinery outside sim/rng.py; draw from "
                        "a named RngRegistry stream instead",
                    )
                    return

    # -- stdlib random imports -----------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self._emit(
                    node, _UNSEEDED,
                    "stdlib 'random' imported; sim code must use "
                    "seeded RngRegistry streams",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._emit(
                node, _UNSEEDED,
                "stdlib 'random' imported; sim code must use seeded "
                "RngRegistry streams",
            )
        self.generic_visit(node)

    # -- broad except --------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self.broad_except_scoped:
            broad = self._broad_name(node.type)
            if broad is not None:
                self._emit(
                    node, _BROAD_EXCEPT,
                    f"{broad} swallows unexpected failures; catch the "
                    "narrow exception the callee actually raises",
                )
        self.generic_visit(node)

    @staticmethod
    def _broad_name(node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return "bare 'except:'"
        names: Iterable[ast.AST]
        if isinstance(node, ast.Tuple):
            names = node.elts
        else:
            names = (node,)
        for element in names:
            dotted = _dotted_name(element)
            if dotted in ("Exception", "BaseException"):
                return f"'except {dotted}'"
        return None

    # -- mutable defaults ----------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.function_defs.setdefault(node.name, []).append(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.function_defs.setdefault(node.name, []).append(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                self._emit(
                    default, _MUTABLE_DEFAULT,
                    "mutable default argument is shared across calls; "
                    "use None plus an in-body fallback",
                )
                continue
            constructor = _constructor_name(default)
            if constructor is not None:
                self._emit(
                    default, _SHARED_DEFAULT,
                    f"default {constructor}(...) builds one instance "
                    "at def time, shared by every call; default to "
                    "None and construct per call in the body",
                )

    # -- retry loops without backoff -----------------------------------

    def visit_For(self, node: ast.For) -> None:
        names = {
            n.id.lower()
            for n in ast.walk(node.target)
            if isinstance(n, ast.Name)
        }
        if self._names_look_like_retry(names):
            self._check_retry_loop(node)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        names = set()
        for sub in ast.walk(node.test):
            if isinstance(sub, ast.Name):
                names.add(sub.id.lower())
            elif isinstance(sub, ast.Attribute):
                names.add(sub.attr.lower())
        if self._names_look_like_retry(names):
            self._check_retry_loop(node)
        self.generic_visit(node)

    @staticmethod
    def _names_look_like_retry(names: Iterable[str]) -> bool:
        return any(
            fragment in name
            for name in names
            for fragment in _RETRY_NAME_FRAGMENTS
        )

    def _check_retry_loop(self, node) -> None:
        """A retry loop must space attempts via a backoff/sleep call."""
        calls = [
            sub for stmt in node.body for sub in ast.walk(stmt)
            if isinstance(sub, ast.Call)
        ]
        if not calls:
            return
        for call in calls:
            dotted = _dotted_name(call.func)
            if dotted is None:
                continue
            last = dotted.rsplit(".", 1)[-1].lower()
            if any(f in last for f in _BACKOFF_NAME_FRAGMENTS):
                return
        self._emit(
            node, _RETRY_NO_BACKOFF,
            "retry loop without backoff hammers the failing "
            "dependency; space attempts with a backoff/sleep/delay "
            "call (e.g. RetryPolicy.backoff_s)",
        )

    # -- worker determinism (post-pass) --------------------------------

    def check_workers(self) -> None:
        """Scan multiprocessing worker entry points for per-process
        inputs.  Runs after the main visit, once all ``Process(...)``
        dispatch sites and function definitions have been collected.
        The check is direct (the entry point's own body), not
        transitive through its callees."""
        for name in sorted(self.worker_names):
            for definition in self.function_defs.get(name, []):
                for sub in ast.walk(definition):
                    if not isinstance(sub, ast.Call):
                        continue
                    spelled = _dotted_name(sub.func)
                    if spelled is None:
                        continue
                    dotted = self.imports.resolve(spelled)
                    for forbidden in _WORKER_FORBIDDEN_CALLS:
                        if dotted == forbidden or dotted.endswith(
                            "." + forbidden
                        ):
                            self._emit(
                                sub, _WORKER_DETERMINISM,
                                f"worker entry point '{name}' calls "
                                f"{self._spell(spelled, dotted)}(); "
                                "per-process inputs make shard "
                                "results depend on which process "
                                "ran them",
                            )


def _allowed_lines(
    source: str,
) -> Tuple[Dict[int, Set[str]], List[Tuple[int, str]]]:
    """Per-line rule suppressions from ``# lint: allow(rule, ...)``.

    Returns ``(allowed, unknown)``: the per-line sets of *known* rule
    names, and every ``(line, name)`` pair naming a rule the linter
    does not have.  Unknown names never suppress anything — a typo'd
    ``allow(wallclock)`` would otherwise silently disable nothing
    while its author believes the line is covered.
    """
    allowed: Dict[int, Set[str]] = {}
    unknown: List[Tuple[int, str]] = []
    for number, text in _comment_tokens(source):
        match = re.match(r"#\s*lint:\s*allow\((?P<rules>[^)]*)\)", text)
        if match is None:
            if re.match(r"#\s*lint:\s*allow\b", text):
                unknown.append((number, "<unclosed>"))
            continue
        rules = {
            r.strip()
            for r in match.group("rules").split(",")
            if r.strip()
        }
        for rule in sorted(rules - _KNOWN_RULES):
            unknown.append((number, rule))
        known = rules & _KNOWN_RULES
        if known:
            allowed[number] = known
    return allowed, unknown


def _comment_tokens(source: str) -> List[Tuple[int, str]]:
    """Every ``(line, text)`` comment in ``source``.

    Tokenizing (rather than scanning lines) keeps docstrings and
    string literals that merely *mention* the suppression marker from
    being parsed as suppressions.
    """
    comments: List[Tuple[int, str]] = []
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparseable tail: the AST pass reports the syntax error.
        pass
    return comments


class DeterminismLinter:
    """Walks python sources and applies the determinism rules."""

    def __init__(
        self,
        rng_exempt_suffixes: Sequence[str] = _RNG_EXEMPT_SUFFIXES,
        broad_except_scope: Sequence[str] = _BROAD_EXCEPT_SCOPE,
        telemetry_scope: Sequence[str] = _TELEMETRY_SCOPE,
        telemetry_exempt_suffixes: Sequence[str] =
        _TELEMETRY_EXEMPT_SUFFIXES,
    ) -> None:
        self.rng_exempt_suffixes = tuple(rng_exempt_suffixes)
        self.broad_except_scope = tuple(broad_except_scope)
        self.telemetry_scope = tuple(telemetry_scope)
        self.telemetry_exempt_suffixes = tuple(telemetry_exempt_suffixes)

    # -- entry points --------------------------------------------------

    def lint_source(self, source: str, path: str) -> List[LintViolation]:
        """Lint one module's source text."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [LintViolation(
                path=path, line=error.lineno or 0,
                col=error.offset or 0, rule="syntax-error",
                message=str(error.msg),
            )]
        normalized = path.replace(os.sep, "/")
        allowed, unknown = _allowed_lines(source)
        visitor = _Visitor(
            path=path,
            rng_exempt=any(
                normalized.endswith(suffix)
                for suffix in self.rng_exempt_suffixes
            ),
            broad_except_scoped=any(
                f"/{scope}/" in normalized
                for scope in self.broad_except_scope
            ),
            telemetry_scoped=any(
                f"/{scope}/" in normalized
                for scope in self.telemetry_scope
            ),
            telemetry_exempt=any(
                normalized.endswith(suffix)
                for suffix in self.telemetry_exempt_suffixes
            ),
            allowed=allowed,
            imports=ImportTable.from_tree(tree),
        )
        visitor.visit(tree)
        visitor.check_workers()
        for line, rule in unknown:
            visitor.violations.append(LintViolation(
                path=path, line=line, col=0,
                rule=_UNKNOWN_SUPPRESSION,
                message=f"allow({rule}) names no known lint rule; "
                        "known rules: "
                        + ", ".join(sorted(_KNOWN_RULES)),
            ))
        return sorted(
            visitor.violations, key=lambda v: (v.line, v.col, v.rule)
        )

    def lint_file(self, path: str) -> List[LintViolation]:
        """Lint one file on disk."""
        with open(path, "r", encoding="utf-8") as handle:
            return self.lint_source(handle.read(), path)

    def lint_paths(
        self, paths: Iterable[str]
    ) -> Tuple[List[LintViolation], int]:
        """Lint files and/or directory trees; returns (violations,
        files linted)."""
        violations: List[LintViolation] = []
        count = 0
        for path in paths:
            if os.path.isdir(path):
                for name in sorted(self._python_files(path)):
                    violations.extend(self.lint_file(name))
                    count += 1
            else:
                violations.extend(self.lint_file(path))
                count += 1
        return violations, count

    @staticmethod
    def _python_files(root: str) -> List[str]:
        found: List[str] = []
        for directory, _, names in os.walk(root):
            for name in names:
                if name.endswith(".py"):
                    found.append(os.path.join(directory, name))
        return found


def default_lint_root() -> str:
    """The installed ``repro`` package directory (what CI lints)."""
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def lint_paths(
    paths: Optional[Sequence[str]] = None,
) -> Tuple[List[LintViolation], int]:
    """Module-level convenience: lint ``paths`` (default: the package)."""
    linter = DeterminismLinter()
    return linter.lint_paths(list(paths) if paths else
                             [default_lint_root()])
