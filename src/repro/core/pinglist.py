"""Phased ping-list generation (§5.1 of the paper).

SkeletonHunter builds its probing matrix in three phases:

1. **Preload** — at task submission, before any container exists, drop
   every cross-rail pair from the full endpoint mesh.  Rail-optimized
   topologies plus NCCL's cross-rail-to-NVLink conversion guarantee
   training traffic stays in-rail, so this alone cuts the list by the
   rail count (8x for standard hosts).
2. **Initialization** — activate pairs *incrementally* in the data plane:
   a pair only becomes probe-able once its destination container has
   registered.  This kills the false positives that controller-driven
   activation would raise while containers are still starting up.
3. **Runtime** — once traffic skeletons are inferred, restrict the list
   to pairs the training traffic actually traverses (>95% further cut).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Set

from repro.cluster.identifiers import ContainerId, EndpointId

__all__ = ["PingList", "PingListPhase", "ProbePair"]


@dataclass(frozen=True, order=True)
class ProbePair:
    """One probing assignment: ``src`` pings ``dst``.

    Pairs are stored in canonical (sorted) order so that each unordered
    endpoint pair contributes exactly one probing task per round.
    """

    src: EndpointId
    dst: EndpointId

    @staticmethod
    def canonical(a: EndpointId, b: EndpointId) -> "ProbePair":
        """The canonical pair for two endpoints (order-insensitive)."""
        if a == b:
            raise ValueError("a probe pair needs two distinct endpoints")
        first, second = sorted((a, b))
        return ProbePair(first, second)

    def involves(self, endpoint: EndpointId) -> bool:
        """Whether ``endpoint`` is one side of the pair."""
        return endpoint in (self.src, self.dst)

    def other(self, endpoint: EndpointId) -> EndpointId:
        """The peer of ``endpoint`` in this pair."""
        if endpoint == self.src:
            return self.dst
        if endpoint == self.dst:
            return self.src
        raise ValueError(f"{endpoint} is not part of {self}")


class PingListPhase:
    """Which generation phase produced a ping list."""

    FULL_MESH = "full_mesh"
    BASIC = "basic"          # preload: same-rail pruning
    SKELETON = "skeleton"    # runtime: traffic-skeleton pruning


@dataclass
class PingList:
    """A set of probe pairs plus data-plane activation state."""

    pairs: Set[ProbePair] = field(default_factory=set)
    phase: str = PingListPhase.BASIC
    _registered: Set[ContainerId] = field(default_factory=set)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def full_mesh(cls, endpoints: Iterable[EndpointId]) -> "PingList":
        """Every cross-container endpoint pair (the Pingmesh baseline)."""
        eps = sorted(endpoints)
        pairs = {
            ProbePair(eps[i], eps[j])
            for i in range(len(eps))
            for j in range(i + 1, len(eps))
            if eps[i].container != eps[j].container
        }
        return cls(pairs=pairs, phase=PingListPhase.FULL_MESH)

    @classmethod
    def basic(
        cls,
        endpoints: Iterable[EndpointId],
        rail_of: Callable[[EndpointId], int],
    ) -> "PingList":
        """The preload list: cross-container pairs on the same rail."""
        by_rail: Dict[int, List[EndpointId]] = {}
        for endpoint in sorted(endpoints):
            by_rail.setdefault(rail_of(endpoint), []).append(endpoint)
        pairs: Set[ProbePair] = set()
        for rail_endpoints in by_rail.values():
            n = len(rail_endpoints)
            for i in range(n):
                for j in range(i + 1, n):
                    a, b = rail_endpoints[i], rail_endpoints[j]
                    if a.container != b.container:
                        pairs.add(ProbePair(a, b))
        return cls(pairs=pairs, phase=PingListPhase.BASIC)

    @classmethod
    def from_edges(
        cls, edges: Iterable[FrozenSet[EndpointId]]
    ) -> "PingList":
        """The runtime list: exactly the inferred skeleton's edges."""
        pairs = set()
        for edge in edges:
            members = sorted(edge)
            if len(members) != 2:
                raise ValueError(f"skeleton edge must have two endpoints, "
                                 f"got {len(members)}")
            pairs.add(ProbePair(members[0], members[1]))
        return cls(pairs=pairs, phase=PingListPhase.SKELETON)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.pairs)

    def targets_of(self, src: EndpointId) -> List[EndpointId]:
        """All peers ``src`` should ping (activation-agnostic)."""
        return sorted(
            pair.other(src) for pair in self.pairs if pair.involves(src)
        )

    def restrict_to(
        self, edges: Iterable[FrozenSet[EndpointId]]
    ) -> "PingList":
        """Keep only pairs whose endpoints form an edge in ``edges``."""
        wanted = {
            ProbePair.canonical(*sorted(edge)) for edge in edges
        }
        restricted = PingList(
            pairs=self.pairs & wanted, phase=PingListPhase.SKELETON
        )
        restricted._registered = set(self._registered)
        return restricted

    # ------------------------------------------------------------------
    # Incremental activation (initialization phase)
    # ------------------------------------------------------------------

    def register(self, container: ContainerId) -> None:
        """Mark a container as RUNNING and probe-able."""
        self._registered.add(container)

    def deregister(self, container: ContainerId) -> None:
        """Remove a container (terminated or crashed *gracefully*).

        Note: an ungraceful crash does NOT deregister — its peers keep
        probing it and correctly observe unconnectivity.
        """
        self._registered.discard(container)

    def is_active(self, pair: ProbePair) -> bool:
        """Whether both sides of ``pair`` have registered."""
        return (
            pair.src.container in self._registered
            and pair.dst.container in self._registered
        )

    def active_pairs(self) -> List[ProbePair]:
        """All pairs whose endpoints have both registered, sorted."""
        return sorted(p for p in self.pairs if self.is_active(p))

    def activation_ratio(self) -> float:
        """Fraction of pairs currently active."""
        if not self.pairs:
            return 0.0
        return len(self.active_pairs()) / len(self.pairs)
