"""RNIC flow-table validation (§5.3, "Validating RNICs").

When neither the overlay walk nor underlay tomography explains a failure,
SkeletonHunter dumps the flow tables offloaded from OVS to the RNICs on
both sides of the failing pair and diffs them against the OVS software
tables.  Disagreements pinpoint the RNIC or the virtual switch:

* OVS says *offloaded* but the hardware cache lacks the rule — the RNIC
  silently invalidated it (the Figure-18 case; repetitive offloading).
* rules stuck on the software path (never offloaded) — either one RNIC
  cannot offload (offloading failure) or the host's virtual switch has
  stopped using RDMA entirely.
* stale or divergent hardware rules — RNIC-side corruption.

The dump is flagged as *intrusive*: the paper notes it can temporarily
degrade the data plane, so the localizer only reaches for it last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from repro.cluster.flowtable import FlowInconsistency, diff_tables
from repro.cluster.identifiers import RnicId
from repro.cluster.orchestrator import Cluster

__all__ = ["RnicFinding", "RnicValidator"]


@dataclass(frozen=True)
class RnicFinding:
    """Result of validating one RNIC against its host's OVS table."""

    rnic: RnicId
    inconsistencies: List[FlowInconsistency]
    invalidation_count: int

    @property
    def suspicious(self) -> bool:
        """Whether the diff found anything at all."""
        return bool(self.inconsistencies)

    @property
    def silently_invalidated(self) -> int:
        """Rules OVS believes are in hardware but are not (Figure 18)."""
        return sum(
            1 for item in self.inconsistencies
            if "absent from RNIC" in item.reason
        )

    @property
    def software_path_rules(self) -> int:
        """Rules that never made it into hardware."""
        return sum(
            1 for item in self.inconsistencies
            if "not offloaded" in item.reason
        )

    def as_fields(self, examples: int = 3) -> Dict[str, object]:
        """A JSON-serializable view of the finding (for trace events)."""
        return {
            "rnic": str(self.rnic),
            "inconsistencies": len(self.inconsistencies),
            "silently_invalidated": self.silently_invalidated,
            "software_path_rules": self.software_path_rules,
            "invalidation_count": self.invalidation_count,
            "examples": [
                item.reason for item in self.inconsistencies[:examples]
            ],
        }


class RnicValidator:
    """Dumps and diffs OVS vs RNIC hardware flow tables."""

    def __init__(self, cluster: Cluster) -> None:
        self._cluster = cluster
        self.dumps_performed = 0

    def validate(self, rnic: RnicId) -> RnicFinding:
        """Diff one RNIC's hardware cache against its host's OVS table."""
        overlay = self._cluster.overlay
        self.dumps_performed += 1
        ovs = overlay.ovs_table(rnic.host)
        hw = overlay.offload_table(rnic)
        inconsistencies = diff_tables(ovs, hw, rnic_name=str(rnic))
        return RnicFinding(
            rnic=rnic,
            inconsistencies=inconsistencies,
            invalidation_count=hw.invalidations,
        )

    def validate_many(
        self, rnics: Iterable[RnicId]
    ) -> Dict[RnicId, RnicFinding]:
        """Validate several RNICs, deduplicated, in sorted order."""
        findings: Dict[RnicId, RnicFinding] = {}
        for rnic in sorted(set(rnics)):
            findings[rnic] = self.validate(rnic)
        return findings
