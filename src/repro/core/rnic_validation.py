"""RNIC flow-table validation (§5.3, "Validating RNICs").

When neither the overlay walk nor underlay tomography explains a failure,
SkeletonHunter dumps the flow tables offloaded from OVS to the RNICs on
both sides of the failing pair and diffs them against the OVS software
tables.  Disagreements pinpoint the RNIC or the virtual switch:

* OVS says *offloaded* but the hardware cache lacks the rule — the RNIC
  silently invalidated it (the Figure-18 case; repetitive offloading).
* rules stuck on the software path (never offloaded) — either one RNIC
  cannot offload (offloading failure) or the host's virtual switch has
  stopped using RDMA entirely.
* stale or divergent hardware rules — RNIC-side corruption.

The dump is flagged as *intrusive*: the paper notes it can temporarily
degrade the data plane, so the localizer only reaches for it last.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.cluster.flowtable import FlowInconsistency, diff_tables
from repro.cluster.identifiers import RnicId
from repro.cluster.orchestrator import Cluster
from repro.core.resilience import RetryPolicy

__all__ = ["RnicFinding", "RnicValidator"]


@dataclass(frozen=True)
class RnicFinding:
    """Result of validating one RNIC against its host's OVS table."""

    rnic: RnicId
    inconsistencies: List[FlowInconsistency]
    invalidation_count: int
    #: The dump itself failed (monitor-plane read error, retries
    #: exhausted): no diff evidence either way.  Callers must *skip*
    #: such findings, never read them as "clean".
    read_error: bool = False

    @property
    def suspicious(self) -> bool:
        """Whether the diff found anything at all."""
        return bool(self.inconsistencies)

    @property
    def silently_invalidated(self) -> int:
        """Rules OVS believes are in hardware but are not (Figure 18)."""
        return sum(
            1 for item in self.inconsistencies
            if "absent from RNIC" in item.reason
        )

    @property
    def software_path_rules(self) -> int:
        """Rules that never made it into hardware."""
        return sum(
            1 for item in self.inconsistencies
            if "not offloaded" in item.reason
        )

    def as_fields(self, examples: int = 3) -> Dict[str, object]:
        """A JSON-serializable view of the finding (for trace events)."""
        return {
            "rnic": str(self.rnic),
            "inconsistencies": len(self.inconsistencies),
            "silently_invalidated": self.silently_invalidated,
            "software_path_rules": self.software_path_rules,
            "invalidation_count": self.invalidation_count,
            "read_error": self.read_error,
            "examples": [
                item.reason for item in self.inconsistencies[:examples]
            ],
        }


class RnicValidator:
    """Dumps and diffs OVS vs RNIC hardware flow tables.

    With a chaos injector attached, each dump may hit a monitor-plane
    ``FLOW_TABLE_READ_ERROR``; the validator retries with keyed backoff
    and, when retries are exhausted, returns a finding flagged
    ``read_error`` — evidence of nothing, rather than a false "clean".
    """

    def __init__(
        self,
        cluster: Cluster,
        chaos=None,
        retry: Optional[RetryPolicy] = None,
        recorder=None,
    ) -> None:
        self._cluster = cluster
        self.chaos = chaos
        self.retry = (
            retry
            if retry is not None
            else RetryPolicy(seed=chaos.seed if chaos is not None else 0)
        )
        self._recorder = recorder
        self.dumps_performed = 0
        self.read_errors = 0
        self.read_retries = 0

    def validate(self, rnic: RnicId, at: float = 0.0) -> RnicFinding:
        """Diff one RNIC's hardware cache against its host's OVS table."""
        overlay = self._cluster.overlay
        self.dumps_performed += 1
        if self.chaos is not None and not self._read_succeeds(rnic, at):
            return RnicFinding(
                rnic=rnic,
                inconsistencies=[],
                invalidation_count=0,
                read_error=True,
            )
        ovs = overlay.ovs_table(rnic.host)
        hw = overlay.offload_table(rnic)
        inconsistencies = diff_tables(ovs, hw, rnic_name=str(rnic))
        return RnicFinding(
            rnic=rnic,
            inconsistencies=inconsistencies,
            invalidation_count=hw.invalidations,
        )

    def _read_succeeds(self, rnic: RnicId, at: float) -> bool:
        """Attempt the dump with bounded keyed-backoff retries."""
        key = f"flowread:{rnic}@{at!r}"
        attempt = 0
        while self.chaos.flow_table_read_fails(rnic, at, attempt):
            if attempt >= self.retry.max_retries:
                self.read_errors += 1
                if self._recorder is not None:
                    self._recorder.count("validation.read_errors")
                return False
            attempt += 1
            self.read_retries += 1
            if self._recorder is not None:
                self._recorder.count("validation.read_retries")
            at = at + self.retry.backoff_s(attempt, key=key)
        return True

    def validate_many(
        self, rnics: Iterable[RnicId], at: float = 0.0
    ) -> Dict[RnicId, RnicFinding]:
        """Validate several RNICs, deduplicated, in sorted order."""
        findings: Dict[RnicId, RnicFinding] = {}
        for rnic in sorted(set(rnics)):
            findings[rnic] = self.validate(rnic, at=at)
        return findings
