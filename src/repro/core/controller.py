"""The SkeletonHunter controller (§6 of the paper).

The controller owns per-task ping lists and drives the three ping-list
phases: it generates the *basic* (rail-pruned) list at task submission,
hands it to agents as containers come up, and — once the analyzer has
inferred a traffic skeleton — swaps in the skeleton-restricted list.

Crucially, activation is *not* the controller's job: containers register
themselves in the data plane (here: in the shared
:class:`~repro.core.pinglist.PingList` the agents hold), so the
controller never becomes the bottleneck during the thousands-per-minute
container churn of §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.container import Container, TrainingTask
from repro.cluster.identifiers import ContainerId, EndpointId, TaskId
from repro.cluster.orchestrator import Cluster
from repro.core.agent import AgentResourceModel, OverlayAgent
from repro.core.pinglist import PingList
from repro.core.probing import ResilientProber
from repro.core.resilience import CircuitBreaker, RetryPolicy
from repro.core.skeleton import InferredSkeleton

__all__ = ["Controller", "ControllerError"]


class ControllerError(RuntimeError):
    """Raised for invalid controller operations."""


@dataclass
class _TaskState:
    task: TrainingTask
    ping_list: PingList
    agents: Dict[ContainerId, OverlayAgent] = field(default_factory=dict)
    skeleton: Optional[InferredSkeleton] = None


class Controller:
    """Generates ping lists and manages per-container agents."""

    def __init__(
        self,
        cluster: Cluster,
        resources: Optional[AgentResourceModel] = None,
        release_manager=None,
        recorder=None,
        chaos=None,
        retry_policy: Optional[RetryPolicy] = None,
        bus=None,
    ) -> None:
        self.cluster = cluster
        # Constructed per instance, not shared via a default argument
        # evaluated once at import (lint rule "shared-instance-default").
        self.resources = (
            resources if resources is not None else AgentResourceModel()
        )
        # Optional AgentReleaseManager: new sidecars launch on the
        # latest published version (§8, agent evolution).
        self.release_manager = release_manager
        # Optional TraceRecorder: ping-list and agent lifecycle events.
        self.recorder = recorder
        # Optional MonitorFaultInjector: when set, every agent launches
        # with a ResilientProber (retry/backoff + circuit breaker); when
        # None, agents run the original direct path bit-identically.
        self.chaos = chaos
        self.retry_policy = retry_policy
        # Optional TelemetryBus: agents publish probe-report batches
        # and breakers publish their state transitions onto it.
        self.bus = bus
        self._tasks: Dict[TaskId, _TaskState] = {}

    # ------------------------------------------------------------------
    # Phase 1: preload
    # ------------------------------------------------------------------

    def preload_task(self, task: TrainingTask) -> PingList:
        """Generate the basic (rail-pruned) ping list for a new task."""
        if task.id in self._tasks:
            raise ControllerError(f"{task.id} already preloaded")
        endpoints = task.endpoints()
        ping_list = PingList.basic(endpoints, self._rail_of(task))
        self._tasks[task.id] = _TaskState(task=task, ping_list=ping_list)
        if self.recorder is not None:
            self.recorder.count("tasks.preloaded")
            self.recorder.event(
                "controller.preload", task=str(task.id),
                endpoints=len(endpoints), pairs=len(ping_list.pairs),
            )
        return ping_list

    def _rail_of(self, task: TrainingTask):
        def rail(endpoint: EndpointId) -> int:
            container = task.containers[endpoint.container]
            return container.rail_of(endpoint)

        return rail

    # ------------------------------------------------------------------
    # Phase 2: incremental activation via agent registration
    # ------------------------------------------------------------------

    def on_container_running(
        self, container: Container, now: float
    ) -> OverlayAgent:
        """Launch the sidecar agent for a container that just came up."""
        state = self._tasks.get(container.id.task)
        if state is None:
            raise ControllerError(
                f"{container.id.task} was never preloaded"
            )
        version = (
            self.release_manager.current_version(now)
            if self.release_manager is not None else "v1.0.0"
        )
        prober = None
        if self.chaos is not None:
            prober = ResilientProber(
                self.chaos,
                retry=self.retry_policy,
                breaker=CircuitBreaker(
                    recorder=self.recorder,
                    listener=self._breaker_listener(container.id),
                ),
                recorder=self.recorder,
                bus=self.bus,
            )
        agent = OverlayAgent(
            container=container,
            ping_list=state.ping_list,
            started_at=now,
            resources=self.resources,
            version=version,
            prober=prober,
            bus=self.bus,
        )
        state.agents[container.id] = agent
        agent.register()
        if self.recorder is not None:
            self.recorder.count("agents.started")
            self.recorder.event(
                "controller.agent_started", sim_time=now,
                container=str(container.id), version=version,
            )
        return agent

    def _breaker_listener(self, container_id: ContainerId):
        """A breaker-transition callback publishing to the bus."""
        if self.bus is None:
            return None
        key = str(container_id)
        bus = self.bus

        def on_transition(now, old_state, new_state, breaker) -> None:
            from repro.bus.core import Topic

            bus.publish(
                Topic.BREAKERS,
                sim_time=now,
                kind="transition",
                container=key,
                from_state=old_state,
                to_state=new_state,
                snapshot=list(breaker.snapshot()),
            )

        return on_transition

    def on_container_finished(self, container: Container) -> None:
        """Tear down a container's agent and deactivate its targets."""
        state = self._tasks.get(container.id.task)
        if state is None:
            return
        state.ping_list.deregister(container.id)
        removed = state.agents.pop(container.id, None)
        if removed is not None and self.recorder is not None:
            self.recorder.count("agents.stopped")
            self.recorder.event(
                "controller.agent_stopped", container=str(container.id),
            )

    # ------------------------------------------------------------------
    # Phase 3: runtime skeleton optimization
    # ------------------------------------------------------------------

    def apply_skeleton(
        self, task_id: TaskId, skeleton: InferredSkeleton
    ) -> PingList:
        """Swap the task's ping list for the skeleton-restricted one.

        Endpoints the inference quarantined (series too gappy to place
        in a group) keep their current pairs: losing telemetry about an
        RNIC is no reason to stop probing it.
        """
        state = self._state(task_id)
        before = len(state.ping_list.pairs)
        edges = skeleton.edges
        if skeleton.quarantined:
            unplaced = set(skeleton.quarantined)
            edges = set(skeleton.edges)
            for pair in state.ping_list.pairs:
                if pair.src in unplaced or pair.dst in unplaced:
                    edges.add(frozenset((pair.src, pair.dst)))
        optimized = state.ping_list.restrict_to(edges)
        state.ping_list = optimized
        state.skeleton = skeleton
        for agent in state.agents.values():
            agent.ping_list = optimized
        if self.recorder is not None:
            self.recorder.count("skeletons.applied")
            self.recorder.event(
                "controller.skeleton_applied", task=str(task_id),
                pairs_before=before, pairs_after=len(optimized.pairs),
            )
        return optimized

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _state(self, task_id: TaskId) -> _TaskState:
        state = self._tasks.get(task_id)
        if state is None:
            raise ControllerError(f"unknown task {task_id}")
        return state

    def ping_list_of(self, task_id: TaskId) -> PingList:
        """The current ping list of ``task_id``."""
        return self._state(task_id).ping_list

    def skeleton_of(self, task_id: TaskId) -> Optional[InferredSkeleton]:
        """The applied skeleton, if phase 3 has run."""
        return self._state(task_id).skeleton

    def agents_of(self, task_id: TaskId) -> List[OverlayAgent]:
        """Live agents of ``task_id``, sorted by container."""
        state = self._state(task_id)
        return [state.agents[c] for c in sorted(state.agents)]

    def phase_of(self, task_id: TaskId) -> str:
        """Which ping-list phase ``task_id`` currently runs."""
        return self._state(task_id).ping_list.phase

    def monitored_tasks(self) -> List[TaskId]:
        """All tasks with a preloaded ping list."""
        return sorted(self._tasks)
