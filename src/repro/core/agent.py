"""SkeletonHunter agents (§6 of the paper).

Two kinds of agent run in production:

* The **overlay agent** rides a sidecar container beside each training
  node, sharing its network namespace.  It pulls the ping list from the
  controller, registers its container so peers activate the matching
  targets, and paces RDMA probes to its active targets.  Its resource
  footprint is tiny and converges (Figure 17) because the skeletonized
  ping list leaves each agent only a handful of targets.
* The **underlay agent** is one standalone container per host with host
  privileges: it traceroutes underlay paths for tomography and dumps
  RNIC flow tables when the localizer asks (both capabilities are
  exposed here via the fabric and validator).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.container import Container
from repro.cluster.identifiers import EndpointId, HostId
from repro.core.pinglist import PingList, ProbePair
from repro.core.probing import ResilientProber, coarse_pairs
from repro.core.rnic_validation import RnicFinding, RnicValidator
from repro.network.fabric import DataPlaneFabric
from repro.network.packet import ProbeResult

__all__ = ["AgentResourceModel", "OverlayAgent", "UnderlayAgent"]


@dataclass(frozen=True)
class AgentResourceModel:
    """Sidecar resource footprint over the container's lifetime.

    Startup briefly costs more (ping-list pull, registration, buffer
    warm-up) before converging to the steady state the paper reports:
    about 1% of one CPU and ~35 MB of memory (Figure 17).
    """

    steady_cpu_percent: float = 1.0
    startup_cpu_percent: float = 4.5
    cpu_decay_s: float = 90.0
    steady_memory_mb: float = 35.0
    startup_memory_mb: float = 12.0
    memory_rise_s: float = 150.0
    per_target_cpu_percent: float = 0.002

    def cpu_percent(self, age_s: float, active_targets: int = 0) -> float:
        """CPU usage ``age_s`` seconds after the agent started."""
        startup = (self.startup_cpu_percent - self.steady_cpu_percent) * (
            math.exp(-max(age_s, 0.0) / self.cpu_decay_s)
        )
        return (
            self.steady_cpu_percent
            + startup
            + self.per_target_cpu_percent * active_targets
        )

    def memory_mb(self, age_s: float) -> float:
        """Resident memory ``age_s`` seconds after the agent started."""
        rise = 1.0 - math.exp(-max(age_s, 0.0) / self.memory_rise_s)
        return (
            self.startup_memory_mb
            + (self.steady_memory_mb - self.startup_memory_mb) * rise
        )


class OverlayAgent:
    """The sidecar probing agent of one training container."""

    def __init__(
        self,
        container: Container,
        ping_list: PingList,
        started_at: float,
        resources: Optional[AgentResourceModel] = None,
        version: str = "v1.0.0",
        prober: Optional[ResilientProber] = None,
        bus=None,
    ) -> None:
        self.container = container
        self.ping_list = ping_list
        self.started_at = started_at
        # Per-instance default (lint rule "shared-instance-default").
        self.resources = (
            resources if resources is not None else AgentResourceModel()
        )
        self.version = version  # sidecar release the agent launched with
        # Monitor-plane hardening; None keeps the original direct path
        # (and its probe outcomes) bit-identical.
        self.prober = prober
        # Telemetry bus: delivered report batches are published per
        # round so a recording carries exactly what the analyzer saw.
        self.bus = bus
        self.probes_sent = 0
        self.rounds_skipped = 0

    @property
    def endpoints(self) -> List[EndpointId]:
        """The endpoints this agent probes from."""
        return self.container.endpoints()

    def my_pairs(self) -> List[ProbePair]:
        """Active pairs whose canonical source belongs to this container."""
        mine = set(self.endpoints)
        return [
            pair for pair in self.ping_list.active_pairs()
            if pair.src in mine
        ]

    def register(self) -> None:
        """Announce this container so peers activate it as a target."""
        self.ping_list.register(self.container.id)

    def execute_round(
        self, fabric: DataPlaneFabric, now: float, salt: int = 0
    ) -> List[ProbeResult]:
        """Probe this agent's share of the active pairs (one batch).

        Without a prober this is the original direct path.  With one,
        the round is monitor-plane hardened: a crashed or hung agent
        probes nothing (and feeds its circuit breaker), a slow-starting
        agent and an open breaker fall back to coarse coverage, and
        lost/late probe reports are retried with keyed backoff.
        """
        if self.prober is None:
            results = fabric.send_probe_batch(self.my_pairs(), now, salt)
            self.probes_sent += len(results)
            self._publish(results, now)
            return results
        state = self.prober.chaos.agent_state(str(self.container.id), now)
        if state in ("crashed", "hung"):
            self.rounds_skipped += 1
            if self.prober.recorder is not None:
                self.prober.recorder.count("agent.rounds_skipped")
            if self.prober.breaker is not None:
                self.prober.breaker.record_failure(now)
            return []
        pairs, _ = self.prober.plan_round(self.my_pairs(), now)
        if state == "slow":
            pairs = coarse_pairs(pairs)
        results = self.prober.execute(fabric, pairs, now, salt)
        self.probes_sent += len(results)
        self._publish(results, now)
        return results

    def _publish(self, results: List[ProbeResult], now: float) -> None:
        if self.bus is None or not results:
            return
        from repro.bus.codec import encode_probe_rows
        from repro.bus.core import Topic

        self.bus.publish(
            Topic.PROBE_REPORTS,
            sim_time=now,
            container=str(self.container.id),
            results=encode_probe_rows(results),
        )

    def cpu_percent(self, now: float) -> float:
        """Modelled CPU usage at simulated time ``now``."""
        return self.resources.cpu_percent(
            now - self.started_at, len(self.my_pairs())
        )

    def memory_mb(self, now: float) -> float:
        """Modelled memory usage at simulated time ``now``."""
        return self.resources.memory_mb(now - self.started_at)


class UnderlayAgent:
    """The per-host agent used for traceroute and flow-table dumps."""

    def __init__(
        self, host: HostId, fabric: DataPlaneFabric, validator: RnicValidator
    ) -> None:
        self.host = host
        self._fabric = fabric
        self._validator = validator

    def traceroute(self, src: EndpointId, dst: EndpointId):
        """The pinned underlay path of a flow originating on this host."""
        return self._fabric.traceroute(src, dst)

    def dump_flow_tables(self) -> List[RnicFinding]:
        """Dump and diff every RNIC flow table on this host."""
        cluster = self._validator._cluster
        host = cluster.host(self.host)
        return [
            self._validator.validate(rnic.id) for rnic in host.rnics
        ]
