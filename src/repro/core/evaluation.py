"""Scoring detection and localization against injected ground truth.

The paper validates SkeletonHunter by manually checking every alarm over
six months of production (98.2% precision, 99.3% recall, 95.7%
localization accuracy).  Here ground truth is exact: every fault knows
which components it broke and the scorer knows which pairs it could
affect, so precision, recall, localization accuracy, and detection delay
are computed mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cluster.container import Container
from repro.cluster.identifiers import HostId, LinkId, RnicId, SwitchId
from repro.cluster.orchestrator import Cluster
from repro.cluster.overlay import OverlayError
from repro.core.analyzer import FailureEvent
from repro.core.localization import LocalizationReport
from repro.core.pinglist import ProbePair
from repro.network.fabric import DataPlaneFabric
from repro.network.faults import Fault

__all__ = [
    "CampaignScore",
    "CampaignScorer",
    "FaultOutcome",
    "fault_affects_pair",
]


def fault_affects_pair(
    fault: Fault,
    pair: ProbePair,
    cluster: Cluster,
    fabric: DataPlaneFabric,
) -> bool:
    """Whether ``fault`` can perturb the pair's data path.

    Link/switch targets are checked against every path the pair may
    take (under static ECMP that is the single pinned pick; under
    spraying, the full distribution — a sprayed pair *is* affected by a
    gray link it crosses only some of the time).  A fault's victim
    links count too: PFC pause propagation genuinely perturbs pairs
    that never touch the congested port itself.
    """
    target = fault.target
    overlay = cluster.overlay
    try:
        src_rnic = overlay.rnic_of(pair.src)
        dst_rnic = overlay.rnic_of(pair.dst)
    except (OverlayError, KeyError):
        return False

    if isinstance(target, RnicId):
        return target in (src_rnic, dst_rnic)
    if isinstance(target, HostId):
        return target in (src_rnic.host, dst_rnic.host)
    if isinstance(target, Container):
        return target.id in (pair.src.container, pair.dst.container)
    paths = fabric.path_distribution(pair.src, pair.dst)
    if not paths:
        return False
    if isinstance(target, LinkId):
        for path in paths:
            if target in path.links:
                return True
            if fault.victim_links and not (
                fault.victim_links.isdisjoint(path.links)
            ):
                return True
        return False
    if isinstance(target, SwitchId):
        return any(str(target) in path.switches() for path in paths)
    return False


@dataclass
class FaultOutcome:
    """How one injected fault fared against the monitoring system."""

    fault: Fault
    observable: bool                 # did any monitored pair cross it?
    detected: bool = False
    detection_delay_s: Optional[float] = None
    localized: bool = False
    localized_component: Optional[str] = None
    matched_events: List[FailureEvent] = field(default_factory=list)


@dataclass(frozen=True)
class CampaignScore:
    """Aggregate detection/localization quality over a campaign."""

    num_faults: int
    num_observable_faults: int
    num_events: int
    true_positive_events: int
    false_positive_events: int
    detected_faults: int
    localized_faults: int
    mean_detection_delay_s: Optional[float]

    @property
    def precision(self) -> float:
        """Fraction of raised events that correspond to a real fault."""
        if self.num_events == 0:
            return 1.0
        return self.true_positive_events / self.num_events

    @property
    def recall(self) -> float:
        """Fraction of observable faults that raised at least one event."""
        if self.num_observable_faults == 0:
            return 1.0
        return self.detected_faults / self.num_observable_faults

    @property
    def localization_accuracy(self) -> float:
        """Fraction of detected faults localized to a correct component."""
        if self.detected_faults == 0:
            return 1.0
        return self.localized_faults / self.detected_faults


class CampaignScorer:
    """Matches events and diagnoses back to injected faults."""

    def __init__(
        self,
        cluster: Cluster,
        fabric: DataPlaneFabric,
        detection_grace_s: float = 90.0,
    ) -> None:
        self.cluster = cluster
        self.fabric = fabric
        self.detection_grace_s = detection_grace_s

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------

    def _fault_matches_event(self, fault: Fault, event: FailureEvent) -> bool:
        t = event.first_detected_at
        active_window = (
            fault.start <= t
            and (fault.end is None or t <= fault.end + self.detection_grace_s)
        )
        if not active_window:
            return False
        return fault_affects_pair(fault, event.pair, self.cluster, self.fabric)

    def outcome_of(
        self,
        fault: Fault,
        events: Sequence[FailureEvent],
        reports: Sequence[Tuple[float, LocalizationReport]],
        monitored_pairs: Sequence[ProbePair],
    ) -> FaultOutcome:
        """Score one fault against the run's events and reports."""
        observable = any(
            fault_affects_pair(fault, pair, self.cluster, self.fabric)
            for pair in monitored_pairs
        )
        outcome = FaultOutcome(fault=fault, observable=observable)
        for event in events:
            if self._fault_matches_event(fault, event):
                outcome.matched_events.append(event)
        if outcome.matched_events:
            outcome.detected = True
            first = min(
                e.first_detected_at for e in outcome.matched_events
            )
            outcome.detection_delay_s = max(first - fault.start, 0.0)
        for when, report in reports:
            if not (
                fault.start <= when
                and (
                    fault.end is None
                    or when <= fault.end + self.detection_grace_s
                )
            ):
                continue
            for diagnosis in report.diagnoses:
                if diagnosis.component in fault.culprits:
                    outcome.localized = True
                    outcome.localized_component = diagnosis.component
                    break
            if outcome.localized:
                break
        return outcome

    def score(
        self,
        faults: Sequence[Fault],
        events: Sequence[FailureEvent],
        reports: Sequence[Tuple[float, LocalizationReport]],
        monitored_pairs: Sequence[ProbePair],
    ) -> Tuple[CampaignScore, List[FaultOutcome]]:
        """Score a whole campaign; returns aggregates plus per-fault detail."""
        outcomes = [
            self.outcome_of(fault, events, reports, monitored_pairs)
            for fault in faults
        ]
        matched_event_ids = {
            id(event)
            for outcome in outcomes
            for event in outcome.matched_events
        }
        true_positives = sum(
            1 for event in events if id(event) in matched_event_ids
        )
        detected = [o for o in outcomes if o.detected]
        delays = [
            o.detection_delay_s
            for o in detected
            if o.detection_delay_s is not None
        ]
        score = CampaignScore(
            num_faults=len(faults),
            num_observable_faults=sum(1 for o in outcomes if o.observable),
            num_events=len(events),
            true_positive_events=true_positives,
            false_positive_events=len(events) - true_positives,
            detected_faults=len(detected),
            localized_faults=sum(1 for o in detected if o.localized),
            mean_detection_delay_s=(
                sum(delays) / len(delays) if delays else None
            ),
        )
        return score, outcomes
