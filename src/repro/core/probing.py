"""Probe round execution and round-time cost accounting.

Agents probe their active targets once per round.  Two views exist:

* :class:`ProbeRoundExecutor` actually sends the probes through the
  simulated fabric and feeds the analyzer (used by the live monitoring
  loop);
* :func:`estimate_round_duration` computes how long a probing round would
  take on real hardware, where each sidecar agent paces its probes
  serially while agents run in parallel — the quantity Figure 16 of the
  paper reports for full-mesh vs basic vs skeleton ping lists.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.core.pinglist import PingList, ProbePair
from repro.core.resilience import BreakerState, CircuitBreaker, RetryPolicy
from repro.network.fabric import DataPlaneFabric
from repro.network.packet import ProbeResult

__all__ = [
    "ProbeCostModel",
    "ProbeRoundExecutor",
    "ResilientProber",
    "coarse_pairs",
    "estimate_round_duration",
    "estimate_sharded_round_duration",
    "probes_per_round",
]


@dataclass(frozen=True)
class ProbeCostModel:
    """Wall-clock cost model of agent-paced probing.

    ``per_probe_s`` is the pacing interval between consecutive probes of
    one agent (production agents rate-limit to stay invisible next to
    training traffic); ``round_overhead_s`` covers dispatch and result
    aggregation.
    """

    per_probe_s: float = 1.0
    round_overhead_s: float = 4.0


def probes_per_round(ping_list: PingList) -> int:
    """Total probes one round issues (one per pair)."""
    return len(ping_list)


def _max_targets_per_source(ping_list: PingList) -> int:
    counts: Counter = Counter()
    for pair in ping_list.pairs:
        counts[pair.src] += 1
    if not counts:
        return 0
    return max(counts.values())


def estimate_round_duration(
    ping_list: PingList, cost: Optional[ProbeCostModel] = None
) -> float:
    """Seconds to complete one probing round of the whole task.

    Agents run in parallel; each paces its own targets serially, so the
    round finishes when the busiest agent does.
    """
    cost = cost if cost is not None else ProbeCostModel()
    busiest = _max_targets_per_source(ping_list)
    if busiest == 0:
        return 0.0
    return cost.round_overhead_s + busiest * cost.per_probe_s


def estimate_sharded_round_duration(
    shard_pair_sets: Sequence[Iterable[ProbePair]],
    cost: Optional[ProbeCostModel] = None,
) -> float:
    """Round duration when pairs are split across parallel shards.

    Each shard's agents pace independently, so the plane's round
    finishes when the busiest agent of the busiest shard does — the
    quantity ``repro shard-status`` and the scaling benchmark report
    next to measured throughput.
    """
    cost = cost if cost is not None else ProbeCostModel()
    worst = 0.0
    for pairs in shard_pair_sets:
        shard_list = PingList(pairs=set(pairs), phase="shard")
        busiest = _max_targets_per_source(shard_list)
        if busiest == 0:
            continue
        worst = max(
            worst, cost.round_overhead_s + busiest * cost.per_probe_s
        )
    return worst


def coarse_pairs(pairs: Sequence[ProbePair]) -> List[ProbePair]:
    """The coarse fallback subset: one pair per container pair.

    While an agent's circuit breaker is open, probing every rail pair
    would just feed the failing monitor path; one probe per peer
    container keeps reachability coverage (a down host or crashed peer
    is still seen) at a fraction of the load.  Deterministic: input
    order is preserved and the first pair of each container pair wins,
    so the same ``pairs`` list always coarsens identically.
    """
    seen = set()
    out: List[ProbePair] = []
    for pair in pairs:
        key = (pair.src.container, pair.dst.container)
        if key in seen:
            continue
        seen.add(key)
        out.append(pair)
    return out


class ResilientProber:
    """Monitor-plane hardening around a probe round.

    Wraps the fabric's batched round with the three defenses of
    ``docs/ROBUSTNESS.md``:

    * **report fate** — each probe's *report* may be lost or late
      (:meth:`MonitorFaultInjector.probe_report`); a probe the network
      genuinely dropped is NOT retried, so real unconnectivity is never
      masked;
    * **bounded retry** — lost/late reports are retried up to
      ``retry.max_retries`` times at ``now + timeout + backoff`` with
      keyed jitter, keeping per-pair timestamps monotone and runs
      reproducible;
    * **circuit breaker** — rounds that still lose reports after
      retries count as failures; consecutive failures trip the breaker
      and the agent falls back to :func:`coarse_pairs` until half-open
      recovery.
    """

    def __init__(
        self,
        chaos,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        recorder=None,
        bus=None,
    ) -> None:
        self.chaos = chaos
        self.retry = (
            retry if retry is not None else RetryPolicy(seed=chaos.seed)
        )
        self.breaker = breaker
        self.recorder = recorder
        # Telemetry bus: degraded rounds (lost/late reports, retries)
        # publish a monitor-plane record for the tail dashboard.
        self.bus = bus
        self.retries = 0
        self.retry_successes = 0
        self.reports_lost = 0
        self.reports_late = 0
        self.monitor_failures = 0

    def plan_round(
        self, pairs: Sequence[ProbePair], now: float
    ) -> Tuple[List[ProbePair], str]:
        """The pairs to probe this round, given the breaker state.

        ``CLOSED`` probes everything; ``OPEN`` probes the coarse subset;
        ``HALF_OPEN`` probes everything as the trial round (success
        closes the breaker, failure re-opens it).
        """
        pairs = list(pairs)
        if self.breaker is None:
            return pairs, "full"
        state = self.breaker.state_at(now)
        if state is BreakerState.OPEN:
            return coarse_pairs(pairs), "coarse"
        return pairs, "full" if state is BreakerState.CLOSED else "trial"

    def execute(
        self,
        fabric: DataPlaneFabric,
        pairs: Sequence[ProbePair],
        now: float,
        salt: int = 0,
    ) -> List[ProbeResult]:
        """One hardened round over ``pairs``; returns delivered results."""
        results = fabric.send_probe_batch(pairs, now, salt)
        delivered: List[ProbeResult] = []
        failed = 0
        retries_before = self.retries
        for pair, result in zip(pairs, results):
            final = self._deliver(fabric, pair, result, now, salt)
            if final is None:
                failed += 1
            else:
                delivered.append(final)
        if self.breaker is not None:
            if failed:
                self.breaker.record_failure(now)
            else:
                self.breaker.record_success(now)
        retried = self.retries - retries_before
        if self.bus is not None and (failed or retried):
            from repro.bus.core import Topic

            self.bus.publish(
                Topic.MONITOR,
                sim_time=now,
                delivered=len(delivered),
                failed=failed,
                retries=retried,
            )
        return delivered

    def _deliver(
        self,
        fabric: DataPlaneFabric,
        pair: ProbePair,
        result: ProbeResult,
        now: float,
        salt: int,
    ) -> Optional[ProbeResult]:
        """Resolve one probe's report, retrying monitor-plane losses."""
        at = now
        attempt = 0
        current = result
        while True:
            fate = self.chaos.probe_report(pair.src, pair.dst, at, attempt)
            if fate == "ok":
                if attempt > 0:
                    self.retry_successes += 1
                    self._count("probe.retry_success")
                return current
            if fate == "late":
                self.reports_late += 1
                self._count("probe.reports_late")
            else:
                self.reports_lost += 1
                self._count("probe.reports_lost")
            if attempt >= self.retry.max_retries:
                self.monitor_failures += 1
                self._count("probe.monitor_failures")
                return None
            attempt += 1
            self.retries += 1
            self._count("probe.retries")
            delay = self.retry.backoff_s(
                attempt, key=f"{pair.src}->{pair.dst}@{now!r}"
            )
            at = at + self.retry.timeout_s + delay
            current = fabric.send_probe(pair.src, pair.dst, at, salt)

    def _count(self, name: str) -> None:
        if self.recorder is not None:
            self.recorder.count(name)


class ProbeRoundExecutor:
    """Sends one probe per active pair through the fabric each round."""

    def __init__(
        self,
        fabric: DataPlaneFabric,
        on_result: Optional[Callable[[ProbeResult], None]] = None,
        prober: Optional[ResilientProber] = None,
    ) -> None:
        self.fabric = fabric
        self.on_result = on_result
        self.prober = prober
        self.rounds_executed = 0
        self.probes_issued = 0

    def execute_round(
        self, ping_list: PingList, now: float, salt: int = 0
    ) -> List[ProbeResult]:
        """Probe every *active* pair of ``ping_list`` at time ``now``.

        The round goes through the fabric's batched fast path;
        ``on_result`` still fires once per result, in pair order.  With
        a :class:`ResilientProber` attached, the round is hardened
        (report retry + breaker gating) and lost reports are absent
        from the returned results.
        """
        pairs = ping_list.active_pairs()
        if self.prober is None:
            results = self.fabric.send_probe_batch(pairs, now, salt)
        else:
            pairs, _ = self.prober.plan_round(pairs, now)
            results = self.prober.execute(self.fabric, pairs, now, salt)
        if self.on_result is not None:
            for result in results:
                self.on_result(result)
        self.rounds_executed += 1
        self.probes_issued += len(results)
        return results
