"""Probe round execution and round-time cost accounting.

Agents probe their active targets once per round.  Two views exist:

* :class:`ProbeRoundExecutor` actually sends the probes through the
  simulated fabric and feeds the analyzer (used by the live monitoring
  loop);
* :func:`estimate_round_duration` computes how long a probing round would
  take on real hardware, where each sidecar agent paces its probes
  serially while agents run in parallel — the quantity Figure 16 of the
  paper reports for full-mesh vs basic vs skeleton ping lists.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Sequence

from repro.core.pinglist import PingList, ProbePair
from repro.network.fabric import DataPlaneFabric
from repro.network.packet import ProbeResult

__all__ = [
    "ProbeCostModel",
    "ProbeRoundExecutor",
    "estimate_round_duration",
    "estimate_sharded_round_duration",
    "probes_per_round",
]


@dataclass(frozen=True)
class ProbeCostModel:
    """Wall-clock cost model of agent-paced probing.

    ``per_probe_s`` is the pacing interval between consecutive probes of
    one agent (production agents rate-limit to stay invisible next to
    training traffic); ``round_overhead_s`` covers dispatch and result
    aggregation.
    """

    per_probe_s: float = 1.0
    round_overhead_s: float = 4.0


def probes_per_round(ping_list: PingList) -> int:
    """Total probes one round issues (one per pair)."""
    return len(ping_list)


def _max_targets_per_source(ping_list: PingList) -> int:
    counts: Counter = Counter()
    for pair in ping_list.pairs:
        counts[pair.src] += 1
    if not counts:
        return 0
    return max(counts.values())


def estimate_round_duration(
    ping_list: PingList, cost: Optional[ProbeCostModel] = None
) -> float:
    """Seconds to complete one probing round of the whole task.

    Agents run in parallel; each paces its own targets serially, so the
    round finishes when the busiest agent does.
    """
    cost = cost if cost is not None else ProbeCostModel()
    busiest = _max_targets_per_source(ping_list)
    if busiest == 0:
        return 0.0
    return cost.round_overhead_s + busiest * cost.per_probe_s


def estimate_sharded_round_duration(
    shard_pair_sets: Sequence[Iterable[ProbePair]],
    cost: Optional[ProbeCostModel] = None,
) -> float:
    """Round duration when pairs are split across parallel shards.

    Each shard's agents pace independently, so the plane's round
    finishes when the busiest agent of the busiest shard does — the
    quantity ``repro shard-status`` and the scaling benchmark report
    next to measured throughput.
    """
    cost = cost if cost is not None else ProbeCostModel()
    worst = 0.0
    for pairs in shard_pair_sets:
        shard_list = PingList(pairs=set(pairs), phase="shard")
        busiest = _max_targets_per_source(shard_list)
        if busiest == 0:
            continue
        worst = max(
            worst, cost.round_overhead_s + busiest * cost.per_probe_s
        )
    return worst


class ProbeRoundExecutor:
    """Sends one probe per active pair through the fabric each round."""

    def __init__(
        self,
        fabric: DataPlaneFabric,
        on_result: Optional[Callable[[ProbeResult], None]] = None,
    ) -> None:
        self.fabric = fabric
        self.on_result = on_result
        self.rounds_executed = 0
        self.probes_issued = 0

    def execute_round(
        self, ping_list: PingList, now: float, salt: int = 0
    ) -> List[ProbeResult]:
        """Probe every *active* pair of ``ping_list`` at time ``now``.

        The round goes through the fabric's batched fast path;
        ``on_result`` still fires once per result, in pair order.
        """
        results = self.fabric.send_probe_batch(
            ping_list.active_pairs(), now, salt
        )
        if self.on_result is not None:
            for result in results:
                self.on_result(result)
        self.rounds_executed += 1
        self.probes_issued += len(results)
        return results
