"""Retry, backoff, and circuit-breaker policy for the monitor plane.

The monitoring pipeline itself can fail — probe reports get lost or
arrive late, agents crash or hang, flow-table reads error out (see
:mod:`repro.chaos.faults` for the injectable catalogue).  This module
holds the *production* half of that story: the policies the probing and
validation paths use to absorb monitor-plane faults without masking
genuine network failures.

Two rules keep the hardening honest:

* **Retries are for the monitor, not the network.**  A probe whose
  *report* was lost by the monitoring plane is retried; a probe the
  network genuinely dropped is not — retrying it would hide the very
  unconnectivity the detectors exist to find.
* **All jitter is keyed.**  Backoff jitter comes from
  :func:`repro.network.draws.keyed_uniform`, a pure function of
  ``(seed, key, attempt)`` — so retry timing is reproducible in any
  process and the sharded plane's bit-equivalence gate keeps holding.

The :class:`CircuitBreaker` follows the classic three-state machine:

``CLOSED``
    normal operation; consecutive failures are counted.
``OPEN``
    tripped after ``failure_threshold`` consecutive failures; the agent
    falls back to coarse ping-list coverage until ``open_duration_s``
    of simulated time has passed.
``HALF_OPEN``
    after the open window, one trial round is allowed through; success
    closes the breaker (recovery), failure re-opens it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.network.draws import keyed_uniform

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "RetryPolicy",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with deterministic exponential backoff.

    Delays are small relative to the 2 s probe interval so a retried
    probe's timestamp (``now + delay``) still lands before the next
    round — per-pair time series stay monotone.
    """

    #: Simulated seconds before an outstanding probe reply counts as a
    #: monitor-plane timeout (a *late* reply, retried like a lost one).
    timeout_s: float = 0.5
    #: Retries after the initial attempt; 0 disables retrying.
    max_retries: int = 2
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 0.4
    #: Fraction of the deterministic delay replaced by keyed jitter.
    jitter: float = 0.5
    #: Seed for the keyed jitter draws (usually the scenario seed).
    seed: int = 0

    def backoff_s(self, attempt: int, key: str) -> float:
        """Delay before retry ``attempt`` (1-based) of ``key``.

        ``key`` must identify the probe uniquely (pair + time), so the
        jitter is a pure function of the probe, never of call order.
        """
        if attempt < 1:
            raise ValueError(f"attempts are 1-based, got {attempt}")
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        base = min(base, self.backoff_max_s)
        if self.jitter <= 0.0:
            return base
        u = keyed_uniform(self.seed, f"backoff:{key}", salt=attempt)
        return base * (1.0 - self.jitter + self.jitter * u)

    def total_delay_bound_s(self) -> float:
        """Upper bound on cumulative retry delay (for schedule checks)."""
        return sum(
            min(
                self.backoff_base_s * self.backoff_factor ** (a - 1),
                self.backoff_max_s,
            )
            for a in range(1, self.max_retries + 1)
        ) + self.timeout_s * (self.max_retries + 1)


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-agent failure breaker with half-open recovery.

    Driven entirely by simulated time passed into its methods — there is
    no wall clock here, so breaker trajectories replay bit-exactly when
    a shard monitor is rebuilt after failover.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        open_duration_s: float = 10.0,
        recorder=None,
        listener=None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = int(failure_threshold)
        self.open_duration_s = float(open_duration_s)
        self._recorder = recorder
        # Called as ``listener(now, old_state, new_state, breaker)`` on
        # every transition (state values, not enum members).  The
        # telemetry bus wires breaker trajectories onto its
        # breaker-transitions topic through this hook.
        self._listener = listener
        self._state = BreakerState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self.trips = 0
        self.recoveries = 0

    def state_at(self, now: float) -> BreakerState:
        """The breaker state at simulated time ``now`` (advances
        ``OPEN`` → ``HALF_OPEN`` once the open window has elapsed)."""
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and now - self._opened_at >= self.open_duration_s
        ):
            self._state = BreakerState.HALF_OPEN
            self._notify(now, BreakerState.OPEN, BreakerState.HALF_OPEN)
        return self._state

    def _notify(
        self, now: float, old: BreakerState, new: BreakerState
    ) -> None:
        if self._listener is not None:
            self._listener(now, old.value, new.value, self)

    def record_success(self, now: float) -> None:
        state = self.state_at(now)
        self._consecutive_failures = 0
        if state is BreakerState.HALF_OPEN:
            self._state = BreakerState.CLOSED
            self._opened_at = None
            self.recoveries += 1
            if self._recorder is not None:
                self._recorder.count("breaker.recoveries")
            self._notify(now, BreakerState.HALF_OPEN, BreakerState.CLOSED)

    def record_failure(self, now: float) -> None:
        state = self.state_at(now)
        self._consecutive_failures += 1
        if state is BreakerState.HALF_OPEN:
            # The trial round failed: straight back to OPEN.
            self._trip(now)
        elif (
            state is BreakerState.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip(now)

    def _trip(self, now: float) -> None:
        old = self._state
        self._state = BreakerState.OPEN
        self._opened_at = now
        self._consecutive_failures = 0
        self.trips += 1
        if self._recorder is not None:
            self._recorder.count("breaker.trips")
        self._notify(now, old, BreakerState.OPEN)

    def snapshot(self) -> tuple:
        """Picklable state tuple (merged through shard failover)."""
        return (
            self._state.value,
            self._consecutive_failures,
            self._opened_at,
            self.trips,
            self.recoveries,
        )

    def restore(self, snapshot: tuple) -> None:
        state, failures, opened_at, trips, recoveries = snapshot
        self._state = BreakerState(state)
        self._consecutive_failures = int(failures)
        self._opened_at = opened_at
        self.trips = int(trips)
        self.recoveries = int(recoveries)
