"""SkeletonHunter core: ping lists, inference, detection, localization."""

from repro.core.agent import AgentResourceModel, OverlayAgent, UnderlayAgent
from repro.core.analyzer import Analyzer, FailureEvent
from repro.core.controller import Controller, ControllerError
from repro.core.detection import (
    DetectedAnomaly,
    DetectorConfig,
    LongTermDetector,
    PairMonitor,
    ShortTermDetector,
    WindowSummary,
)
from repro.core.evaluation import (
    CampaignScore,
    CampaignScorer,
    FaultOutcome,
    fault_affects_pair,
)
from repro.core.fidelity import FidelityChecker, FidelityReport
from repro.core.handling import (
    Alert,
    AlertSeverity,
    Blacklist,
    FailureHandler,
)
from repro.core.localization import (
    Diagnosis,
    LocalizationReport,
    Localizer,
)
from repro.core.pinglist import PingList, PingListPhase, ProbePair
from repro.core.probing import (
    ProbeCostModel,
    ProbeRoundExecutor,
    estimate_round_duration,
    probes_per_round,
)
from repro.core.recovery import MigrationAction, RecoveryManager
from repro.core.rnic_validation import RnicFinding, RnicValidator
from repro.core.rollout import (
    AgentRelease,
    AgentReleaseManager,
    ReleaseChannel,
)
from repro.core.skeleton import InferredSkeleton, SkeletonInference
from repro.core.system import SkeletonHunter
from repro.core.tomography import IntersectionResult, PhysicalIntersection

__all__ = [
    "Alert",
    "AlertSeverity",
    "AgentRelease",
    "AgentReleaseManager",
    "AgentResourceModel",
    "Analyzer",
    "Blacklist",
    "CampaignScore",
    "CampaignScorer",
    "Controller",
    "ControllerError",
    "DetectedAnomaly",
    "DetectorConfig",
    "Diagnosis",
    "FailureEvent",
    "FailureHandler",
    "FaultOutcome",
    "FidelityChecker",
    "FidelityReport",
    "InferredSkeleton",
    "IntersectionResult",
    "LocalizationReport",
    "Localizer",
    "LongTermDetector",
    "MigrationAction",
    "OverlayAgent",
    "PairMonitor",
    "PhysicalIntersection",
    "RecoveryManager",
    "ReleaseChannel",
    "PingList",
    "PingListPhase",
    "ProbeCostModel",
    "ProbePair",
    "ProbeRoundExecutor",
    "RnicFinding",
    "RnicValidator",
    "ShortTermDetector",
    "SkeletonHunter",
    "SkeletonInference",
    "UnderlayAgent",
    "WindowSummary",
    "estimate_round_duration",
    "fault_affects_pair",
    "probes_per_round",
]
