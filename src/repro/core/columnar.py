"""Columnar storage + batched scoring for the detection hot path.

The legacy detection path holds one ``PairMonitor`` / ``IncrementalLOF``
/ ``LognormalFit`` object per pair and walks them in Python: closing a
30-second window costs a seven-number summary, an O(k·n) LOF score, a
median check, and a baseline append — each a handful of small numpy
calls whose interpreter overhead dominates at thousands of pairs (the
analyzer owns round wall-clock at 2048 pairs, BENCH_probing.json).

This module replaces the object soup with a *columnar* store indexed by
a pair→row table:

* **Open-window columns** — one ``(pairs × samples)`` latency matrix
  plus sent/lost/consecutive-loss counters per row; ``ingest`` appends
  into the row, closing elapsed windows into a per-row pending queue.
* **Ring-buffered LOF history** — a ``(pairs × lookback × 7)`` feature
  matrix with per-row fill counts and eviction heads; the short-term
  baseline for *every* pair lives in one array.
* **Long-term aggregates** — per-row latency buffers consumed into
  30-minute windows, with the log-normal fits stored as ``mu``/``sigma``
  columns.

Scoring is deferred to :meth:`ColumnarDetectionEngine.collect`, which
drains the pending queues in *waves* (the i-th pending window of every
row), so the summary statistics, LOF (:func:`lof_scores_fixed_batch`),
median-shift checks, baseline appends, and long-term Z-tests
(:func:`z_test_rows`) each run as a few numpy calls over all pairs at
once instead of per-pair Python loops.  Per-row window ordering — the
thing detector state depends on — is preserved because wave w+1 never
runs before every row's wave-w window has been scored and (if healthy)
admitted to the baseline.

Equivalence with the legacy path is a hard gate
(:func:`repro.perf.verify_detector_equivalence`, plus the hypothesis
property suite): verdicts match anomaly-for-anomaly and scores agree
within the documented 1e-10 drift — batched reductions reassociate
float sums (numpy pairwise vs. Python sequential), which moves results
by ~1e-15 relative but never past a detection threshold for
continuously distributed latencies.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.lof import lof_scores_fixed_batch
from repro.analysis.stats import fit_lognormal_rows, z_test_rows
from repro.core.detection import DetectedAnomaly, DetectorConfig
from repro.core.pinglist import ProbePair
from repro.network.issues import Symptom
from repro.network.packet import ProbeResult

__all__ = ["ColumnarDetectionEngine", "ScoredWindow"]

#: Feature dimensionality: (p25, p50, p75, min, mean, std, max).
_FEATURES = 7
#: Pending-entry kind tags (index 0 of the entry tuple).
_SHORT = 0
_LONG = 1


class ScoredWindow(NamedTuple):
    """One detector verdict the engine hands back to the analyzer.

    ``kind`` is ``"short"`` (a 30-second window: loss rules + LOF) or
    ``"long"`` (a 30-minute Z-tested aggregate).  ``score`` carries the
    LOF score (short) or the Z statistic (long) when the window was
    actually scored; loss-rule and unscored windows leave it ``None``.
    ``samples`` is the long window's sample count (0 for short).
    """

    pair: ProbePair
    kind: str
    window_start: float
    window_end: float
    sent: int
    lost: int
    anomaly: Optional[DetectedAnomaly]
    score: Optional[float]
    median_shifted: Optional[bool]
    samples: int


class ColumnarDetectionEngine:
    """All pairs' detection state in matrices, scored in batches.

    The engine owns storage and scoring; incident bookkeeping (events,
    resolution, recorder spans) stays in :class:`~repro.core.analyzer.
    Analyzer`, which consumes the ordered :class:`ScoredWindow` stream.
    Windows close *lazily*: ``ingest`` queues them (so no probe ever
    pollutes an elapsed window) and ``collect`` scores every queued
    window across all pairs at once — per-pair verdicts are identical
    to the eager legacy path, they just materialize at the next
    ``Analyzer.flush`` (or immediately, via :meth:`collect_rows`, when
    the fast-unconnectivity path needs in-order draining).
    """

    #: Initial open-window latency capacity (columns); grows by
    #: doubling when a window outgrows it.
    _INITIAL_SAMPLES = 32

    def __init__(self, config: Optional[DetectorConfig] = None) -> None:
        # Per-instance default (lint rule "shared-instance-default").
        self.config = config if config is not None else DetectorConfig()
        cfg = self.config
        self._short_s = cfg.short_window_s
        self._long_s = cfg.long_window_s
        self._lookback = max(int(cfg.lookback_windows), 1)

        self._rows: Dict[ProbePair, int] = {}
        self._row_pair: List[Optional[ProbePair]] = []
        self._free: List[int] = []

        # Open-window per-row state (Python lists: the ingest hot path
        # touches one scalar per probe and list indexing beats numpy
        # scalar boxing there).
        self._ws: List[Optional[float]] = []
        self._sent: List[int] = []
        self._lost: List[int] = []
        self._consec: List[int] = []
        self._lat_n: List[int] = []
        self._lat = np.empty((0, self._INITIAL_SAMPLES))

        # Long-window buffers (consumed once per 30 minutes per pair).
        self._long_start: List[Optional[float]] = []
        self._long_times: List[List[float]] = []
        self._long_vals: List[List[float]] = []
        self._fit_mu: List[Optional[float]] = []
        self._fit_sigma: List[Optional[float]] = []

        # Ring-buffered LOF baseline: first ``hist_n`` slots are valid;
        # once full, ``hist_head`` is the next eviction (overwrite) slot.
        self._hist = np.empty((0, self._lookback, _FEATURES))
        self._hist_n = np.zeros(0, dtype=np.int64)
        self._hist_head = np.zeros(0, dtype=np.int64)

        # Per-row pending windows awaiting a scoring pass, in exactly
        # the order the legacy path would have processed them.
        self._pending: List[List[tuple]] = []

    # ------------------------------------------------------------------
    # Pair / row management
    # ------------------------------------------------------------------

    @property
    def num_pairs(self) -> int:
        """How many pairs currently own a row."""
        return len(self._rows)

    def pairs(self) -> List[ProbePair]:
        """Monitored pairs in first-probe order (legacy dict order)."""
        return list(self._rows)

    def row_of(self, pair: ProbePair) -> Optional[int]:
        """The pair's row index, or ``None`` when unmonitored."""
        return self._rows.get(pair)

    def consecutive_losses(self, row: int) -> int:
        """Current run of consecutive losses on ``row``."""
        return self._consec[row]

    def history_len(self, pair: ProbePair) -> int:
        """How many baseline windows the pair's LOF ring holds."""
        row = self._rows.get(pair)
        return int(self._hist_n[row]) if row is not None else 0

    def _grow_rows(self, need: int) -> None:
        old = self._lat.shape[0]
        new = max(need, old * 2, 16)
        lat = np.empty((new, self._lat.shape[1]))
        lat[:old] = self._lat
        self._lat = lat
        hist = np.empty((new, self._lookback, _FEATURES))
        hist[:old] = self._hist
        self._hist = hist
        for name in ("_hist_n", "_hist_head"):
            arr = np.zeros(new, dtype=np.int64)
            arr[:old] = getattr(self, name)
            setattr(self, name, arr)

    def _add_pair(self, pair: ProbePair) -> int:
        if self._free:
            row = self._free.pop()
            self._row_pair[row] = pair
        else:
            row = len(self._row_pair)
            self._row_pair.append(pair)
            self._ws.append(None)
            self._sent.append(0)
            self._lost.append(0)
            self._consec.append(0)
            self._lat_n.append(0)
            self._long_start.append(None)
            self._long_times.append([])
            self._long_vals.append([])
            self._fit_mu.append(None)
            self._fit_sigma.append(None)
            self._pending.append([])
            if row >= self._lat.shape[0]:
                self._grow_rows(row + 1)
        self._rows[pair] = row
        return row

    def drop(self, pair: ProbePair) -> None:
        """Forget a pair entirely (windows, baselines, fit, pending)."""
        row = self._rows.pop(pair, None)
        if row is None:
            return
        self._row_pair[row] = None
        self._ws[row] = None
        self._sent[row] = 0
        self._lost[row] = 0
        self._consec[row] = 0
        self._lat_n[row] = 0
        self._long_start[row] = None
        self._long_times[row] = []
        self._long_vals[row] = []
        self._fit_mu[row] = None
        self._fit_sigma[row] = None
        self._pending[row] = []
        self._hist_n[row] = 0
        self._hist_head[row] = 0
        self._free.append(row)

    # ------------------------------------------------------------------
    # Ingestion (per-probe hot path)
    # ------------------------------------------------------------------

    def ingest(self, pair: ProbePair, result: ProbeResult) -> int:
        """Append one probe into the pair's columns; returns the row.

        Elapsed 30-second windows are closed into the pending queue
        (never scored here) so a late probe can't leak into a window
        that already ended.
        """
        row = self._rows.get(pair)
        if row is None:
            row = self._add_pair(pair)
        t = result.sent_at
        ws = self._ws[row]
        if ws is None:
            self._ws[row] = ws = t
            self._long_start[row] = t
        if t >= ws + self._short_s:
            while t >= self._ws[row] + self._short_s:  # type: ignore
                self._close_short(row)
        self._sent[row] += 1
        if result.lost:
            self._lost[row] += 1
            self._consec[row] += 1
        else:
            self._consec[row] = 0
            times = self._long_times[row]
            if times and t < times[-1]:
                raise ValueError(
                    f"pair {pair} probes must arrive in time order: "
                    f"{t} < {times[-1]}"
                )
            n = self._lat_n[row]
            if n >= self._lat.shape[1]:
                grown = np.empty((self._lat.shape[0],
                                  2 * self._lat.shape[1]))
                grown[:, :self._lat.shape[1]] = self._lat
                self._lat = grown
            self._lat[row, n] = result.latency_us
            self._lat_n[row] = n + 1
            times.append(t)
            self._long_vals[row].append(float(result.latency_us))
        return row

    def _close_short(self, row: int) -> None:
        ws = self._ws[row]
        we = ws + self._short_s  # type: ignore[operator]
        n = self._lat_n[row]
        lats = self._lat[row, :n].copy() if n else None
        self._pending[row].append(
            (_SHORT, ws, we, self._sent[row], self._lost[row], lats)
        )
        self._ws[row] = we
        self._sent[row] = 0
        self._lost[row] = 0
        self._lat_n[row] = 0

    def enqueue_window(
        self,
        pair: ProbePair,
        window_start: float,
        window_end: float,
        sent: int,
        lost: int,
        latencies: Optional[np.ndarray] = None,
    ) -> int:
        """Queue one already-closed short window directly.

        Bypasses per-probe ingestion for callers that produce whole
        windows — the detector benchmark and window-level tests — so
        they measure/exercise exactly the batched scoring path.
        """
        row = self._rows.get(pair)
        if row is None:
            row = self._add_pair(pair)
        self._pending[row].append(
            (_SHORT, window_start, window_end, sent, lost, latencies)
        )
        return row

    def queue_elapsed_longs(self, row: int, now: float) -> None:
        """Move elapsed 30-minute aggregates into the pending queue."""
        start = self._long_start[row]
        if start is None:
            return
        while now >= start + self._long_s:
            end = start + self._long_s
            times = self._long_times[row]
            vals = self._long_vals[row]
            hi = bisect_left(times, end)
            self._pending[row].append((_LONG, end, vals[:hi]))
            del times[:hi]
            del vals[:hi]
            start = end
        self._long_start[row] = start

    def close_elapsed(self, now: float) -> None:
        """Close every elapsed short and long window across all rows."""
        short_s = self._short_s
        for row in self._rows.values():
            if self._ws[row] is not None:
                while now >= self._ws[row] + short_s:  # type: ignore
                    self._close_short(row)
            self.queue_elapsed_longs(row, now)

    def has_pending(self) -> bool:
        """Whether any row holds unscored windows."""
        return any(self._pending[r] for r in self._rows.values())

    # ------------------------------------------------------------------
    # Batched scoring
    # ------------------------------------------------------------------

    def collect(
        self, full: bool = False, watch: Optional[Dict] = None
    ) -> List[ScoredWindow]:
        """Score every pending window across all pairs, in batches.

        ``full`` emits a verdict for *every* window (the recorder needs
        one ``detect.lof`` / ``detect.ztest`` event per scored window);
        otherwise healthy windows are emitted only for pairs in
        ``watch`` (open incidents that may resolve) or pairs that
        alarmed earlier in this collection — the cases where the
        analyzer's bookkeeping actually inspects them.
        """
        active = [r for r in self._rows.values() if self._pending[r]]
        return self._collect_rows(active, full, watch)

    def collect_rows(
        self,
        rows: Sequence[int],
        full: bool = False,
        watch: Optional[Dict] = None,
    ) -> List[ScoredWindow]:
        """Score the pending windows of specific rows (fast-path drain)."""
        chosen = [r for r in rows if self._pending[r]]
        return self._collect_rows(chosen, full, watch)

    def _collect_rows(
        self, active: List[int], full: bool, watch: Optional[Dict]
    ) -> List[ScoredWindow]:
        if not active:
            return []
        watch = watch if watch is not None else {}
        out: Dict[int, List[ScoredWindow]] = {r: [] for r in active}
        flagged: set = set()  # rows that alarmed during this collect
        ptr = dict.fromkeys(active, 0)
        live = active
        while live:
            shorts: List[Tuple[int, tuple]] = []
            longs: List[Tuple[int, tuple]] = []
            for row in live:
                entry = self._pending[row][ptr[row]]
                ptr[row] += 1
                if entry[0] == _SHORT:
                    shorts.append((row, entry))
                else:
                    longs.append((row, entry))
            if shorts:
                self._score_short_wave(shorts, out, flagged, full, watch)
            if longs:
                self._score_long_wave(longs, out, flagged, full)
            live = [r for r in live if ptr[r] < len(self._pending[r])]
        for row in active:
            self._pending[row].clear()
        verdicts: List[ScoredWindow] = []
        for row in active:
            verdicts.extend(out[row])
        return verdicts

    def _emit_healthy(
        self, row: int, full: bool, watch: Dict, flagged: set
    ) -> bool:
        """Whether a healthy window's verdict is worth materializing."""
        return (
            full
            or row in flagged
            or self._row_pair[row] in watch
        )

    def _score_short_wave(
        self,
        entries: List[Tuple[int, tuple]],
        out: Dict[int, List[ScoredWindow]],
        flagged: set,
        full: bool,
        watch: Dict,
    ) -> None:
        cfg = self.config
        min_unconn = cfg.min_probes_for_unconnectivity
        loss_thr = cfg.loss_rate_threshold
        stat_entries: List[Tuple[int, tuple]] = []
        for row, entry in entries:
            _, ws, we, sent, lost, lats = entry
            pair = self._row_pair[row]
            if sent == 0:
                if full:
                    out[row].append(ScoredWindow(
                        pair, "short", ws, we, 0, 0, None, None, None, 0
                    ))
                continue
            if sent >= min_unconn and lost == sent:
                anomaly = DetectedAnomaly(
                    pair=pair, detected_at=we,
                    symptom=Symptom.UNCONNECTIVITY, detector="loss_rule",
                    score=1.0, window_start=ws,
                )
                flagged.add(row)
                out[row].append(ScoredWindow(
                    pair, "short", ws, we, sent, lost, anomaly,
                    None, None, 0,
                ))
                continue
            rate = lost / sent
            if rate > loss_thr:
                anomaly = DetectedAnomaly(
                    pair=pair, detected_at=we,
                    symptom=Symptom.PACKET_LOSS, detector="loss_rule",
                    score=rate, window_start=ws,
                )
                flagged.add(row)
                out[row].append(ScoredWindow(
                    pair, "short", ws, we, sent, lost, anomaly,
                    None, None, 0,
                ))
                continue
            if lats is None:
                # All probes lost but below the loss thresholds: no
                # feature to score, still a window the analyzer may
                # resolve an incident against.
                if self._emit_healthy(row, full, watch, flagged):
                    out[row].append(ScoredWindow(
                        pair, "short", ws, we, sent, lost, None,
                        None, None, 0,
                    ))
                continue
            stat_entries.append((row, entry))
        if stat_entries:
            self._score_feature_windows(
                stat_entries, out, flagged, full, watch
            )

    def _summaries_of(
        self, stat_entries: List[Tuple[int, tuple]]
    ) -> np.ndarray:
        """Vectorized seven-number summaries of a wave's windows.

        Matches :meth:`TimeSeries.describe` per row: sorted values,
        range-clamped mean, population std, linear-interpolated
        percentiles.
        """
        count = len(stat_entries)
        lens = np.fromiter(
            (entry[5].shape[0] for _, entry in stat_entries),
            dtype=np.int64, count=count,
        )
        width = int(lens.max())
        mask = np.arange(width)[None, :] < lens[:, None]
        padded = np.full((count, width), np.inf)
        padded[mask] = np.concatenate(
            [entry[5] for _, entry in stat_entries]
        )
        srt = np.sort(padded, axis=1)
        rows_ix = np.arange(count)
        mn = srt[:, 0]
        mx = srt[rows_ix, lens - 1]
        sums = np.add.reduce(np.where(mask, srt, 0.0), axis=1)
        mean = np.clip(sums / lens, mn, mx)
        diff = np.where(mask, srt - mean[:, None], 0.0)
        std = np.sqrt(np.add.reduce(diff * diff, axis=1) / lens)

        def pct(q: float) -> np.ndarray:
            rank = q * (lens - 1)
            low = np.floor(rank).astype(np.int64)
            high = np.ceil(rank).astype(np.int64)
            frac = rank - low
            return (
                srt[rows_ix, low] * (1.0 - frac)
                + srt[rows_ix, high] * frac
            )

        return np.column_stack(
            (pct(0.25), pct(0.5), pct(0.75), mn, mean, std, mx)
        )

    def _score_feature_windows(
        self,
        stat_entries: List[Tuple[int, tuple]],
        out: Dict[int, List[ScoredWindow]],
        flagged: set,
        full: bool,
        watch: Dict,
    ) -> None:
        cfg = self.config
        count = len(stat_entries)
        features = self._summaries_of(stat_entries)
        row_arr = np.fromiter(
            (row for row, _ in stat_entries), dtype=np.int64, count=count
        )
        counts = self._hist_n[row_arr]

        scores = np.full(count, np.nan)
        shifted = np.zeros(count, dtype=bool)
        scorable = np.nonzero(counts >= cfg.min_history_windows)[0]
        for n_hist in np.unique(counts[scorable]):
            group = scorable[counts[scorable] == n_hist]
            rows_g = row_arr[group]
            n = int(n_hist)
            if n < 2:
                scores[group] = 1.0
            else:
                scores[group] = lof_scores_fixed_batch(
                    self._hist[rows_g][:, :n, :],
                    features[group], k=cfg.lof_k,
                )
            if n >= 1:
                base = np.median(self._hist[rows_g][:, :n, 1], axis=1)
                positive = base > 0
                shift = (
                    features[group, 1] - base
                ) / np.where(positive, base, 1.0)
                shifted[group] = ~positive | (
                    shift > cfg.median_shift_threshold
                )
            else:
                shifted[group] = True

        anomalous = np.zeros(count, dtype=bool)
        anomalous[scorable] = (
            (scores[scorable] > cfg.lof_threshold) & shifted[scorable]
        )

        # Healthy windows join the baseline — one fancy-indexed ring
        # append for the whole wave (rows are unique within a wave).
        admit = np.nonzero(~anomalous)[0]
        if admit.size:
            rows_a = row_arr[admit]
            n_a = self._hist_n[rows_a]
            at_cap = n_a >= self._lookback
            slots = np.where(at_cap, self._hist_head[rows_a], n_a)
            self._hist[rows_a, slots] = features[admit]
            self._hist_n[rows_a] = np.minimum(n_a + 1, self._lookback)
            self._hist_head[rows_a] = np.where(
                at_cap,
                (self._hist_head[rows_a] + 1) % self._lookback,
                self._hist_head[rows_a],
            )

        scored_mask = np.zeros(count, dtype=bool)
        scored_mask[scorable] = True
        for i, (row, entry) in enumerate(stat_entries):
            _, ws, we, sent, lost, lats = entry
            pair = self._row_pair[row]
            if anomalous[i]:
                anomaly = DetectedAnomaly(
                    pair=pair, detected_at=we,
                    symptom=Symptom.HIGH_LATENCY,
                    detector="short_term_lof",
                    score=float(scores[i]), window_start=ws,
                )
                flagged.add(row)
                out[row].append(ScoredWindow(
                    pair, "short", ws, we, sent, lost, anomaly,
                    float(scores[i]), bool(shifted[i]), 0,
                ))
            elif scored_mask[i]:
                if self._emit_healthy(row, full, watch, flagged):
                    out[row].append(ScoredWindow(
                        pair, "short", ws, we, sent, lost, None,
                        float(scores[i]), bool(shifted[i]), 0,
                    ))
            elif self._emit_healthy(row, full, watch, flagged):
                out[row].append(ScoredWindow(
                    pair, "short", ws, we, sent, lost, None,
                    None, None, 0,
                ))

    def _score_long_wave(
        self,
        entries: List[Tuple[int, tuple]],
        out: Dict[int, List[ScoredWindow]],
        flagged: set,
        full: bool,
    ) -> None:
        cfg = self.config
        to_fit: List[Tuple[int, list]] = []
        to_test: List[Tuple[int, float, list]] = []
        for row, entry in entries:
            _, end, vals = entry
            if len(vals) < cfg.min_long_samples or len(vals) < 2:
                continue
            if self._fit_mu[row] is None:
                to_fit.append((row, vals))
            else:
                to_test.append((row, end, vals))
        if to_fit:
            padded, counts = self._pad_values([v for _, v in to_fit])
            mus, sigmas = fit_lognormal_rows(padded, counts)
            for i, (row, _) in enumerate(to_fit):
                self._fit_mu[row] = float(mus[i])
                self._fit_sigma[row] = float(sigmas[i])
        if to_test:
            padded, counts = self._pad_values(
                [v for _, _, v in to_test]
            )
            mu = np.fromiter(
                (self._fit_mu[row] for row, _, _ in to_test),
                dtype=np.float64, count=len(to_test),
            )
            sigma = np.fromiter(
                (self._fit_sigma[row] for row, _, _ in to_test),
                dtype=np.float64, count=len(to_test),
            )
            z, p = z_test_rows(mu, sigma, padded, counts)
            for i, (row, end, vals) in enumerate(to_test):
                pair = self._row_pair[row]
                hit = p[i] < cfg.ztest_alpha and z[i] > 0
                if hit:
                    anomaly: Optional[DetectedAnomaly] = DetectedAnomaly(
                        pair=pair, detected_at=end,
                        symptom=Symptom.HIGH_LATENCY,
                        detector="long_term_ztest",
                        score=abs(float(z[i])),
                        window_start=end - cfg.long_window_s,
                    )
                    flagged.add(row)
                elif not full:
                    continue
                else:
                    anomaly = None
                out[row].append(ScoredWindow(
                    pair, "long", end - cfg.long_window_s, end, 0, 0,
                    anomaly, float(z[i]), None, len(vals),
                ))

    @staticmethod
    def _pad_values(
        value_lists: List[list],
    ) -> Tuple[np.ndarray, np.ndarray]:
        counts = np.fromiter(
            (len(v) for v in value_lists), dtype=np.int64,
            count=len(value_lists),
        )
        width = int(counts.max())
        padded = np.full((len(value_lists), width), 1.0)
        mask = np.arange(width)[None, :] < counts[:, None]
        padded[mask] = np.concatenate(
            [np.asarray(v, dtype=np.float64) for v in value_lists]
        )
        return padded, counts
