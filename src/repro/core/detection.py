"""Connectivity anomaly detection (§5.2 of the paper).

Probe results stream into per-pair buffers.  Every 30 seconds a window
closes and yields a seven-number latency summary plus loss counts; the
detectors then decide whether the pair misbehaves:

* **Loss rules** — a window where every probe died is *unconnectivity*;
  a window with loss above a small threshold is *packet loss*.
* **Short-term LOF** — the window's summary vector is scored with the
  Local Outlier Factor against the last five minutes of healthy windows;
  a high score flags a *high-latency* anomaly.  Flagged windows are kept
  out of the baseline so a persistent failure cannot teach the detector
  that broken is normal.
* **Long-term Z-test** — thirty-minute aggregates are Z-tested against a
  log-normal fit of the pair's reference period, catching gradual
  degradation that creeps slowly enough to hide inside the LOF baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.analysis.lof import IncrementalLOF
from repro.analysis.stats import LognormalFit, fit_lognormal, z_test
from repro.core.pinglist import ProbePair
from repro.network.issues import Symptom
from repro.network.packet import ProbeResult
from repro.sim.metrics import SeriesStats, TimeSeries

__all__ = [
    "DetectedAnomaly",
    "DetectorConfig",
    "LongTermDetector",
    "PairMonitor",
    "ShortTermDetector",
    "WindowSummary",
]


@dataclass(frozen=True)
class WindowSummary:
    """One closed 30-second window of a pair's probing results."""

    pair: ProbePair
    window_start: float
    window_end: float
    sent: int
    lost: int
    stats: Optional[SeriesStats]  # None when every probe was lost

    @property
    def loss_rate(self) -> float:
        """Fraction of probes lost in the window."""
        return self.lost / self.sent if self.sent else 0.0

    def feature_vector(self) -> Optional[np.ndarray]:
        """The LOF feature: (p25, p50, p75, min, mean, std, max).

        Memoized: both the scorer and the baseline append consume the
        feature of the same window, and building the array dominates
        neither — but on the hot path even a spare ``np.asarray`` per
        window shows up at thousands of pairs.
        """
        if self.stats is None:
            return None
        cached = getattr(self, "_feature", None)
        if cached is None:
            cached = np.asarray(self.stats.as_vector(), dtype=np.float64)
            object.__setattr__(self, "_feature", cached)
        return cached


@dataclass(frozen=True)
class DetectedAnomaly:
    """A detector verdict for one pair and window."""

    pair: ProbePair
    detected_at: float
    symptom: Symptom
    detector: str
    score: float
    window_start: float


@dataclass(frozen=True)
class DetectorConfig:
    """Tunables shared by the detector stack."""

    short_window_s: float = 30.0
    long_window_s: float = 1800.0
    lookback_windows: int = 10          # 5 minutes of 30 s windows
    min_history_windows: int = 4
    lof_k: int = 4
    lof_threshold: float = 4.5
    # A window must also shift its *median* latency to alarm: transient
    # congestion spikes perturb max/std but leave the median untouched
    # (§5.2: transient spikes must be filtered out).
    median_shift_threshold: float = 0.15
    loss_rate_threshold: float = 0.01
    min_probes_for_unconnectivity: int = 3
    fast_unconnectivity_probes: int = 4  # consecutive losses -> alarm now
    ztest_alpha: float = 1e-4
    min_long_samples: int = 50


class ShortTermDetector:
    """Per-pair loss rules + LOF over 30-second window summaries.

    ``recorder`` (a :class:`~repro.obs.trace.TraceRecorder`) is optional:
    when attached, every scored window emits a ``detect.lof`` event with
    the LOF score and threshold so verdicts stay inspectable.
    """

    def __init__(
        self, config: Optional[DetectorConfig] = None, recorder=None
    ) -> None:
        # Per-instance default (lint rule "shared-instance-default").
        self.config = config if config is not None else DetectorConfig()
        self.recorder = recorder
        self._history: Dict[ProbePair, IncrementalLOF] = {}

    def reset(self, pair: ProbePair) -> None:
        """Forget a pair's baseline (its data path changed)."""
        self._history.pop(pair, None)

    def observe(self, summary: WindowSummary) -> Optional[DetectedAnomaly]:
        """Score one closed window; returns an anomaly or ``None``."""
        cfg = self.config

        if (
            summary.sent >= cfg.min_probes_for_unconnectivity
            and summary.lost == summary.sent
        ):
            return DetectedAnomaly(
                pair=summary.pair, detected_at=summary.window_end,
                symptom=Symptom.UNCONNECTIVITY, detector="loss_rule",
                score=1.0, window_start=summary.window_start,
            )
        if summary.sent > 0 and summary.loss_rate > cfg.loss_rate_threshold:
            return DetectedAnomaly(
                pair=summary.pair, detected_at=summary.window_end,
                symptom=Symptom.PACKET_LOSS, detector="loss_rule",
                score=summary.loss_rate, window_start=summary.window_start,
            )

        feature = summary.feature_vector()
        if feature is None:
            return None
        history = self._history.setdefault(
            summary.pair,
            IncrementalLOF(k=cfg.lof_k, capacity=cfg.lookback_windows),
        )
        anomaly: Optional[DetectedAnomaly] = None
        if len(history) >= cfg.min_history_windows:
            score = history.score(feature)
            shifted = self._median_shifted(history, feature)
            if self.recorder is not None:
                self.recorder.event(
                    "detect.lof", sim_time=summary.window_end,
                    pair=f"{summary.pair.src}<->{summary.pair.dst}",
                    score=float(score), threshold=cfg.lof_threshold,
                    median_shifted=shifted,
                    anomalous=score > cfg.lof_threshold and shifted,
                )
            if score > cfg.lof_threshold and shifted:
                anomaly = DetectedAnomaly(
                    pair=summary.pair, detected_at=summary.window_end,
                    symptom=Symptom.HIGH_LATENCY, detector="short_term_lof",
                    score=score, window_start=summary.window_start,
                )
        if anomaly is None:
            # Only healthy windows join the baseline.
            history.append(feature)
        return anomaly

    def _median_shifted(
        self, history: IncrementalLOF, feature: np.ndarray
    ) -> bool:
        """Whether the window's p50 rose beyond the transient tolerance."""
        baseline_p50 = float(np.median(history.points[:, 1]))
        if baseline_p50 <= 0:
            return True
        shift = (float(feature[1]) - baseline_p50) / baseline_p50
        return shift > self.config.median_shift_threshold


class LongTermDetector:
    """Log-normal Z-tests over 30-minute latency aggregates.

    Like the short-term detector, an optional ``recorder`` makes every
    Z-test decision inspectable via ``detect.ztest`` events.
    """

    def __init__(
        self, config: Optional[DetectorConfig] = None, recorder=None
    ) -> None:
        # Per-instance default (lint rule "shared-instance-default").
        self.config = config if config is not None else DetectorConfig()
        self.recorder = recorder
        self._fits: Dict[ProbePair, LognormalFit] = {}

    def reset(self, pair: ProbePair) -> None:
        """Forget a pair's reference fit (its data path changed)."""
        self._fits.pop(pair, None)

    def reference_of(self, pair: ProbePair) -> Optional[LognormalFit]:
        """The reference fit for ``pair``, if one has been established."""
        return self._fits.get(pair)

    def observe(
        self,
        pair: ProbePair,
        window_end: float,
        latencies: List[float],
    ) -> Optional[DetectedAnomaly]:
        """Test one 30-minute aggregate; the first one becomes the fit."""
        cfg = self.config
        if len(latencies) < cfg.min_long_samples:
            return None
        if pair not in self._fits:
            self._fits[pair] = fit_lognormal(latencies)
            return None
        result = z_test(self._fits[pair], latencies)
        if self.recorder is not None:
            self.recorder.event(
                "detect.ztest", sim_time=window_end,
                pair=f"{pair.src}<->{pair.dst}", z=float(result.z),
                alpha=cfg.ztest_alpha, samples=len(latencies),
                anomalous=result.anomalous(cfg.ztest_alpha)
                and result.z > 0,
            )
        if result.anomalous(cfg.ztest_alpha) and result.z > 0:
            return DetectedAnomaly(
                pair=pair, detected_at=window_end,
                symptom=Symptom.HIGH_LATENCY, detector="long_term_ztest",
                score=abs(result.z),
                window_start=window_end - cfg.long_window_s,
            )
        return None


class PairMonitor:
    """Buffers one pair's probe results and closes windows on schedule."""

    def __init__(
        self, pair: ProbePair, config: Optional[DetectorConfig] = None
    ) -> None:
        self.pair = pair
        # Per-instance default (lint rule "shared-instance-default").
        self.config = config if config is not None else DetectorConfig()
        self._window_start: Optional[float] = None
        self._latencies: List[float] = []
        self._sent = 0
        self._lost = 0
        self._long_series = TimeSeries(name=str(pair))
        self._long_start: Optional[float] = None
        self.consecutive_losses = 0

    def ingest(self, result: ProbeResult) -> List[WindowSummary]:
        """Add one probe result; returns any windows it closed."""
        closed: List[WindowSummary] = []
        if self._window_start is None:
            self._window_start = result.sent_at
            self._long_start = result.sent_at
        while result.sent_at >= self._window_start + self.config.short_window_s:
            closed.append(self._close_window())
        self._sent += 1
        if result.lost:
            self._lost += 1
            self.consecutive_losses += 1
        else:
            self.consecutive_losses = 0
            self._latencies.append(result.latency_us)
            self._long_series.record(result.sent_at, result.latency_us)
        return closed

    def flush(self, now: float) -> List[WindowSummary]:
        """Close every window that ended before ``now``."""
        closed: List[WindowSummary] = []
        if self._window_start is None:
            return closed
        while now >= self._window_start + self.config.short_window_s:
            closed.append(self._close_window())
        return closed

    def _close_window(self) -> WindowSummary:
        start = self._window_start
        end = start + self.config.short_window_s
        stats = (
            TimeSeries.describe(self._latencies) if self._latencies else None
        )
        summary = WindowSummary(
            pair=self.pair, window_start=start, window_end=end,
            sent=self._sent, lost=self._lost, stats=stats,
        )
        self._window_start = end
        self._latencies = []
        self._sent = 0
        self._lost = 0
        return summary

    def long_window_ready(self, now: float) -> bool:
        """Whether a 30-minute aggregate has fully elapsed."""
        return (
            self._long_start is not None
            and now >= self._long_start + self.config.long_window_s
        )

    def pop_long_window(self, now: float) -> List[float]:
        """Latencies of the elapsed long window (advances the window)."""
        if not self.long_window_ready(now):
            return []
        start = self._long_start
        end = start + self.config.long_window_s
        values = self._long_series.window(start, end)
        self._long_start = end
        return values
