"""Underlay physical-intersection analysis (Algorithm 1, lines 16-21).

ECMP multiplexing means a failing endpoint pair only tells us *one of*
its physical path's links is bad.  Network tomography intersects the
paths of many failing pairs: each failing path votes for every link it
crosses (``PhyLinkCounter``), and the links with the maximum vote count —
strictly above one, per Algorithm 1 — are the suspects.  Healthy-path
exoneration (as in 007/NetBouncer) can additionally strike links that
concurrently carried successful probes, which is sound for hard failures.

A promotion step interprets the raw link votes: several top links meeting
at one switch implicate the switch (e.g. switch offline); several leaf
links of one host implicate the host (board/config trouble); a single
leaf link implicates its RNIC.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.identifiers import LinkId
from repro.cluster.topology import UnderlayPath

__all__ = ["IntersectionResult", "PhysicalIntersection"]


def _is_rnic_device(name: str) -> bool:
    return "/rnic-" in name


def _host_of_device(name: str) -> Optional[str]:
    if _is_rnic_device(name):
        return name.split("/")[0]
    return None


@dataclass(frozen=True)
class IntersectionResult:
    """Outcome of one tomography vote."""

    votes: Dict[LinkId, int]
    suspects: Tuple[LinkId, ...]          # max-count links (count > 1)
    promoted_component: Optional[str]     # switch/host/RNIC, if inferable
    promoted_kind: Optional[str]          # 'switch' | 'host' | 'rnic' | None

    @property
    def found(self) -> bool:
        """Whether the vote produced any suspect."""
        return bool(self.suspects)

    def blamed_components(self) -> List[str]:
        """Component names to report, promotion first."""
        names: List[str] = []
        if self.promoted_component is not None:
            names.append(self.promoted_component)
        names.extend(str(link) for link in self.suspects)
        return names

    def as_fields(self) -> Dict[str, object]:
        """A JSON-serializable view of the vote (for trace events)."""
        return {
            "votes": {
                str(link): count for link, count in sorted(
                    self.votes.items(),
                    key=lambda kv: (-kv[1], str(kv[0])),
                )
            },
            "suspects": [str(link) for link in self.suspects],
            "promoted_component": self.promoted_component,
            "promoted_kind": self.promoted_kind,
        }


class PhysicalIntersection:
    """Counts link votes across failing paths and promotes suspects."""

    def __init__(self, min_votes: int = 2, tie_tolerance: int = 0) -> None:
        if min_votes < 2:
            raise ValueError(
                "Algorithm 1 requires more than one vote per suspect link"
            )
        self.min_votes = min_votes
        self.tie_tolerance = tie_tolerance

    def vote(
        self,
        failing_paths: Sequence[UnderlayPath],
        healthy_paths: Sequence[UnderlayPath] = (),
        exonerate: bool = False,
    ) -> IntersectionResult:
        """Intersect failing paths; optionally exonerate healthy links.

        ``exonerate=True`` is only sound for hard failures (a down link
        cannot carry a successful probe); lossy or slow links may pass
        some probes, so loss/latency votes must not exonerate.
        """
        counter: Counter = Counter()
        for path in failing_paths:
            for link in path.links:
                counter[link] += 1

        cleared: Set[LinkId] = set()
        if exonerate:
            for path in healthy_paths:
                cleared.update(path.links)

        eligible = {
            link: count
            for link, count in counter.items()
            if count >= self.min_votes and link not in cleared
        }
        if not eligible:
            return IntersectionResult(
                votes=dict(counter), suspects=(), promoted_component=None,
                promoted_kind=None,
            )
        top = max(eligible.values())
        suspects = tuple(sorted(
            link for link, count in eligible.items()
            if count >= top - self.tie_tolerance
        ))
        component, kind = self._promote(suspects)
        return IntersectionResult(
            votes=dict(counter), suspects=suspects,
            promoted_component=component, promoted_kind=kind,
        )

    @staticmethod
    def _promote(
        suspects: Tuple[LinkId, ...]
    ) -> Tuple[Optional[str], Optional[str]]:
        """Interpret the top-voted links as a device when they agree."""
        if not suspects:
            return None, None

        if len(suspects) >= 2:
            shared = {suspects[0].a, suspects[0].b}
            for link in suspects[1:]:
                shared &= {link.a, link.b}
            if len(shared) == 1:
                device = shared.pop()
                if _is_rnic_device(device):
                    return device, "rnic"
                return device, "switch"
            hosts = {
                host
                for link in suspects
                for host in (
                    _host_of_device(link.a), _host_of_device(link.b)
                )
                if host is not None
            }
            if len(hosts) == 1:
                return f"host:{hosts.pop()}", "host"
            return None, None

        # A single top link: a leaf link implicates its RNIC port.
        link = suspects[0]
        for device in (link.a, link.b):
            if _is_rnic_device(device):
                return device, "rnic"
        return None, None
