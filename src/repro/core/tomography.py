"""Underlay physical-intersection analysis (Algorithm 1, lines 16-21).

ECMP multiplexing means a failing endpoint pair only tells us *one of*
its physical path's links is bad.  Network tomography intersects the
paths of many failing pairs: each failing path votes for every link it
crosses (``PhyLinkCounter``), and the links with the maximum vote count —
strictly above one, per Algorithm 1 — are the suspects.  Healthy-path
exoneration (as in 007/NetBouncer) can additionally strike links that
concurrently carried successful probes, which is sound for hard failures.

A promotion step interprets the raw link votes: several top links meeting
at one switch implicate the switch (e.g. switch offline); several leaf
links of one host implicate the host (board/config trouble); a single
leaf link implicates its RNIC.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.identifiers import LinkId
from repro.cluster.topology import UnderlayPath

__all__ = ["IntersectionResult", "PhysicalIntersection"]


def _is_rnic_device(name: str) -> bool:
    return "/rnic-" in name


def _host_of_device(name: str) -> Optional[str]:
    if _is_rnic_device(name):
        return name.split("/")[0]
    return None


@dataclass(frozen=True)
class IntersectionResult:
    """Outcome of one tomography vote."""

    votes: Dict[LinkId, float]            # int counts or sprayed mass
    suspects: Tuple[LinkId, ...]          # max-count links (count > 1)
    promoted_component: Optional[str]     # switch/host/RNIC, if inferable
    promoted_kind: Optional[str]          # 'switch' | 'host' | 'rnic' | None

    @property
    def found(self) -> bool:
        """Whether the vote produced any suspect or promoted device."""
        return bool(self.suspects) or self.promoted_component is not None

    def blamed_components(self) -> List[str]:
        """Component names to report, promotion first."""
        names: List[str] = []
        if self.promoted_component is not None:
            names.append(self.promoted_component)
        names.extend(str(link) for link in self.suspects)
        return names

    def as_fields(self) -> Dict[str, object]:
        """A JSON-serializable view of the vote (for trace events)."""
        return {
            "votes": {
                str(link): count for link, count in sorted(
                    self.votes.items(),
                    key=lambda kv: (-kv[1], str(kv[0])),
                )
            },
            "suspects": [str(link) for link in self.suspects],
            "promoted_component": self.promoted_component,
            "promoted_kind": self.promoted_kind,
        }


class PhysicalIntersection:
    """Counts link votes across failing paths and promotes suspects.

    Two voting modes share the promotion logic: :meth:`vote` is the
    paper's integer intersection over pinned paths, and
    :meth:`vote_distributions` is its spraying-ECMP generalization —
    votes weighted by path probability mass, with healthy mass
    discounting instead of hard exoneration (a healthy pair crossing a
    gray link 1/k of the time proves little, but *all* of a link's
    crossers failing proves a lot).
    """

    def __init__(
        self,
        min_votes: int = 2,
        tie_tolerance: int = 0,
        min_mass: float = 0.5,
        ratio_floor: float = 0.5,
        tie_fraction: float = 0.75,
    ) -> None:
        if min_votes < 2:
            raise ValueError(
                "Algorithm 1 requires more than one vote per suspect link"
            )
        self.min_votes = min_votes
        self.tie_tolerance = tie_tolerance
        # Distribution-vote tunables: a suspect needs at least
        # ``min_mass`` expected failing crossings, at least
        # ``ratio_floor`` of its total crossing mass failing, and a
        # score within ``tie_fraction`` of the leader to stay a
        # suspect.  ``min_mass`` stays below 1.0 on purpose: a fabric
        # link sprayed by k equal-cost paths collects only 1/k mass
        # per failing pair, so two corroborating pairs on a 4-way
        # fabric reach exactly 0.5 — demanding a full unit would make
        # uplink faults invisible until k pairs fail at once.
        self.min_mass = min_mass
        self.ratio_floor = ratio_floor
        self.tie_fraction = tie_fraction

    def vote(
        self,
        failing_paths: Sequence[UnderlayPath],
        healthy_paths: Sequence[UnderlayPath] = (),
        exonerate: bool = False,
    ) -> IntersectionResult:
        """Intersect failing paths; optionally exonerate healthy links.

        ``exonerate=True`` is only sound for hard failures (a down link
        cannot carry a successful probe); lossy or slow links may pass
        some probes, so loss/latency votes must not exonerate.
        """
        counter: Counter = Counter()
        for path in failing_paths:
            for link in path.links:
                counter[link] += 1

        cleared: Set[LinkId] = set()
        if exonerate:
            for path in healthy_paths:
                cleared.update(path.links)

        eligible = {
            link: count
            for link, count in counter.items()
            if count >= self.min_votes and link not in cleared
        }
        if not eligible:
            return self._device_vote(
                failing_paths, healthy_paths, exonerate, dict(counter)
            )
        top = max(eligible.values())
        suspects = tuple(sorted(
            link for link, count in eligible.items()
            if count >= top - self.tie_tolerance
        ))
        component, kind = self._promote(suspects)
        return IntersectionResult(
            votes=dict(counter), suspects=suspects,
            promoted_component=component, promoted_kind=kind,
        )

    def vote_distributions(
        self,
        failing: Sequence[Sequence[UnderlayPath]],
        healthy: Sequence[Sequence[UnderlayPath]] = (),
    ) -> IntersectionResult:
        """Mass-weighted intersection over per-pair path distributions.

        Each element of ``failing``/``healthy`` is one pair's path
        distribution (every ECMP candidate, equal probability).  A pair
        contributes ``P(link on taken path)`` of vote mass to each link
        its distribution crosses; a link's score is its failing mass
        discounted by the fraction of total crossing mass that stayed
        healthy, so equally-sprayed sibling links separate whenever
        healthy pairs cross them.  Deterministic: accumulation order
        follows the input order and ties sort by link id.
        """
        fail_mass: Dict[LinkId, float] = {}
        total_mass: Dict[LinkId, float] = {}
        support: Dict[LinkId, int] = {}
        for dist, bucket in ((failing, True), (healthy, False)):
            for paths in dist:
                if not paths:
                    continue
                share = 1.0 / len(paths)
                seen: Dict[LinkId, float] = {}
                for path in paths:
                    for link in path.links:
                        seen[link] = seen.get(link, 0.0) + share
                for link, mass in seen.items():
                    total_mass[link] = total_mass.get(link, 0.0) + mass
                    if bucket:
                        fail_mass[link] = fail_mass.get(link, 0.0) + mass
                        support[link] = support.get(link, 0) + 1

        # A suspect needs corroboration from more than one failing pair
        # whenever more than one is available: a link crossed by a
        # single sprayed pair (its access links, with mass 1.0) must
        # not outvote a fabric link two independent pairs implicate at
        # 1/k mass each.
        needed = min(2, sum(1 for paths in failing if paths))
        scores: Dict[LinkId, float] = {}
        for link, mass in fail_mass.items():
            if mass < self.min_mass or support[link] < needed:
                continue
            ratio = mass / total_mass[link]
            if ratio < self.ratio_floor:
                continue
            scores[link] = mass * ratio
        if not scores:
            return self._device_vote_distributions(
                failing, healthy, dict(fail_mass)
            )
        top = max(scores.values())
        suspects = tuple(sorted(
            link for link, score in scores.items()
            if score >= top * self.tie_fraction
        ))
        component, kind = self._promote(suspects)
        return IntersectionResult(
            votes=dict(fail_mass), suspects=suspects,
            promoted_component=component, promoted_kind=kind,
        )

    def _device_vote(
        self,
        failing_paths: Sequence[UnderlayPath],
        healthy_paths: Sequence[UnderlayPath],
        exonerate: bool,
        link_votes: Dict[LinkId, float],
    ) -> IntersectionResult:
        """Switch-level intersection when no single link is conclusive.

        A PFC storm centred on a spine perturbs every uplink the spine
        serves: each failing pair crosses a *different* victim link, so
        no link reaches ``min_votes`` — but every failing path crosses
        the storm-centre switch itself.  Counting votes per transit
        switch recovers the device; the verdict stands only when one
        switch wins outright (an ambiguous device vote explains
        nothing).
        """
        counter: Counter = Counter()
        for path in failing_paths:
            for device in dict.fromkeys(path.switches()):
                counter[device] += 1
        cleared: Set[str] = set()
        if exonerate:
            for path in healthy_paths:
                cleared.update(path.switches())
        eligible = {
            device: count
            for device, count in counter.items()
            if count >= self.min_votes and device not in cleared
        }
        if eligible:
            top = max(eligible.values())
            leaders = sorted(
                device for device, count in eligible.items()
                if count >= top - self.tie_tolerance
            )
            if len(leaders) == 1:
                return IntersectionResult(
                    votes=link_votes, suspects=(),
                    promoted_component=leaders[0],
                    promoted_kind="switch",
                )
        return IntersectionResult(
            votes=link_votes, suspects=(),
            promoted_component=None, promoted_kind=None,
        )

    def _device_vote_distributions(
        self,
        failing: Sequence[Sequence[UnderlayPath]],
        healthy: Sequence[Sequence[UnderlayPath]],
        link_votes: Dict[LinkId, float],
    ) -> IntersectionResult:
        """Mass-weighted device intersection (spraying counterpart)."""
        fail_mass: Dict[str, float] = {}
        total_mass: Dict[str, float] = {}
        support: Dict[str, int] = {}
        for dist, bucket in ((failing, True), (healthy, False)):
            for paths in dist:
                if not paths:
                    continue
                share = 1.0 / len(paths)
                seen: Dict[str, float] = {}
                for path in paths:
                    # Ordered dedupe: a float accumulation must not
                    # iterate an unordered set (bit-determinism).
                    for device in dict.fromkeys(path.switches()):
                        seen[device] = seen.get(device, 0.0) + share
                for device, mass in seen.items():
                    total_mass[device] = total_mass.get(device, 0.0) + mass
                    if bucket:
                        fail_mass[device] = (
                            fail_mass.get(device, 0.0) + mass
                        )
                        support[device] = support.get(device, 0) + 1
        needed = min(2, sum(1 for paths in failing if paths))
        scores: Dict[str, float] = {}
        for device, mass in fail_mass.items():
            if mass < self.min_mass or support[device] < needed:
                continue
            ratio = mass / total_mass[device]
            if ratio < self.ratio_floor:
                continue
            scores[device] = mass * ratio
        if scores:
            top = max(scores.values())
            leaders = sorted(
                device for device, score in scores.items()
                if score >= top * self.tie_fraction
            )
            if len(leaders) == 1:
                return IntersectionResult(
                    votes=link_votes, suspects=(),
                    promoted_component=leaders[0],
                    promoted_kind="switch",
                )
        return IntersectionResult(
            votes=link_votes, suspects=(),
            promoted_component=None, promoted_kind=None,
        )

    @staticmethod
    def _promote(
        suspects: Tuple[LinkId, ...]
    ) -> Tuple[Optional[str], Optional[str]]:
        """Interpret the top-voted links as a device when they agree."""
        if not suspects:
            return None, None

        if len(suspects) >= 2:
            shared = {suspects[0].a, suspects[0].b}
            for link in suspects[1:]:
                shared &= {link.a, link.b}
            if len(shared) == 1:
                device = shared.pop()
                if _is_rnic_device(device):
                    return device, "rnic"
                return device, "switch"
            hosts = {
                host
                for link in suspects
                for host in (
                    _host_of_device(link.a), _host_of_device(link.b)
                )
                if host is not None
            }
            if len(hosts) == 1:
                return f"host:{hosts.pop()}", "host"
            return None, None

        # A single top link: a leaf link implicates its RNIC port.
        link = suspects[0]
        for device in (link.a, link.b):
            if _is_rnic_device(device):
                return device, "rnic"
        return None, None
