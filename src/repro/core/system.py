"""The SkeletonHunter facade: controller + agents + analyzer + localizer.

Wires every component onto one simulation clock:

* task submission triggers ping-list **preload**;
* container RUNNING transitions launch sidecar agents that **register**
  themselves, incrementally activating probe targets;
* a periodic probing loop has every agent probe its active targets and
  feed the analyzer;
* throughput observations can be fed in to run **skeleton inference** and
  shrink the ping list;
* newly opened failure events are **localized** within the same round,
  and each (time, report) is retained for evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.container import Container, TrainingTask
from repro.cluster.identifiers import EndpointId, TaskId
from repro.cluster.orchestrator import Cluster, Orchestrator
from repro.core.agent import AgentResourceModel
from repro.core.analyzer import Analyzer, FailureEvent
from repro.core.controller import Controller
from repro.core.detection import DetectorConfig
from repro.core.localization import (
    LocalizationReport,
    Localizer,
    healthy_pairs_for,
)
from repro.core.pinglist import ProbePair
from repro.core.skeleton import (
    InferredSkeleton,
    SkeletonInference,
    SkeletonInferenceError,
)
from repro.network.fabric import DataPlaneFabric
from repro.obs.trace import TraceRecorder
from repro.sim.engine import PeriodicTask, SimulationEngine
from repro.sim.metrics import MetricRegistry

__all__ = ["SkeletonHunter"]


class SkeletonHunter:
    """The end-to-end monitoring and diagnosis system."""

    def __init__(
        self,
        cluster: Cluster,
        engine: SimulationEngine,
        fabric: DataPlaneFabric,
        orchestrator: Orchestrator,
        detector_config: Optional[DetectorConfig] = None,
        probe_interval_s: float = 2.0,
        resources: Optional[AgentResourceModel] = None,
        inference: Optional[SkeletonInference] = None,
        handler=None,
        recovery=None,
        release_manager=None,
        observability: Optional[TraceRecorder] = None,
        verify_on_start: bool = False,
        chaos=None,
        retry_policy=None,
        bus=None,
    ) -> None:
        self.cluster = cluster
        self.engine = engine
        self.fabric = fabric
        self.orchestrator = orchestrator
        self.probe_interval_s = probe_interval_s
        # Observability (§6 log-service dashboards): one shared recorder
        # + metric registry threaded through every pipeline stage.  When
        # absent, components skip all emission; the fabric's own registry
        # still backs the probe counters and per-round series.
        self.obs = observability
        if observability is not None:
            fabric.attach_metrics(observability.metrics)
        # Optional monitor-plane chaos (repro.chaos): when set, agents
        # run hardened (retry/backoff + breakers), telemetry is
        # corrupted per the schedule, and flow-table reads can fail.
        # None keeps every path bit-identical to the unhardened plane.
        self.chaos = chaos
        # Optional TelemetryBus (repro.bus): every pipeline stage
        # publishes onto it — probe batches (agents), breaker
        # transitions (controller), round summaries / events / verdicts
        # / ping-list snapshots (here) — which is what the JSONL
        # recorder persists and the replayer reconstructs runs from.
        self.bus = bus
        self.controller = Controller(
            cluster, resources, release_manager=release_manager,
            recorder=observability, chaos=chaos, retry_policy=retry_policy,
            bus=bus,
        )
        self.analyzer = Analyzer(
            detector_config, recorder=observability
        )
        self.localizer = Localizer(
            cluster, fabric, recorder=observability, chaos=chaos
        )
        self.inference = inference or SkeletonInference(
            recorder=observability
        )
        # Optional operational integrations (§8): alerting/blacklisting
        # and migration-based recovery react to each new report.
        self.handler = handler
        self.recovery = recovery
        self.reports: List[Tuple[float, LocalizationReport]] = []
        self._watched: Set[TaskId] = set()
        self._localized_events: Set[Tuple[ProbePair, float]] = set()
        self._published_pairs: Optional[List[ProbePair]] = None
        self._round_salt = 0
        self._probe_task: Optional[PeriodicTask] = None
        self.verify_on_start = verify_on_start
        self.last_verification = None  # most recent VerifierReport

        orchestrator.on_container_running(self._on_container_running)
        orchestrator.on_container_finished(self._on_container_finished)

    @property
    def metrics(self) -> MetricRegistry:
        """The run's metric registry (shared with the fabric)."""
        if self.obs is not None:
            return self.obs.metrics
        return self.fabric.metrics

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def watch_task(self, task: TrainingTask) -> None:
        """Preload the basic ping list and begin monitoring ``task``."""
        self.controller.preload_task(task)
        self._watched.add(task.id)
        # Containers that came up before the watch started still need
        # their agents.
        for container in task.running_containers():
            self.controller.on_container_running(container, self.engine.now)

    def verify_fabric(self, workload=None, strict: bool = True):
        """Statically verify the fabric before (or instead of) probing.

        Runs the default :mod:`repro.verify` pass pipeline against this
        system's cluster, ping lists, and (optionally) ``workload``.
        With ``strict`` (the default), ERROR findings raise
        :class:`~repro.verify.framework.FabricVerificationError` so a
        misconfigured fabric is rejected before the first probe round.
        Returns the :class:`~repro.verify.framework.VerifierReport`.
        """
        # Imported lazily: repro.verify deliberately never imports
        # repro.core, and core only needs it on this path.
        from repro.verify.framework import (
            FabricVerificationError,
            FabricVerifier,
            VerificationContext,
        )

        verifier = FabricVerifier(recorder=self.obs)
        report = verifier.verify(VerificationContext(
            cluster=self.cluster, hunter=self, workload=workload,
        ))
        self.last_verification = report
        if strict and report.errors():
            raise FabricVerificationError(report)
        return report

    def start(self, first_round_at: Optional[float] = None) -> None:
        """Arm the periodic probing loop on the simulation clock.

        With ``verify_on_start``, the fabric is statically verified
        first and a fabric with ERROR findings refuses to start.
        """
        if self._probe_task is not None and not self._probe_task.stopped:
            return
        if self.verify_on_start:
            self.verify_fabric()
        self._probe_task = self.engine.schedule_periodic(
            self.probe_interval_s,
            self._probe_round,
            first_at=(
                self.engine.now + self.probe_interval_s
                if first_round_at is None else first_round_at
            ),
            label="skeletonhunter-probe-round",
        )

    def stop(self) -> None:
        """Disarm the probing loop."""
        if self._probe_task is not None:
            self._probe_task.stop()

    def _on_container_running(self, container: Container) -> None:
        if container.id.task not in self._watched:
            return
        self.controller.on_container_running(container, self.engine.now)

    def _on_container_finished(self, container: Container) -> None:
        if container.id.task not in self._watched:
            return
        # Crashed containers must stay in the ping list: their silence is
        # the unconnectivity signal; only graceful exits deregister.
        from repro.cluster.container import ContainerState

        if container.state == ContainerState.TERMINATED:
            self.controller.on_container_finished(container)

    # ------------------------------------------------------------------
    # Probing loop
    # ------------------------------------------------------------------

    def _probe_round(self) -> None:
        now = self.engine.now
        if self.obs is not None and self.obs.enabled:
            with self.obs.span("probe_round", sim_time=now) as span:
                sent, lost, anomalies, opened = self._run_round(now)
                span.set(
                    probes_sent=sent, probes_lost=lost,
                    anomalies=anomalies, events_opened=opened,
                )
            self.obs.event(
                "round.complete", sim_time=now, probes_sent=sent,
                probes_lost=lost, anomalies=anomalies,
                events_opened=opened,
                open_events=len(self.analyzer.open_events()),
            )
        else:
            self._run_round(now)

    def _run_round(self, now: float) -> Tuple[int, int, int, int]:
        """One probing round; returns this round's (sent, lost,
        anomalies, events-opened) deltas."""
        sent0 = self.fabric.probes_sent
        lost0 = self.fabric.probes_lost
        anomalies0 = len(self.analyzer.anomalies)
        opened0 = len(self.analyzer.events)
        for task_id in self.controller.monitored_tasks():
            for agent in self.controller.agents_of(task_id):
                for result in agent.execute_round(
                    self.fabric, now, self._round_salt
                ):
                    self.analyzer.ingest(result)
        self.analyzer.flush(now)
        self._localize_new_events(now)
        sent = self.fabric.probes_sent - sent0
        lost = self.fabric.probes_lost - lost0
        # The per-round series back windowed reporting (probes sent in a
        # [start, end) range), so they are recorded even when tracing is
        # off: one append per round is negligible next to the probes
        # themselves.
        registry = self.metrics
        registry.series("probes.sent_in_round").record(now, sent)
        registry.series("probes.lost_in_round").record(now, lost)
        anomalies = len(self.analyzer.anomalies) - anomalies0
        opened = len(self.analyzer.events) - opened0
        if self.bus is not None:
            from repro.bus.core import Topic

            # Published last within the round: the replayer flushes its
            # analyzer and localizes on this record, after every probe
            # batch, snapshot, and verdict of the round precedes it.
            self.bus.publish(
                Topic.ROUND,
                sim_time=now,
                sent=sent,
                lost=lost,
                anomalies=anomalies,
                events_opened=opened,
                open_events=len(self.analyzer.open_events()),
            )
        return (sent, lost, anomalies, opened)

    def _localize_new_events(self, now: float) -> None:
        open_events = self.analyzer.open_events()
        fresh = [
            event for event in open_events
            if event.key not in self._localized_events
        ]
        if not fresh:
            return
        all_pairs = self._all_active_pairs()
        if self.bus is not None:
            self._publish_localization_inputs(now, fresh, all_pairs)
        # Localize over *every* open event, not just the fresh ones:
        # gray (probabilistic) faults trickle events in across rounds,
        # and a single-pair batch gives tomography nothing to intersect.
        # Still-open incidents are live evidence — they corroborate the
        # vote and must not count as healthy exoneration mass.
        healthy = healthy_pairs_for(open_events, all_pairs)
        report = self.localizer.localize(
            open_events, healthy_pairs=healthy, now=now
        )
        self.reports.append((now, report))
        if self.bus is not None:
            from repro.bus.core import Topic

            self.bus.publish(
                Topic.VERDICTS,
                sim_time=now,
                at=now,
                diagnoses=[
                    [d.component, d.component_class.value, d.layer,
                     round(d.confidence, 9)]
                    for d in report.diagnoses
                ],
                unexplained=len(report.unexplained),
            )
        for event in fresh:
            self._localized_events.add(event.key)
        if self.handler is not None:
            self.handler.handle(now, report)
        if self.recovery is not None:
            for action in self.recovery.react(now, report):
                if not action.succeeded:
                    continue
                # The migration changed the container's data paths: its
                # pairs' baselines are stale by construction.
                container = self._find_container(action.container)
                if container is not None:
                    self.analyzer.reset_pairs_involving(
                        container.endpoints(), now
                    )

    def _publish_localization_inputs(
        self,
        now: float,
        fresh: List[FailureEvent],
        all_pairs: List[ProbePair],
    ) -> None:
        """Publish what this localization will consume, before it runs.

        The ping-list snapshot (published only when the active set
        changed) and the fresh events precede the verdict on the bus,
        so a replayer reading records in sequence order has both in
        hand when it re-localizes.
        """
        from repro.bus.codec import encode_pairs
        from repro.bus.core import Topic

        if self._published_pairs != all_pairs:
            self._published_pairs = list(all_pairs)
            self.bus.publish(
                Topic.PINGLIST,
                sim_time=now,
                pairs=encode_pairs(all_pairs),
            )
        for event in fresh:
            self.bus.publish(
                Topic.EVENTS,
                sim_time=now,
                src=str(event.pair.src),
                dst=str(event.pair.dst),
                first_detected_at=event.first_detected_at,
                symptom=event.symptom.value,
            )

    def _find_container(self, container_id):
        task = self.orchestrator.tasks.get(container_id.task)
        if task is None:
            return None
        return task.containers.get(container_id)

    def _all_active_pairs(self) -> List[ProbePair]:
        pairs: List[ProbePair] = []
        for task_id in self.controller.monitored_tasks():
            pairs.extend(
                self.controller.ping_list_of(task_id).active_pairs()
            )
        return pairs

    # ------------------------------------------------------------------
    # Skeleton optimization
    # ------------------------------------------------------------------

    def observe_and_optimize(
        self,
        task_id: TaskId,
        series_by_endpoint: Dict[EndpointId, np.ndarray],
        observed_at: float = 0.0,
    ) -> Optional[InferredSkeleton]:
        """Infer the traffic skeleton and shrink the task's ping list.

        ``series_by_endpoint`` is what the agents' throughput sampling
        collected (in the simulator, generated by the training-traffic
        substrate); ``observed_at`` is the simulated time of its first
        sample (only meaningful under chaos, which corrupts samples by
        their timestamps).  When inference cannot run on the degraded
        telemetry, the plane keeps the current ping list and returns
        ``None`` — a worse list beats a crashed monitor.
        """
        task = self.orchestrator.task(task_id)

        def host_of(endpoint: EndpointId):
            return task.containers[endpoint.container].host

        if self.chaos is not None:
            series_by_endpoint = self.chaos.corrupt_series(
                series_by_endpoint, at=observed_at
            )
        if self.bus is not None:
            from repro.bus.core import Topic

            self.bus.publish(
                Topic.RNIC_SERIES,
                sim_time=observed_at,
                task=str(task_id),
                series=[
                    [str(ep), int(np.asarray(values).size),
                     float(np.nansum(np.asarray(values, dtype=float)))]
                    for ep, values in sorted(
                        series_by_endpoint.items(),
                        key=lambda item: item[0],
                    )
                ],
            )
        try:
            skeleton = self.inference.infer(series_by_endpoint, host_of)
        except SkeletonInferenceError as error:
            if self.obs is not None:
                self.obs.count("skeleton.inference_failed")
                self.obs.event(
                    "skeleton.inference_failed", reason=str(error)
                )
            if self.bus is not None:
                from repro.bus.core import Topic

                self.bus.publish(
                    Topic.SKELETON,
                    sim_time=observed_at,
                    task=str(task_id),
                    applied=False,
                    reason=str(error),
                )
            return None
        self.controller.apply_skeleton(task_id, skeleton)
        if self.bus is not None:
            from repro.bus.core import Topic

            self.bus.publish(
                Topic.SKELETON,
                sim_time=observed_at,
                task=str(task_id),
                applied=True,
                edges=len(skeleton.edges),
                quarantined=len(skeleton.quarantined),
            )
            if skeleton.quarantined:
                self.bus.publish(
                    Topic.QUARANTINE,
                    sim_time=observed_at,
                    task=str(task_id),
                    endpoints=sorted(
                        str(ep) for ep in skeleton.quarantined
                    ),
                )
        return skeleton

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    @property
    def events(self) -> List[FailureEvent]:
        """All failure events raised so far."""
        return self.analyzer.events

    def monitored_pairs(self) -> List[ProbePair]:
        """Every pair the analyzer has seen probes for."""
        return self.analyzer.monitored_pairs()
