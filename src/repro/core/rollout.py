"""Agent release management (§8 of the paper, "Accelerating Agent
Evolution").

Sidecar deployment decouples agent updates from training tasks: after a
new release, *new* tasks automatically run the latest agent, and the
fleet converges as old tasks finish (over 20 online updates in ten
months of production).  Two channels exist — monthly **routine**
releases for significant upgrades and weekly **emergency** releases for
hot fixes.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.controller import Controller

__all__ = ["AgentRelease", "AgentReleaseManager", "ReleaseChannel"]


class ReleaseChannel(enum.Enum):
    """Which cadence a release ships on."""

    ROUTINE = "routine"       # monthly: significant upgrades
    EMERGENCY = "emergency"   # weekly: hot fixes


@dataclass(frozen=True)
class AgentRelease:
    """One published sidecar agent version."""

    version: str
    channel: ReleaseChannel
    released_at: float


class AgentReleaseManager:
    """Publishes agent versions and tracks fleet-wide convergence."""

    def __init__(self, initial_version: str = "v1.0.0") -> None:
        self._releases: List[AgentRelease] = [
            AgentRelease(initial_version, ReleaseChannel.ROUTINE, 0.0)
        ]

    # ------------------------------------------------------------------
    # Publishing
    # ------------------------------------------------------------------

    def publish(
        self, version: str, channel: ReleaseChannel, at: float
    ) -> AgentRelease:
        """Publish a new release; new agents pick it up immediately."""
        if at < self._releases[-1].released_at:
            raise ValueError(
                "releases must be published in chronological order"
            )
        if any(r.version == version for r in self._releases):
            raise ValueError(f"version {version!r} already published")
        release = AgentRelease(version, channel, at)
        self._releases.append(release)
        return release

    def current_version(self, at: Optional[float] = None) -> str:
        """The version a sidecar launched at time ``at`` runs."""
        if at is None:
            return self._releases[-1].version
        eligible = [r for r in self._releases if r.released_at <= at]
        if not eligible:
            return self._releases[0].version
        return eligible[-1].version

    def releases(self) -> List[AgentRelease]:
        """All published releases, oldest first."""
        return list(self._releases)

    # ------------------------------------------------------------------
    # Fleet view
    # ------------------------------------------------------------------

    def fleet_versions(self, controller: Controller) -> Dict[str, int]:
        """How many live agents run each version."""
        counts: Counter = Counter()
        for task_id in controller.monitored_tasks():
            for agent in controller.agents_of(task_id):
                counts[getattr(agent, "version", "unknown")] += 1
        return dict(counts)

    def rollout_fraction(
        self, controller: Controller, version: Optional[str] = None
    ) -> float:
        """Fraction of live agents on ``version`` (default: latest)."""
        wanted = version or self.current_version()
        counts = self.fleet_versions(controller)
        total = sum(counts.values())
        if total == 0:
            return 1.0
        return counts.get(wanted, 0) / total

    def emergency_releases(self) -> List[AgentRelease]:
        """Hot-fix releases published so far."""
        return [
            r for r in self._releases
            if r.channel == ReleaseChannel.EMERGENCY
        ]
