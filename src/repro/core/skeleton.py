"""Traffic skeleton inference (§5.1 of the paper).

From nothing but per-RNIC throughput series (observable by the CSP
without looking inside tenant containers), infer:

1. the **position groups** — RNICs at the same pipeline position across
   DP replicas, found by constrained hierarchical clustering of STFT
   features (Equations 1-3);
2. the **parallelism split** — DP equals the common group size, and
   TP x PP equals the group count;
3. the **stage order** — pipeline level of each group, recovered from
   burst onset times (earlier stages burst earlier in each iteration);
4. the **skeleton edges** — the endpoint pairs training traffic actually
   traverses: a ring inside each position group (DP all-reduce) plus
   links between members of adjacent pipeline stages (PP p2p).

The resulting edge set drives the runtime ping-list optimization: probing
only skeleton edges preserves failure coverage while cutting the basic
list by an order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Set

import numpy as np

from repro.analysis.clustering import (
    GroupingResult,
    constrained_position_groups,
)
from repro.analysis.stft import StftConfig, feature_matrix
from repro.cluster.identifiers import EndpointId

__all__ = [
    "InferredSkeleton",
    "SkeletonInference",
    "SkeletonInferenceError",
]


class SkeletonInferenceError(ValueError):
    """Inference could not run on the (possibly degraded) input.

    Subclasses :class:`ValueError` for backward compatibility; callers
    in the monitoring loop catch it and keep the current ping list
    rather than crashing the plane (see
    :meth:`repro.core.system.SkeletonHunter.observe_and_optimize`).
    """


@dataclass
class InferredSkeleton:
    """The inference output: groups, parallelism split, and edges."""

    endpoints: List[EndpointId]
    groups: List[List[EndpointId]]     # each = one pipeline position
    dp: int                            # inferred data parallelism
    group_count: int                   # inferred TP x PP
    stage_of_group: List[int]          # pipeline level of each group
    edges: Set[FrozenSet[EndpointId]] = field(default_factory=set)
    group_topology: str = "ring"       # intra-group pattern used
    #: Endpoints whose throughput series were too gappy/short to use;
    #: the controller keeps probing them at basic coverage instead of
    #: silently dropping them from the optimized list.
    quarantined: List[EndpointId] = field(default_factory=list)
    # Lazy endpoint -> group-index map backing group_of(); not part of
    # the skeleton's identity.
    _group_index: Optional[Dict[EndpointId, int]] = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_stages(self) -> int:
        """Distinct pipeline levels discovered."""
        return len(set(self.stage_of_group)) if self.stage_of_group else 0

    def coverage(self, true_edges: Set[FrozenSet[EndpointId]]) -> float:
        """Fraction of the real traffic edges the skeleton covers."""
        if not true_edges:
            return 1.0
        return len(self.edges & true_edges) / len(true_edges)

    def excess(self, true_edges: Set[FrozenSet[EndpointId]]) -> int:
        """Inferred edges that carry no real traffic (wasted probes)."""
        return len(self.edges - true_edges)

    def group_of(self, endpoint: EndpointId) -> int:
        """Index of the group containing ``endpoint`` (O(1), indexed).

        The index is built on first use; call
        :meth:`invalidate_group_index` after mutating :attr:`groups`.
        """
        if self._group_index is None:
            self._group_index = {
                member: index
                for index, group in enumerate(self.groups)
                for member in group
            }
        try:
            return self._group_index[endpoint]
        except KeyError:
            raise KeyError(
                f"{endpoint} is not part of the skeleton"
            ) from None

    def invalidate_group_index(self) -> None:
        """Drop the cached endpoint index (groups were edited)."""
        self._group_index = None


class SkeletonInference:
    """Infers traffic skeletons from RNIC throughput series."""

    def __init__(
        self,
        stft_config: Optional[StftConfig] = None,
        iteration_period_s: float = 30.0,
        group_topology: str = "auto",
        onset_threshold: float = 0.25,
        min_coverage: float = 0.6,
        recorder=None,
    ) -> None:
        if group_topology not in ("ring", "mesh", "auto"):
            raise ValueError(
                f"group_topology must be 'ring', 'mesh', or 'auto', "
                f"got {group_topology!r}"
            )
        self.stft_config = stft_config or StftConfig()
        self.iteration_period_s = iteration_period_s
        self.group_topology = group_topology
        self.onset_threshold = onset_threshold
        #: Minimum fraction of finite samples an endpoint's series must
        #: carry to take part in inference; below it the endpoint is
        #: quarantined (kept at basic probing coverage) instead.
        self.min_coverage = min_coverage
        self.recorder = recorder

    # ------------------------------------------------------------------
    # Main entry point
    # ------------------------------------------------------------------

    def infer(
        self,
        series_by_endpoint: Dict[EndpointId, np.ndarray],
        host_of: Callable[[EndpointId], Hashable],
    ) -> InferredSkeleton:
        """Run the full inference pipeline on collected throughput series.

        Gapped or corrupt series (NaN samples — dropped telemetry) are
        repaired by interpolation when coverage allows, or quarantined
        otherwise; clean input flows through untouched, bit-identical
        to the unhardened path.  Raises :class:`SkeletonInferenceError`
        (a :class:`ValueError`) when fewer than two usable endpoints
        remain — never a crash deeper in the pipeline.
        """
        usable, quarantined = self._sanitize_series(series_by_endpoint)
        if quarantined and self.recorder is not None:
            self.recorder.count(
                "skeleton.quarantined", amount=float(len(quarantined))
            )
            self.recorder.event(
                "skeleton.quarantine",
                endpoints=[str(e) for e in quarantined],
            )
        endpoints = sorted(usable)
        if len(endpoints) < 2:
            raise SkeletonInferenceError(
                "need at least two endpoints to infer "
                f"({len(quarantined)} quarantined as incomplete)"
            )
        series = [usable[e] for e in endpoints]
        features = feature_matrix(series, self.stft_config)
        hosts = [host_of(e) for e in endpoints]

        grouping = constrained_position_groups(features, hosts)
        groups = self._materialize_groups(endpoints, grouping)
        profiles = [
            self._folded_profile(group, usable)
            for group in groups
        ]
        stage_of_group = self._partition_stages(
            [self._onset_bin(profile) for profile in profiles]
        )
        topology = self.group_topology
        if topology == "auto":
            topology = self._detect_group_topology(profiles)
        edges = self._build_edges(groups, stage_of_group, topology)
        return InferredSkeleton(
            endpoints=endpoints,
            groups=groups,
            dp=grouping.group_size,
            group_count=grouping.num_groups,
            stage_of_group=stage_of_group,
            edges=edges,
            group_topology=topology,
            quarantined=quarantined,
        )

    # ------------------------------------------------------------------
    # Ingestion hardening
    # ------------------------------------------------------------------

    def _sanitize_series(
        self,
        series_by_endpoint: Dict[EndpointId, np.ndarray],
    ) -> "tuple[Dict[EndpointId, np.ndarray], List[EndpointId]]":
        """Split input into usable (possibly repaired) and quarantined.

        An endpoint is quarantined when its series is shorter than one
        iteration period or carries less than ``min_coverage`` finite
        samples.  Remaining NaN gaps are repaired *phase-aware*: the
        series is periodic in the iteration, so a missing sample takes
        the median of its phase bin across the other iterations.  That
        preserves burst onsets — which linear interpolation across a
        burst edge smears, silently collapsing the stage partition.
        Phases with no finite sample anywhere fall back to linear
        interpolation.  Fully-finite series are passed through *by
        reference* so the clean path stays bit-identical.
        """
        period = int(round(self.iteration_period_s))
        usable: Dict[EndpointId, np.ndarray] = {}
        quarantined: List[EndpointId] = []
        for endpoint in sorted(series_by_endpoint):
            data = np.asarray(
                series_by_endpoint[endpoint], dtype=np.float64
            )
            if len(data) < period:
                quarantined.append(endpoint)
                continue
            finite = np.isfinite(data)
            if finite.all():
                usable[endpoint] = data
                continue
            if float(finite.mean()) < self.min_coverage or finite.sum() < 2:
                quarantined.append(endpoint)
                continue
            usable[endpoint] = self._repair_series(data, finite, period)
        return usable, quarantined

    @staticmethod
    def _repair_series(
        data: np.ndarray, finite: np.ndarray, period: int
    ) -> np.ndarray:
        """Fill NaN gaps from the same phase bin of other iterations."""
        repaired = data.copy()
        pad = (-len(data)) % period
        padded = np.concatenate([data, np.full(pad, np.nan)])
        table = padded.reshape(-1, period)
        phase_counts = np.isfinite(table).sum(axis=0)
        phase_median = np.zeros(period, dtype=np.float64)
        covered = phase_counts > 0
        if covered.any():
            # nanmedian warns on all-NaN columns; only covered phases
            # are evaluated, so the reduction stays silent.
            phase_median[covered] = np.nanmedian(
                table[:, covered], axis=0
            )
        bad = np.flatnonzero(~finite)
        fillable = covered[bad % period]
        repaired[bad[fillable]] = phase_median[bad[fillable] % period]
        remaining = np.flatnonzero(~np.isfinite(repaired))
        if len(remaining):
            good = np.flatnonzero(np.isfinite(repaired))
            repaired[remaining] = np.interp(
                remaining, good, repaired[good]
            )
        return repaired

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------

    @staticmethod
    def _materialize_groups(
        endpoints: List[EndpointId], grouping: GroupingResult
    ) -> List[List[EndpointId]]:
        """Turn row-index groups into endpoint groups, members sorted."""
        groups: List[List[EndpointId]] = []
        for members in grouping.groups():
            groups.append(sorted(endpoints[i] for i in members))
        # Deterministic group order: by first member.
        groups.sort(key=lambda g: g[0])
        return groups

    def _onset_bin(self, folded: np.ndarray) -> int:
        """First sample of the fold that rises clearly above the floor.

        The threshold sits just above the quiet-phase noise floor rather
        than at a fraction of the peak: the shared all-reduce burst
        dominates the peak, which would otherwise hide the (weaker)
        micro-burst window whose start encodes the pipeline level.
        """
        peak = float(folded.max())
        if peak <= 0:
            return 0
        floor = float(np.percentile(folded, 10))
        quiet = np.sort(folded)[: max(3, int(0.3 * len(folded)))]
        sigma = float(quiet.std())
        threshold = floor + max(5.0 * sigma, self.onset_threshold * 0.2 * peak)
        above = np.flatnonzero(folded >= threshold)
        return int(above[0]) if len(above) else 0

    @staticmethod
    def _partition_stages(
        onsets: List[int],
        within_tolerance: float = 2.0,
        min_gap: float = 1.5,
    ) -> List[int]:
        """Partition groups into pipeline stages by onset time.

        Exploits the structural constraint that every pipeline level
        contains the same number of groups (its TP siblings): candidate
        stage counts are the divisors of the group count, each splitting
        the onset-sorted groups into equal contiguous blocks.  A split is
        valid when blocks are internally tight (range within tolerance —
        1 Hz sampling jitters onsets by a bin) and adjacent block means
        are separated by at least ``min_gap``.  The finest valid split
        wins; it recovers PP even when a few onsets are off by one.
        """
        k = len(onsets)
        if k == 0:
            return []
        order = sorted(range(k), key=lambda i: onsets[i])
        sorted_onsets = [onsets[i] for i in order]
        divisors = [s for s in range(k, 0, -1) if k % s == 0]
        chosen = 1
        for s in divisors:
            block = k // s
            means = []
            valid = True
            for b in range(s):
                chunk = sorted_onsets[b * block:(b + 1) * block]
                if chunk[-1] - chunk[0] > within_tolerance:
                    valid = False
                    break
                means.append(sum(chunk) / block)
            if valid and all(
                later - earlier >= min_gap
                for earlier, later in zip(means, means[1:])
            ):
                chosen = s
                break
        block = k // chosen
        labels = [0] * k
        for position, index in enumerate(order):
            labels[index] = position // block
        return labels

    def _folded_profile(
        self,
        group: List[EndpointId],
        series_by_endpoint: Dict[EndpointId, np.ndarray],
    ) -> np.ndarray:
        """Mean over members of the iteration-folded throughput."""
        period = int(round(self.iteration_period_s))
        profiles = []
        for endpoint in group:
            data = np.asarray(series_by_endpoint[endpoint], dtype=np.float64)
            usable = (len(data) // period) * period
            if usable == 0:
                raise ValueError(
                    f"series for {endpoint} is shorter than one iteration"
                )
            folded = data[:usable].reshape(-1, period).mean(axis=0)
            profiles.append(folded)
        return np.mean(profiles, axis=0)

    def _detect_group_topology(
        self, profiles: List[np.ndarray]
    ) -> str:
        """Classify dense (ring) vs MoE (mesh) traffic from burst phases.

        A dense iteration shows at most two activity phases per group
        (the pipeline window and the all-reduce tail); MoE token routing
        adds a third, separate all-to-all burst.  Groups whose window
        sits late in the iteration can have phases merge across the
        fold boundary, so the vote is a fraction: when at least 40% of
        groups show three or more activity segments, the task carries
        expert all-to-all traffic and intra-group probing must cover
        the full mesh.
        """
        counts = [
            self._active_segments(profile) for profile in profiles
        ]
        if not counts:
            return "ring"
        rich = sum(1 for count in counts if count >= 3)
        return "mesh" if rich / len(counts) >= 0.4 else "ring"

    @staticmethod
    def _active_segments(profile: np.ndarray) -> int:
        """Contiguous above-floor runs of a folded profile."""
        peak = float(profile.max())
        if peak <= 0:
            return 0
        floor = float(np.percentile(profile, 10))
        active = profile >= floor + 0.15 * (peak - floor)
        return int(
            np.sum(active[1:] & ~active[:-1]) + int(active[0])
        )

    def _build_edges(
        self,
        groups: List[List[EndpointId]],
        stage_of_group: List[int],
        topology: str,
    ) -> Set[FrozenSet[EndpointId]]:
        """Skeleton edges: intra-group rings/meshes + inter-stage links."""
        edges: Set[FrozenSet[EndpointId]] = set()

        # DP traffic: ring all-reduce (or MoE all-to-all) inside a group.
        for group in groups:
            if len(group) < 2:
                continue
            if topology == "mesh":
                for i, a in enumerate(group):
                    for b in group[i + 1:]:
                        self._add_edge(edges, a, b)
            else:
                for i, a in enumerate(group):
                    b = group[(i + 1) % len(group)]
                    self._add_edge(edges, a, b)

        # PP traffic: link members of adjacent-stage groups pairwise.
        by_stage: Dict[int, List[int]] = {}
        for index, stage in enumerate(stage_of_group):
            by_stage.setdefault(stage, []).append(index)
        stages = sorted(by_stage)
        for current, following in zip(stages, stages[1:]):
            lower = sorted(by_stage[current], key=lambda g: groups[g][0])
            upper = sorted(by_stage[following], key=lambda g: groups[g][0])
            for ga, gb in zip(lower, upper):
                for a, b in zip(groups[ga], groups[gb]):
                    self._add_edge(edges, a, b)
        return edges

    @staticmethod
    def _add_edge(
        edges: Set[FrozenSet[EndpointId]], a: EndpointId, b: EndpointId
    ) -> None:
        if a == b or a.container == b.container:
            return  # intra-container traffic rides NVLink, not the network
        edges.add(frozenset((a, b)))
