"""Optimistic overlay–underlay disentanglement (§5.3, Algorithm 1).

Given the failure events the analyzer raised, localize the culprit
component under the optimistic assumption that overlay causes are
software-level and underlay causes are hardware-level, so the two layers
can be examined independently:

1. **Overlay logical reachability** — replay the forwarding chain of each
   failing pair over the live flow tables (read-only).  A null forward
   pinpoints the broken overlay component; a revisited component reveals
   a forwarding loop.
2. **Underlay physical intersection** — traceroute the failing pairs and
   let tomography vote on shared physical links (hard failures also
   exonerate links that healthy probes crossed).
3. **RNIC validation** — if neither layer explains an event, dump and
   diff the OVS and RNIC flow tables of both endpoints (intrusive,
   therefore last), catching silent hardware invalidation and
   software-path fallbacks.
4. **Host concentration** — events that still resist explanation but
   concentrate on one host are handed to host fine-checking (board or
   configuration trouble: PCIe, GPU-direct, hugepages).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.identifiers import EndpointId, HostId, RnicId
from repro.cluster.orchestrator import Cluster
from repro.cluster.overlay import OverlayError, OverlayTrace
from repro.cluster.topology import UnderlayPath
from repro.core.analyzer import FailureEvent
from repro.core.pinglist import ProbePair
from repro.core.rnic_validation import RnicValidator
from repro.core.tomography import IntersectionResult, PhysicalIntersection
from repro.network.fabric import DataPlaneFabric
from repro.network.issues import ComponentClass, Symptom

__all__ = [
    "Diagnosis",
    "LocalizationReport",
    "Localizer",
    "healthy_pairs_for",
]


def _pair_label(pair: ProbePair) -> str:
    return f"{pair.src}<->{pair.dst}"


def healthy_pairs_for(
    events: Sequence[FailureEvent],
    all_pairs: Sequence[ProbePair],
) -> List[ProbePair]:
    """The exoneration set for a localization batch: every monitored
    pair not implicated by ``events``.  Shared by the single-process
    hunter and the shard coordinator so both feed tomography the same
    healthy evidence for the same failure set."""
    failing = {event.pair for event in events}
    return [pair for pair in all_pairs if pair not in failing]


@dataclass(frozen=True)
class Diagnosis:
    """One localized culprit with its supporting evidence."""

    component: str
    component_class: ComponentClass
    layer: str           # overlay | underlay | rnic | host
    evidence: str
    pairs: Tuple[ProbePair, ...]
    confidence: float = 1.0

    def explain(self, recorder=None) -> str:
        """Render the evidence chain behind this verdict.

        With the :class:`~repro.obs.trace.TraceRecorder` the localizer
        emitted into, the chain includes the captured walk steps,
        tomography votes, or flow-table findings; without one it falls
        back to the one-line ``evidence`` summary.
        """
        from repro.obs.explain import explain_diagnosis

        return explain_diagnosis(self, recorder)


@dataclass
class LocalizationReport:
    """Ranked diagnoses plus anything the pipeline could not explain."""

    diagnoses: List[Diagnosis] = field(default_factory=list)
    unexplained: List[FailureEvent] = field(default_factory=list)

    def components(self) -> List[str]:
        """Component names in rank order."""
        return [d.component for d in self.diagnoses]

    def best(self) -> Optional[Diagnosis]:
        """The highest-confidence diagnosis, if any."""
        if not self.diagnoses:
            return None
        return max(self.diagnoses, key=lambda d: d.confidence)

    def explain(self, recorder=None) -> str:
        """Render every diagnosis with its evidence chain."""
        from repro.obs.explain import explain_report

        return explain_report(self, recorder)


class Localizer:
    """Runs Algorithm 1 over batches of failure events."""

    def __init__(
        self,
        cluster: Cluster,
        fabric: DataPlaneFabric,
        intersection: Optional[PhysicalIntersection] = None,
        recorder=None,
        chaos=None,
        distribution_aware: bool = True,
    ) -> None:
        self.cluster = cluster
        self.fabric = fabric
        self.intersection = intersection or PhysicalIntersection()
        self.validator = RnicValidator(
            cluster, chaos=chaos, recorder=recorder
        )
        self.recorder = recorder
        #: When the fabric sprays packets, vote over path distributions
        #: (mass-weighted) instead of pinned traceroutes.  Disable to
        #: measure how naive single-path tomography degrades under
        #: spraying (the bench's "naive" comparator).
        self.distribution_aware = distribution_aware
        self._now = 0.0     # sim time of the localize() call in flight

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def localize(
        self,
        events: Sequence[FailureEvent],
        healthy_pairs: Sequence[ProbePair] = (),
        now: float = 0.0,
        paths: Optional[Dict[ProbePair, UnderlayPath]] = None,
    ) -> LocalizationReport:
        """Run the full disentanglement over a batch of events.

        ``paths`` optionally supplies already-traced underlay routes for
        failing pairs (e.g. reported by shard workers); pairs missing
        from it fall back to a live traceroute.
        """
        self._now = now
        if self.recorder is None:
            return self._localize(events, healthy_pairs, paths)
        with self.recorder.span(
            "localize.run", sim_time=now, events=len(events)
        ) as span:
            report = self._localize(events, healthy_pairs, paths)
            span.set(
                diagnoses=len(report.diagnoses),
                unexplained=len(report.unexplained),
            )
        return report

    def _localize(
        self,
        events: Sequence[FailureEvent],
        healthy_pairs: Sequence[ProbePair],
        known_paths: Optional[Dict[ProbePair, UnderlayPath]] = None,
    ) -> LocalizationReport:
        report = LocalizationReport()
        remaining: List[FailureEvent] = []

        for event in events:
            diagnosis = self._overlay_reachability(event)
            if diagnosis is not None:
                self._add(report, diagnosis)
            else:
                remaining.append(event)

        remaining = self._physical_intersection(
            remaining, healthy_pairs, report, known_paths
        )
        remaining = self._validate_rnics(remaining, report)
        remaining = self._host_concentration(remaining, report)
        report.unexplained = remaining
        return report

    def _add(
        self, report: LocalizationReport, diagnosis: Diagnosis
    ) -> None:
        """Append a diagnosis and record the verdict event."""
        report.diagnoses.append(diagnosis)
        if self.recorder is not None:
            self.recorder.count("diagnoses.made")
            self.recorder.event(
                "localize.diagnosis", sim_time=self._now,
                component=diagnosis.component,
                component_class=diagnosis.component_class.value,
                layer=diagnosis.layer,
                evidence=diagnosis.evidence,
                pairs=[_pair_label(p) for p in diagnosis.pairs],
                confidence=diagnosis.confidence,
            )

    # ------------------------------------------------------------------
    # Step 1: overlay logical reachability (Algorithm 1, lines 7-15)
    # ------------------------------------------------------------------

    def _overlay_reachability(
        self, event: FailureEvent
    ) -> Optional[Diagnosis]:
        pair = event.pair
        trace = self.cluster.overlay.trace(
            pair.src, pair.dst, install_missing=False
        )
        if trace.reached and not trace.loop:
            # Try the reverse direction too: probes are bidirectional.
            trace = self.cluster.overlay.trace(
                pair.dst, pair.src, install_missing=False
            )
            if trace.reached and not trace.loop:
                return None
        diagnosis = self._classify_overlay_break(event, trace)
        if self.recorder is not None:
            self.recorder.event(
                "localize.overlay", sim_time=self._now,
                pair=_pair_label(pair),
                reached=trace.reached, loop=trace.loop,
                steps=[
                    {
                        "component": hop.component, "kind": hop.kind,
                        "ok": hop.ok, "note": hop.note,
                    }
                    for hop in trace.hops
                ],
                component=(
                    diagnosis.component if diagnosis is not None else None
                ),
                evidence=(
                    diagnosis.evidence if diagnosis is not None else None
                ),
            )
        return diagnosis

    def _classify_overlay_break(
        self, event: FailureEvent, trace: OverlayTrace
    ) -> Optional[Diagnosis]:
        if trace.loop:
            component = trace.hops[-1].component
            return Diagnosis(
                component=component,
                component_class=ComponentClass.VIRTUAL_SWITCH,
                layer="overlay",
                evidence="forwarding loop in overlay chain",
                pairs=(event.pair,),
            )
        failing = next((h for h in trace.hops if not h.ok), None)
        if failing is None:
            return None
        kind, _, name = failing.component.partition(":")
        if kind == "veth":
            endpoint = self._endpoint_from_name(name, event.pair)
            container = (
                endpoint.container if endpoint is not None else name
            )
            return Diagnosis(
                component=f"container:{container}",
                component_class=ComponentClass.CONTAINER_RUNTIME,
                layer="overlay",
                evidence=f"veth unreachable: {failing.note}",
                pairs=(event.pair,),
            )
        if kind == "ovs":
            return self._classify_ovs_break(event, name, failing.note)
        if kind == "vtep":
            return Diagnosis(
                component=name,
                component_class=ComponentClass.RNIC,
                layer="overlay",
                evidence=f"VTEP failure: {failing.note}",
                pairs=(event.pair,),
            )
        return Diagnosis(
            component=failing.component,
            component_class=ComponentClass.VIRTUAL_SWITCH,
            layer="overlay",
            evidence=failing.note or "overlay forwarding broke",
            pairs=(event.pair,),
        )

    def _classify_ovs_break(
        self, event: FailureEvent, host_name: str, note: str
    ) -> Diagnosis:
        """A flow-table miss: destination-side misses smell like the
        kernel invalidating GIDs; source/transit misses are the virtual
        switch losing rules."""
        dst_host = self._host_of_endpoint(event.pair.dst)
        src_host = self._host_of_endpoint(event.pair.src)
        if dst_host is not None and host_name == str(dst_host) and (
            "miss" in note
        ):
            return Diagnosis(
                component=f"host:{dst_host}",
                component_class=ComponentClass.KERNEL,
                layer="overlay",
                evidence="delivery rule vanished on destination host "
                "(GID/addressing change)",
                pairs=(event.pair,),
            )
        if src_host is not None and host_name == str(src_host) and (
            "miss" in note
        ):
            # The reverse-direction walk can also break at the *other*
            # side's delivery rule; same kernel-level classification.
            return Diagnosis(
                component=f"host:{src_host}",
                component_class=ComponentClass.KERNEL,
                layer="overlay",
                evidence="delivery rule vanished on source-side host "
                "(GID/addressing change)",
                pairs=(event.pair,),
            )
        return Diagnosis(
            component=f"ovs:{host_name}",
            component_class=ComponentClass.VIRTUAL_SWITCH,
            layer="overlay",
            evidence=note or "virtual switch failed to forward",
            pairs=(event.pair,),
        )

    # ------------------------------------------------------------------
    # Step 2: underlay physical intersection (Algorithm 1, lines 16-21)
    # ------------------------------------------------------------------

    def _physical_intersection(
        self,
        events: List[FailureEvent],
        healthy_pairs: Sequence[ProbePair],
        report: LocalizationReport,
        known_paths: Optional[Dict[ProbePair, UnderlayPath]] = None,
    ) -> List[FailureEvent]:
        if not events:
            return []
        sprayed = self.distribution_aware and getattr(
            self.fabric, "spraying", False
        )
        hard = [e for e in events if e.symptom == Symptom.UNCONNECTIVITY]
        soft = [e for e in events if e.symptom != Symptom.UNCONNECTIVITY]
        explained: Set[ProbePair] = set()

        if sprayed:
            # Pinned traceroutes are meaningless under per-packet
            # spraying (known_paths included — a shard's reported pick
            # is one sample, not the flow's route): vote over the full
            # path distribution of every pair instead.
            healthy_dists = [
                d for d in (
                    self.fabric.path_distribution(pair.src, pair.dst)
                    for pair in healthy_pairs
                ) if d
            ]
        else:
            healthy_paths = [
                p for p in (
                    self.fabric.traceroute(pair.src, pair.dst)
                    for pair in healthy_pairs
                ) if p is not None
            ]

        for group, exonerate in ((hard, True), (soft, False)):
            if sprayed:
                dists: Dict[ProbePair, List[UnderlayPath]] = {}
                for event in group:
                    dist = self.fabric.path_distribution(
                        event.pair.src, event.pair.dst
                    )
                    if dist:
                        dists[event.pair] = dist
                if len(dists) < 2:
                    continue
                result = self.intersection.vote_distributions(
                    list(dists.values()), healthy_dists
                )
                if result.suspects:
                    blamed_pairs = tuple(sorted(
                        pair for pair, dist in dists.items()
                        if any(
                            link in result.suspects
                            for path in dist for link in path.links
                        )
                    ))
                else:
                    # Device-level verdict: blame the pairs whose
                    # distribution can transit the promoted switch.
                    blamed_pairs = tuple(sorted(
                        pair for pair, dist in dists.items()
                        if any(
                            result.promoted_component in path.switches()
                            for path in dist
                        )
                    )) if result.promoted_component else ()
                failing_count = len(dists)
            else:
                paths: Dict[ProbePair, UnderlayPath] = {}
                for event in group:
                    path = None
                    if known_paths is not None:
                        path = known_paths.get(event.pair)
                    if path is None:
                        path = self.fabric.traceroute(
                            event.pair.src, event.pair.dst
                        )
                    if path is not None:
                        paths[event.pair] = path
                if len(paths) < 2:
                    continue
                result = self.intersection.vote(
                    list(paths.values()), healthy_paths,
                    exonerate=exonerate,
                )
                if result.suspects:
                    blamed_pairs = tuple(sorted(
                        pair for pair, path in paths.items()
                        if any(
                            link in result.suspects for link in path.links
                        )
                    ))
                else:
                    blamed_pairs = tuple(sorted(
                        pair for pair, path in paths.items()
                        if result.promoted_component in path.switches()
                    )) if result.promoted_component else ()
                failing_count = len(paths)
            if self.recorder is not None:
                self.recorder.event(
                    "localize.tomography", sim_time=self._now,
                    group="hard" if exonerate else "soft",
                    exonerate=exonerate and not sprayed,
                    sprayed=sprayed,
                    failing_paths=failing_count,
                    healthy_paths=len(
                        healthy_dists if sprayed else healthy_paths
                    ),
                    components=result.blamed_components(),
                    blamed_pairs=[_pair_label(p) for p in blamed_pairs],
                    **result.as_fields(),
                )
            if not result.found:
                continue
            primary = self._underlay_diagnosis(result, blamed_pairs, group)
            self._add(report, primary)
            # Path evidence cannot separate a device from its attached
            # link(s); report the voted links as secondary suspects.
            for link in result.suspects:
                if str(link) == primary.component:
                    continue
                vote = result.votes.get(link, 0)
                evidence = (
                    f"top-voted physical link "
                    f"({vote:.2f} failing path mass)"
                    if sprayed else
                    f"top-voted physical link ({vote} failing paths)"
                )
                self._add(report, Diagnosis(
                    component=str(link),
                    component_class=ComponentClass.INTER_HOST_NETWORK,
                    layer="underlay",
                    evidence=evidence,
                    pairs=blamed_pairs,
                    confidence=0.8,
                ))
            explained.update(blamed_pairs)

        return [e for e in events if e.pair not in explained]

    def _underlay_diagnosis(
        self,
        result: IntersectionResult,
        pairs: Tuple[ProbePair, ...],
        group: Sequence[FailureEvent],
    ) -> Diagnosis:
        symptoms = {e.symptom for e in group if e.pair in set(pairs)}
        at = (
            ", ".join(str(s) for s in result.suspects)
            or result.promoted_component or "nothing"
        )
        evidence = (
            f"tomography: {len(pairs)} failing paths intersect at {at}"
        )
        if result.promoted_kind == "switch":
            return Diagnosis(
                component=result.promoted_component,
                component_class=ComponentClass.INTER_HOST_NETWORK,
                layer="underlay", evidence=evidence, pairs=pairs,
            )
        if result.promoted_kind == "rnic":
            return Diagnosis(
                component=result.promoted_component,
                component_class=ComponentClass.RNIC,
                layer="underlay", evidence=evidence, pairs=pairs,
            )
        if result.promoted_kind == "host":
            component_class = (
                ComponentClass.HOST_BOARD
                if Symptom.HIGH_LATENCY in symptoms
                else ComponentClass.INTER_HOST_NETWORK
            )
            return Diagnosis(
                component=result.promoted_component,
                component_class=component_class,
                layer="underlay", evidence=evidence, pairs=pairs,
            )
        return Diagnosis(
            component=str(result.suspects[0]),
            component_class=ComponentClass.INTER_HOST_NETWORK,
            layer="underlay", evidence=evidence, pairs=pairs,
        )

    # ------------------------------------------------------------------
    # Step 3: RNIC validation (§5.3, "Validating RNICs")
    # ------------------------------------------------------------------

    def _validate_rnics(
        self, events: List[FailureEvent], report: LocalizationReport
    ) -> List[FailureEvent]:
        if not events:
            return []
        remaining: List[FailureEvent] = []
        for event in events:
            rnics = [
                r for r in (
                    self._rnic_of_endpoint(event.pair.src),
                    self._rnic_of_endpoint(event.pair.dst),
                ) if r is not None
            ]
            diagnosis = self._diagnose_from_findings(event, rnics)
            if diagnosis is not None:
                self._add(report, diagnosis)
            else:
                remaining.append(event)
        return remaining

    def _diagnose_from_findings(
        self, event: FailureEvent, rnics: List[RnicId]
    ) -> Optional[Diagnosis]:
        for rnic in rnics:
            finding = self.validator.validate(rnic, at=self._now)
            if finding.read_error or not finding.suspicious:
                # A failed dump is evidence of nothing: skip the RNIC
                # rather than misread it as clean *or* suspicious.
                continue
            diagnosis = self._diagnosis_for_finding(event, rnic, finding)
            if self.recorder is not None:
                self.recorder.event(
                    "localize.rnic", sim_time=self._now,
                    pair=_pair_label(event.pair),
                    component=diagnosis.component,
                    evidence=diagnosis.evidence,
                    **finding.as_fields(),
                )
            return diagnosis
        return None

    def _diagnosis_for_finding(
        self, event: FailureEvent, rnic: RnicId, finding
    ) -> Diagnosis:
        if finding.silently_invalidated > 0:
            return Diagnosis(
                component=str(rnic),
                component_class=ComponentClass.VIRTUAL_SWITCH,
                layer="rnic",
                evidence=(
                    f"{finding.silently_invalidated} flows marked "
                    "offloaded in OVS but absent from the RNIC "
                    "(silent invalidation)"
                ),
                pairs=(event.pair,),
            )
        if finding.software_path_rules > 0:
            if self._whole_host_on_software_path(rnic):
                return Diagnosis(
                    component=f"host:{rnic.host}",
                    component_class=ComponentClass.VIRTUAL_SWITCH,
                    layer="rnic",
                    evidence="every RNIC of the host is on the "
                    "software path (virtual switch not using RDMA)",
                    pairs=(event.pair,),
                )
            return Diagnosis(
                component=str(rnic),
                component_class=ComponentClass.RNIC,
                layer="rnic",
                evidence=f"{finding.software_path_rules} flows stuck "
                "on the software path (offloading failure)",
                pairs=(event.pair,),
            )
        return Diagnosis(
            component=str(rnic),
            component_class=ComponentClass.RNIC,
            layer="rnic",
            evidence="RNIC hardware rules diverge from OVS",
            pairs=(event.pair,),
        )

    def _whole_host_on_software_path(self, rnic: RnicId) -> bool:
        host = self.cluster.host(rnic.host)
        findings = self.validator.validate_many(
            (r.id for r in host.rnics), at=self._now
        )
        active = [
            f for f in findings.values()
            if not f.read_error and (
                f.inconsistencies or len(
                    self.cluster.overlay.offload_table(f.rnic)
                ) > 0
            )
        ]
        if len(active) < 2:
            return False
        return all(f.software_path_rules > 0 for f in active)

    # ------------------------------------------------------------------
    # Step 4: host concentration fallback
    # ------------------------------------------------------------------

    def _host_concentration(
        self, events: List[FailureEvent], report: LocalizationReport
    ) -> List[FailureEvent]:
        if not events:
            return []
        votes: Counter = Counter()
        for event in events:
            for endpoint in (event.pair.src, event.pair.dst):
                host = self._host_of_endpoint(endpoint)
                if host is not None:
                    votes[host] += 1
        if not votes:
            return events
        host, count = votes.most_common(1)[0]
        if count < 2 and len(events) > 1:
            return events
        pairs = tuple(sorted(
            e.pair for e in events
            if host in (
                self._host_of_endpoint(e.pair.src),
                self._host_of_endpoint(e.pair.dst),
            )
        ))
        diagnosis = Diagnosis(
            component=f"host:{host}",
            component_class=ComponentClass.HOST_BOARD,
            layer="host",
            evidence=f"{count} failing endpoints concentrate on {host}; "
            "handed to host fine-checking",
            pairs=pairs,
            confidence=0.6,
        )
        if self.recorder is not None:
            self.recorder.event(
                "localize.host", sim_time=self._now,
                votes={str(h): c for h, c in votes.items()},
                component=diagnosis.component,
                evidence=diagnosis.evidence,
            )
        self._add(report, diagnosis)
        return [e for e in events if e.pair not in set(pairs)]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _host_of_endpoint(self, endpoint: EndpointId) -> Optional[HostId]:
        try:
            return self.cluster.overlay.record_of(endpoint).host
        except OverlayError:
            return None

    def _rnic_of_endpoint(self, endpoint: EndpointId) -> Optional[RnicId]:
        try:
            return self.cluster.overlay.rnic_of(endpoint)
        except OverlayError:
            return None

    @staticmethod
    def _endpoint_from_name(
        name: str, pair: ProbePair
    ) -> Optional[EndpointId]:
        for endpoint in (pair.src, pair.dst):
            if str(endpoint) == name:
                return endpoint
        return None
