"""Operator-facing incident reporting.

Aggregates what the monitoring system did over a time range — failure
events, diagnoses, alerts, blacklist changes, migrations — into a
structured :class:`IncidentReport` and renders it as the kind of text
summary an on-call engineer reads.  This is the reproduction's analogue
of the paper's log-service dashboards (§6).
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.localization import Diagnosis
from repro.core.system import SkeletonHunter

__all__ = ["IncidentReport", "build_report", "render_report"]


@dataclass(frozen=True)
class IncidentSummary:
    """One failure event condensed for the report."""

    pair: str
    symptom: str
    detected_at: float
    resolved_at: Optional[float]
    anomaly_count: int

    @property
    def duration_s(self) -> Optional[float]:
        """Incident lifetime, when it has resolved."""
        if self.resolved_at is None:
            return None
        return self.resolved_at - self.detected_at


@dataclass
class IncidentReport:
    """Everything that happened inside [start, end)."""

    start: float
    end: float
    incidents: List[IncidentSummary] = field(default_factory=list)
    diagnoses: List[Tuple[float, Diagnosis]] = field(default_factory=list)
    probes_sent: int = 0
    probes_lost: int = 0
    probe_rounds: int = 0
    monitored_pairs: int = 0
    # Whether probe counts cover exactly [start, end) (derived from the
    # per-round metrics series) or had to fall back to lifetime totals.
    probes_windowed: bool = False

    @property
    def open_incidents(self) -> int:
        """Incidents still unresolved at the report boundary."""
        return sum(1 for i in self.incidents if i.resolved_at is None)

    def symptom_breakdown(self) -> Counter:
        """Incident counts per symptom."""
        return Counter(i.symptom for i in self.incidents)

    def component_breakdown(self) -> Counter:
        """Diagnosis counts per blamed component."""
        return Counter(d.component for _, d in self.diagnoses)

    def mean_resolution_s(self) -> Optional[float]:
        """Average lifetime of resolved incidents."""
        durations = [
            i.duration_s for i in self.incidents
            if i.duration_s is not None
        ]
        if not durations:
            return None
        return sum(durations) / len(durations)


def build_report(
    hunter: SkeletonHunter,
    start: float = 0.0,
    end: Optional[float] = None,
) -> IncidentReport:
    """Collect a hunter's activity inside [start, end)."""
    horizon = end if end is not None else hunter.engine.now
    # The range is half-open, but ``end=None`` means "everything so
    # far": a probe round (or detection) that fired exactly at ``now``
    # belongs in that report, so the effective upper bound is nudged
    # past the boundary instant.
    upper = math.nextafter(horizon, math.inf) if end is None else horizon
    report = IncidentReport(start=start, end=horizon)
    for event in hunter.events:
        if not start <= event.first_detected_at < upper:
            continue
        report.incidents.append(IncidentSummary(
            pair=f"{event.pair.src} <-> {event.pair.dst}",
            symptom=event.symptom.value,
            detected_at=event.first_detected_at,
            resolved_at=event.resolved_at,
            anomaly_count=len(event.anomalies),
        ))
    for when, localization in hunter.reports:
        if not start <= when < upper:
            continue
        for diagnosis in localization.diagnoses:
            report.diagnoses.append((when, diagnosis))
    report.probes_sent, report.probes_lost, report.probes_windowed = (
        _probes_in_range(hunter, start, upper)
    )
    registry = hunter.metrics
    if registry.has_series("probes.sent_in_round"):
        # Count-only query: no need to slice the per-round values.
        report.probe_rounds = registry.series(
            "probes.sent_in_round"
        ).count_window(start, upper)
    report.monitored_pairs = len(hunter.monitored_pairs())
    return report


def _probes_in_range(
    hunter: SkeletonHunter, start: float, end: float
) -> Tuple[int, int, bool]:
    """Probe sent/lost counts for [start, end).

    Summed from the per-round metrics series the hunter records, so a
    windowed report counts only its own range; falls back to lifetime
    fabric totals when the series does not (or no longer, after bounded
    retention evicted it) cover the range.
    """
    registry = hunter.metrics
    if registry.has_series("probes.sent_in_round"):
        sent_series = registry.series("probes.sent_in_round")
        lost_series = registry.series("probes.lost_in_round")
        if sent_series.complete_since(start):
            return (
                int(sum(sent_series.window(start, end))),
                int(sum(lost_series.window(start, end))),
                True,
            )
    return hunter.fabric.probes_sent, hunter.fabric.probes_lost, False


def render_report(report: IncidentReport) -> str:
    """Render an incident report as operator-readable text."""
    scope = "in range" if report.probes_windowed else "lifetime"
    lines = [
        f"incident report [{report.start:.0f}s .. {report.end:.0f}s]",
        f"  monitored pairs: {report.monitored_pairs}, "
        f"probes sent: {report.probes_sent} "
        f"(lost {report.probes_lost}, {scope}, "
        f"{report.probe_rounds} rounds in range)",
        f"  incidents: {len(report.incidents)} "
        f"({report.open_incidents} still open)",
    ]
    breakdown = report.symptom_breakdown()
    if breakdown:
        parts = ", ".join(
            f"{symptom}: {count}"
            for symptom, count in sorted(breakdown.items())
        )
        lines.append(f"  by symptom: {parts}")
    mean_resolution = report.mean_resolution_s()
    if mean_resolution is not None:
        lines.append(
            f"  mean incident lifetime: {mean_resolution:.0f}s"
        )
    if report.incidents:
        lines.append("  timeline:")
        for incident in sorted(
            report.incidents, key=lambda i: i.detected_at
        ):
            status = (
                "open" if incident.resolved_at is None
                else f"resolved @{incident.resolved_at:.0f}s"
            )
            lines.append(
                f"    {incident.detected_at:>7.0f}s  "
                f"{incident.symptom:<15} {incident.pair}  [{status}]"
            )
    components = report.component_breakdown()
    if components:
        evidence: dict = {}
        for _, diagnosis in report.diagnoses:
            evidence.setdefault(diagnosis.component, diagnosis.evidence)
        lines.append("  blamed components:")
        for component, count in components.most_common():
            why = evidence.get(component, "")
            lines.append(
                f"    {component} (x{count})"
                + (f" -- {why}" if why else "")
            )
    if not report.incidents:
        lines.append("  network healthy: no incidents in range")
    return "\n".join(lines)
