"""The analyzer: aggregates probing results and emits failure events.

Plays the role of the paper's log-service + real-time-computing analyzer
(§6): agents report probe results here; per-pair monitors close 30-second
and 30-minute windows; the detector stack scores them; and consecutive
anomalies on one pair are folded into a single :class:`FailureEvent` so a
persistent fault raises one incident, not one alarm per window.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import ColumnarDetectionEngine, ScoredWindow
from repro.core.detection import (
    DetectedAnomaly,
    DetectorConfig,
    LongTermDetector,
    PairMonitor,
    ShortTermDetector,
    WindowSummary,
)
from repro.core.pinglist import ProbePair
from repro.network.issues import Symptom
from repro.network.packet import ProbeResult

__all__ = [
    "Analyzer",
    "FailureEvent",
    "LoadConditionedAdmission",
    "VALID_BACKENDS",
]

#: Analyzer backends accepted by :class:`Analyzer`; an unknown name
#: raises immediately (naming these) instead of failing mid-run.
VALID_BACKENDS: Tuple[str, ...] = ("columnar", "legacy")


class LoadConditionedAdmission:
    """Raises latency thresholds on pairs whose paths run hot.

    Congestion on a heavily-utilized link inflates latency without any
    component having failed; admitting those anomalies at the standard
    thresholds misclassifies congestion collapse as a link failure.
    This filter conditions admission on a
    :class:`~repro.network.load.LinkLoadModel`: a ``HIGH_LATENCY``
    anomaly whose pair's path distribution averages at least
    ``hot_utilization`` bottleneck utilization must beat its detector's
    base threshold by a load-scaled ``headroom`` factor.  Loss and
    unconnectivity anomalies are never suppressed — packets dropping is
    a failure signal regardless of load.

    The decision is pure arithmetic over the anomaly and the (static)
    load model, so it is identical across analyzer backends and shard
    counts.  Pair utilizations are cached per fabric routing epoch:
    toggling the ECMP mode changes path distributions, so cached
    utilizations from the previous mode are discarded.
    """

    def __init__(
        self,
        load_model,
        fabric,
        hot_utilization: float = 0.7,
        headroom: float = 1.5,
        ztest_base: float = 3.9,
    ) -> None:
        self.load_model = load_model
        self.fabric = fabric
        self.hot_utilization = hot_utilization
        self.headroom = headroom
        # The z-test scores |z| but thresholds on alpha; 3.9 is the
        # two-sided critical value at the default alpha=1e-4.
        self.ztest_base = ztest_base
        self._cache: Dict[ProbePair, float] = {}
        self._cache_epoch: Optional[int] = None

    def pair_utilization(self, pair: ProbePair) -> float:
        """Mean bottleneck utilization over the pair's path distribution."""
        epoch = getattr(
            getattr(self.fabric, "resolution_cache", None),
            "routing_epoch", None,
        )
        if epoch != self._cache_epoch:
            self._cache.clear()
            self._cache_epoch = epoch
        cached = self._cache.get(pair)
        if cached is not None:
            return cached
        paths = self.fabric.path_distribution(pair.src, pair.dst)
        utilization = (
            self.load_model.distribution_utilization(paths)
            if paths else 0.0
        )
        self._cache[pair] = utilization
        return utilization

    def admit(self, anomaly, base_threshold: Optional[float]) -> bool:
        """Whether the anomaly survives load conditioning."""
        if anomaly.symptom is not Symptom.HIGH_LATENCY:
            return True
        utilization = self.pair_utilization(anomaly.pair)
        if utilization < self.hot_utilization:
            return True
        if anomaly.detector == "long_term_ztest":
            base_threshold = self.ztest_base
        if base_threshold is None:
            return True
        hotness = (utilization - self.hot_utilization) / max(
            1e-9, 1.0 - self.hot_utilization
        )
        required = base_threshold * (1.0 + self.headroom * hotness)
        return abs(anomaly.score) >= required


@dataclass
class FailureEvent:
    """One incident: a pair misbehaving over a contiguous stretch."""

    pair: ProbePair
    first_detected_at: float
    symptom: Symptom
    anomalies: List[DetectedAnomaly] = field(default_factory=list)
    resolved_at: Optional[float] = None

    @property
    def open(self) -> bool:
        """Whether the incident is still active."""
        return self.resolved_at is None

    @property
    def key(self) -> Tuple[ProbePair, float]:
        """A stable identity for the incident.

        ``id(event)`` is unusable as a dedup key — CPython reuses object
        ids after garbage collection — but (pair, first detection time)
        uniquely names an incident: the analyzer never opens two events
        for one pair at the same instant.
        """
        return (self.pair, self.first_detected_at)

    @property
    def last_seen_at(self) -> float:
        """Time of the most recent anomaly in the incident."""
        if not self.anomalies:
            return self.first_detected_at
        return max(a.detected_at for a in self.anomalies)

    def absorb(self, anomaly: DetectedAnomaly) -> None:
        """Attach a further anomaly to the incident.

        Unconnectivity dominates packet loss dominates high latency when
        deciding the incident's overall symptom.
        """
        self.anomalies.append(anomaly)
        precedence = {
            Symptom.UNCONNECTIVITY: 2,
            Symptom.PACKET_LOSS: 1,
            Symptom.HIGH_LATENCY: 0,
        }
        if precedence[anomaly.symptom] > precedence[self.symptom]:
            self.symptom = anomaly.symptom


class Analyzer:
    """Routes probe results through monitors and detectors.

    Two interchangeable backends sit behind the same incident
    bookkeeping:

    * ``"columnar"`` (default) — all pairs' windows live in one
      :class:`~repro.core.columnar.ColumnarDetectionEngine`; window
      scoring is *deferred* to :meth:`flush` (or an incident-ordering
      drain on the fast-unconnectivity path) and runs batched across
      pairs.  ``ingest`` therefore returns only fast-path anomalies.
    * ``"legacy"`` — the original per-pair ``PairMonitor`` /
      ``ShortTermDetector`` / ``LongTermDetector`` objects, scored
      eagerly as each window closes.  Kept as the reference
      implementation; ``repro bench --verify`` pins the columnar
      backend to it verdict-for-verdict.

    Both backends produce identical ``anomalies`` / ``events`` state
    after any ``flush`` (scores equal within 1e-10; see
    docs/PERFORMANCE.md).
    """

    def __init__(
        self,
        config: Optional[DetectorConfig] = None,
        resolve_after_s: float = 90.0,
        recorder=None,
        backend: str = "columnar",
        load_filter: Optional[LoadConditionedAdmission] = None,
    ) -> None:
        # Constructed per instance: a shared default instance would leak
        # one analyzer's tuning into every other (see repro.verify.lint,
        # rule "shared-instance-default").
        config = config if config is not None else DetectorConfig()
        if backend not in VALID_BACKENDS:
            valid = ", ".join(repr(name) for name in VALID_BACKENDS)
            raise ValueError(
                f"unknown analyzer backend: {backend!r} "
                f"(valid backends: {valid})"
            )
        self.config = config
        self.backend = backend
        self.resolve_after_s = resolve_after_s
        self.recorder = recorder
        # Optional load conditioning: anomalies are run through the
        # filter before entering the incident bookkeeping.  Applied at
        # admission (not inside a backend's scorer) so both backends
        # make identical decisions.  May also be assigned after
        # construction, before the first probe is ingested.
        self.load_filter = load_filter
        # Detector-config flags are hoisted out of the per-probe path:
        # `_fast_unconnectivity` runs on every probe and must not
        # re-derive them each time.
        self._fast_enabled = config.fast_unconnectivity_probes > 0
        self._fast_threshold = config.fast_unconnectivity_probes
        self._engine: Optional[ColumnarDetectionEngine] = (
            ColumnarDetectionEngine(config)
            if backend == "columnar" else None
        )
        self._monitors: Dict[ProbePair, PairMonitor] = {}
        self._short = ShortTermDetector(config, recorder=recorder)
        self._long = LongTermDetector(config, recorder=recorder)
        self._open_events: Dict[ProbePair, FailureEvent] = {}
        self.events: List[FailureEvent] = []
        self.anomalies: List[DetectedAnomaly] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------

    def ingest(self, result: ProbeResult) -> List[DetectedAnomaly]:
        """Feed one probe result; returns anomalies detected *now*.

        On the legacy backend that includes anomalies from windows this
        probe closed; the columnar backend defers window scoring to
        :meth:`flush` and only surfaces fast-unconnectivity here.
        """
        pair = ProbePair.canonical(result.src, result.dst)
        if self._engine is not None:
            return self._ingest_columnar(pair, result)
        monitor = self._monitors.get(pair)
        if monitor is None:
            monitor = PairMonitor(pair, self.config)
            self._monitors[pair] = monitor
        new: List[DetectedAnomaly] = []
        for summary in monitor.ingest(result):
            new.extend(self._score(summary))
        fast = self._fast_unconnectivity(pair, monitor, result)
        if fast is not None:
            new.append(fast)
        new.extend(self._maybe_long_window(pair, monitor, result.sent_at))
        return new

    def _ingest_columnar(
        self, pair: ProbePair, result: ProbeResult
    ) -> List[DetectedAnomaly]:
        engine = self._engine
        assert engine is not None
        row = engine.ingest(pair, result)
        new: List[DetectedAnomaly] = []
        if (
            self._fast_enabled
            and result.lost
            and engine.consecutive_losses(row) == self._fast_threshold
        ):
            # Score this pair's queued windows *before* recording the
            # fast anomaly, so the incident's first_detected_at matches
            # the eagerly-scored legacy ordering.
            new.extend(self._process_verdicts(engine.collect_rows(
                [row], full=self.recorder is not None,
                watch=self._open_events,
            )))
            anomaly = DetectedAnomaly(
                pair=pair, detected_at=result.sent_at,
                symptom=Symptom.UNCONNECTIVITY, detector="fast_loss",
                score=float(self._fast_threshold),
                window_start=result.sent_at,
            )
            self._record(anomaly)
            new.append(anomaly)
        engine.queue_elapsed_longs(row, result.sent_at)
        return new

    def _fast_unconnectivity(
        self, pair: ProbePair, monitor: PairMonitor, result: ProbeResult
    ) -> Optional[DetectedAnomaly]:
        """Alarm the moment a run of consecutive losses looks like a
        dead path, without waiting for the 30-second window to close."""
        if not self._fast_enabled or not result.lost:
            return None
        if monitor.consecutive_losses != self._fast_threshold:
            return None
        anomaly = DetectedAnomaly(
            pair=pair, detected_at=result.sent_at,
            symptom=Symptom.UNCONNECTIVITY, detector="fast_loss",
            score=float(self._fast_threshold), window_start=result.sent_at,
        )
        self._record(anomaly)
        return anomaly

    def flush(self, now: float) -> List[DetectedAnomaly]:
        """Close all elapsed windows across every monitored pair."""
        if self.recorder is None:
            return self._flush(now)
        with self.recorder.span("analyzer.flush", sim_time=now) as span:
            new = self._flush(now)
            span.set(pairs=self._num_pairs(), anomalies=len(new))
        return new

    def _num_pairs(self) -> int:
        if self._engine is not None:
            return self._engine.num_pairs
        return len(self._monitors)

    def _flush(self, now: float) -> List[DetectedAnomaly]:
        if self._engine is not None:
            self._engine.close_elapsed(now)
            return self._process_verdicts(self._engine.collect(
                full=self.recorder is not None, watch=self._open_events,
            ))
        new: List[DetectedAnomaly] = []
        for pair, monitor in self._monitors.items():
            for summary in monitor.flush(now):
                new.extend(self._score(summary))
            new.extend(self._maybe_long_window(pair, monitor, now))
        return new

    def _process_verdicts(
        self, verdicts: Sequence[ScoredWindow]
    ) -> List[DetectedAnomaly]:
        """Fold batched engine verdicts into the incident bookkeeping.

        Mirrors the legacy per-window flow: recorder events for scored
        windows, ``_record`` for anomalies, resolution checks for
        healthy short windows.
        """
        new: List[DetectedAnomaly] = []
        recorder = self.recorder
        cfg = self.config
        for v in verdicts:
            if v.kind == "short":
                if v.sent == 0:
                    # Missing round: no evidence either way (see
                    # _score) — never feeds detectors or resolution.
                    if recorder is not None:
                        recorder.count("windows.skipped_empty")
                    continue
                if v.score is not None and recorder is not None:
                    recorder.event(
                        "detect.lof", sim_time=v.window_end,
                        pair=f"{v.pair.src}<->{v.pair.dst}",
                        score=float(v.score),
                        threshold=cfg.lof_threshold,
                        median_shifted=bool(v.median_shifted),
                        anomalous=v.anomaly is not None,
                    )
                if v.anomaly is not None and self._admit(v.anomaly):
                    new.append(v.anomaly)
                    self._record(v.anomaly)
                else:
                    self._maybe_resolve(v.pair, v.window_end)
            else:
                if v.score is not None and recorder is not None:
                    recorder.event(
                        "detect.ztest", sim_time=v.window_end,
                        pair=f"{v.pair.src}<->{v.pair.dst}",
                        z=float(v.score), alpha=cfg.ztest_alpha,
                        samples=v.samples,
                        anomalous=v.anomaly is not None,
                    )
                if v.anomaly is not None and self._admit(v.anomaly):
                    new.append(v.anomaly)
                    self._record(v.anomaly)
        return new

    # ------------------------------------------------------------------
    # Scoring and incident management
    # ------------------------------------------------------------------

    def _score(self, summary: WindowSummary) -> List[DetectedAnomaly]:
        if summary.sent == 0:
            # A window with no probes is a *missing* round (crashed
            # agent, lost reports, pair dropped from the list) — not a
            # healthy one.  It carries no evidence either way, so it
            # must neither feed the detectors nor resolve an open event
            # as "recovered".
            if self.recorder is not None:
                self.recorder.count("windows.skipped_empty")
            return []
        found: List[DetectedAnomaly] = []
        anomaly = self._short.observe(summary)
        if anomaly is not None and self._admit(anomaly):
            found.append(anomaly)
            self._record(anomaly)
        else:
            self._maybe_resolve(summary.pair, summary.window_end)
        return found

    def _maybe_long_window(
        self, pair: ProbePair, monitor: PairMonitor, now: float
    ) -> List[DetectedAnomaly]:
        found: List[DetectedAnomaly] = []
        while monitor.long_window_ready(now):
            window_end = monitor._long_start + self.config.long_window_s
            latencies = monitor.pop_long_window(now)
            anomaly = self._long.observe(pair, window_end, latencies)
            if anomaly is not None and self._admit(anomaly):
                found.append(anomaly)
                self._record(anomaly)
        return found

    def _admit(self, anomaly: DetectedAnomaly) -> bool:
        """Run the anomaly through load conditioning, if configured.

        A suppressed window counts as healthy for incident resolution:
        load explained the latency, so the pair is not misbehaving.
        """
        if self.load_filter is None:
            return True
        if self.load_filter.admit(
            anomaly, self._threshold_of(anomaly.detector)
        ):
            return True
        if self.recorder is not None:
            self.recorder.count("anomalies.suppressed_load")
            self.recorder.event(
                "detect.suppressed_load",
                sim_time=anomaly.detected_at,
                pair=f"{anomaly.pair.src}<->{anomaly.pair.dst}",
                detector=anomaly.detector,
                score=float(anomaly.score),
            )
        return False

    def _record(self, anomaly: DetectedAnomaly) -> None:
        self.anomalies.append(anomaly)
        recorder = self.recorder
        if recorder is not None:
            recorder.count("anomalies.detected")
            recorder.event(
                "detect.anomaly", sim_time=anomaly.detected_at,
                pair=f"{anomaly.pair.src}<->{anomaly.pair.dst}",
                detector=anomaly.detector,
                symptom=anomaly.symptom.value,
                score=float(anomaly.score),
                threshold=self._threshold_of(anomaly.detector),
                window_start=anomaly.window_start,
            )
        event = self._open_events.get(anomaly.pair)
        if event is not None and event.open:
            event.absorb(anomaly)
            return
        event = FailureEvent(
            pair=anomaly.pair,
            first_detected_at=anomaly.detected_at,
            symptom=anomaly.symptom,
        )
        event.anomalies.append(anomaly)
        self._open_events[anomaly.pair] = event
        self.events.append(event)
        if recorder is not None:
            recorder.count("events.opened")
            recorder.event(
                "detect.event_opened", sim_time=anomaly.detected_at,
                pair=f"{event.pair.src}<->{event.pair.dst}",
                symptom=event.symptom.value,
            )

    def _threshold_of(self, detector: str) -> Optional[float]:
        """The alarm threshold the named detector applied."""
        return {
            "short_term_lof": self.config.lof_threshold,
            "loss_rule": self.config.loss_rate_threshold,
            "fast_loss": float(self.config.fast_unconnectivity_probes),
            "long_term_ztest": self.config.ztest_alpha,
        }.get(detector)

    def _maybe_resolve(self, pair: ProbePair, window_end: float) -> None:
        event = self._open_events.get(pair)
        if event is None or not event.open:
            return
        if window_end - event.last_seen_at >= self.resolve_after_s:
            event.resolved_at = window_end
            del self._open_events[pair]
            if self.recorder is not None:
                self.recorder.count("events.resolved")
                self.recorder.event(
                    "detect.event_resolved",
                    sim_time=window_end,
                    pair=f"{event.pair.src}<->{event.pair.dst}",
                    duration_s=window_end - event.first_detected_at,
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def open_events(self) -> List[FailureEvent]:
        """Incidents that are still active."""
        return [e for e in self._open_events.values() if e.open]

    def reset_pairs_involving(self, endpoints, now: float) -> List[
        ProbePair
    ]:
        """Invalidate monitoring state for pairs touching ``endpoints``.

        Called when the control plane *changed* the data path (e.g. a
        container migration): the old latency baseline is no longer
        meaningful, so the pair's windows, detector baselines, and any
        open incident are discarded and rebuilt from fresh probes.
        """
        targets = set(endpoints)
        if self._engine is not None:
            affected = [
                pair for pair in self._engine.pairs()
                if pair.src in targets or pair.dst in targets
            ]
            # Score what already closed before discarding: the legacy
            # path scored those windows eagerly at ingest, so dropping
            # them here would silently lose verdicts.
            rows = [self._engine.row_of(pair) for pair in affected]
            self._process_verdicts(self._engine.collect_rows(
                [r for r in rows if r is not None],
                full=self.recorder is not None,
                watch=self._open_events,
            ))
            for pair in affected:
                self._engine.drop(pair)
                event = self._open_events.pop(pair, None)
                if event is not None and event.open:
                    event.resolved_at = now
            return affected
        affected = [
            pair for pair in self._monitors
            if pair.src in targets or pair.dst in targets
        ]
        for pair in affected:
            del self._monitors[pair]
            self._short.reset(pair)
            self._long.reset(pair)
            event = self._open_events.pop(pair, None)
            if event is not None and event.open:
                event.resolved_at = now
        return affected

    def events_between(
        self, start: float, end: float
    ) -> List[FailureEvent]:
        """Incidents first detected inside [start, end)."""
        return [
            e for e in self.events if start <= e.first_detected_at < end
        ]

    def monitored_pairs(self) -> List[ProbePair]:
        """Every pair that has reported at least one probe."""
        if self._engine is not None:
            return sorted(self._engine.pairs())
        return sorted(self._monitors)
