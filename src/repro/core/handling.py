"""Failure handling: alerts, blacklisting, and scheduling integration.

§8 of the paper ("Handling Detected Failures"): when SkeletonHunter
detects an anomaly it (1) alerts the network operation team and (2)
automatically blacklists the implicated hosts and RNICs so no new
training task lands on them until the issue is resolved.  This module
implements both, plus the placement-filter hook the orchestrator uses.

Entries can carry an optional *scope* (e.g. a fleet tenant name): two
tenants blaming the same host name then hold two distinct entries, so
one tenant repairing "its" host never silently re-admits the host for
another tenant, and a shared registry can answer both scoped queries
(one tenant's view) and unscoped ones (the global placement view).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.identifiers import HostId
from repro.core.localization import Diagnosis, LocalizationReport

__all__ = ["Alert", "AlertSeverity", "Blacklist", "FailureHandler"]


class AlertSeverity(enum.Enum):
    """How loudly to page the operation team."""

    CRITICAL = "critical"   # unconnectivity: training tasks will abort
    MAJOR = "major"         # packet loss: collective retries, slowdowns
    MINOR = "minor"         # high latency: degraded but progressing


@dataclass(frozen=True)
class Alert:
    """One notification sent to the network operation team."""

    raised_at: float
    severity: AlertSeverity
    component: str
    summary: str


@dataclass
class _BlacklistEntry:
    component: str
    since: float
    reason: str
    cleared_at: Optional[float] = None
    #: Provenance: entries added by one localization report share a
    #: group key, so repairing any of them can clear its derived
    #: siblings (a repaired RNIC un-blacklists the host entry the same
    #: report produced).
    group: Optional[str] = None
    #: Isolation scope (e.g. a fleet tenant name); ``None`` is the
    #: global scope.  Entries with different scopes never collide.
    scope: Optional[str] = None


class Blacklist:
    """Components excluded from new-task scheduling until repaired.

    ``scope`` (optional) namespaces every entry this instance writes —
    a fleet controller gives each tenant ``Blacklist(scope=name)`` so
    identical component strings from different tenants stay distinct
    even if the entries are later merged into one shared registry.
    Per-call ``scope=`` arguments override the instance default;
    queries with ``scope=None`` on an unscoped instance see entries in
    *every* scope (the conservative, global placement view).
    """

    def __init__(self, scope: Optional[str] = None) -> None:
        self.scope = scope
        self._entries: Dict[
            Tuple[Optional[str], str], _BlacklistEntry
        ] = {}

    def _effective_scope(
        self, scope: Optional[str]
    ) -> Optional[str]:
        return scope if scope is not None else self.scope

    def add(
        self,
        component: str,
        at: float,
        reason: str,
        group: Optional[str] = None,
        scope: Optional[str] = None,
    ) -> None:
        """Blacklist a component (idempotent while active in scope)."""
        scope = self._effective_scope(scope)
        key = (scope, component)
        current = self._entries.get(key)
        if current is not None and current.cleared_at is None:
            return
        self._entries[key] = _BlacklistEntry(
            component=component, since=at, reason=reason, group=group,
            scope=scope,
        )

    def clear(
        self,
        component: str,
        at: float,
        cascade: bool = False,
        scope: Optional[str] = None,
    ) -> bool:
        """Mark a component repaired; returns whether it was listed.

        Plain ``clear`` touches exactly one entry — an operator
        clearing ``host:h3`` does not silently re-admit the RNIC that
        incriminated it.  With ``cascade``, entries sharing the
        component's (non-``None``) provenance group *within the same
        scope* are cleared too: that is the
        :meth:`FailureHandler.mark_repaired` path, where fixing the
        diagnosed component also retires the host/OVS entries the same
        report derived from it.  A clear never crosses scopes — tenant
        A repairing ``host:h3`` leaves tenant B's ``host:h3`` listed.
        """
        scope = self._effective_scope(scope)
        entry = self._entries.get((scope, component))
        if entry is None or entry.cleared_at is not None:
            return False
        entry.cleared_at = at
        if cascade and entry.group is not None:
            for sibling in self._entries.values():
                if (
                    sibling.cleared_at is None
                    and sibling.group == entry.group
                    and sibling.scope == scope
                ):
                    sibling.cleared_at = at
        return True

    def contains(
        self, component: object, scope: Optional[str] = None
    ) -> bool:
        """Whether ``component`` is actively blacklisted.

        A scoped query (instance scope or explicit ``scope=``) sees
        only that scope's entries; an unscoped query sees every scope.
        """
        scope = self._effective_scope(scope)
        name = str(component)
        if scope is not None:
            entry = self._entries.get((scope, name))
            return entry is not None and entry.cleared_at is None
        return any(
            entry.cleared_at is None
            for (_, entry_name), entry in self._entries.items()
            if entry_name == name
        )

    def active(self, scope: Optional[str] = None) -> List[str]:
        """Actively blacklisted component names, sorted.

        Unscoped instances report the union across all scopes (names
        deduplicated); scoped queries list only their own entries.
        """
        scope = self._effective_scope(scope)
        names = {
            entry.component
            for entry in self._entries.values()
            if entry.cleared_at is None
            and (scope is None or entry.scope == scope)
        }
        return sorted(names)

    def active_entries(
        self,
    ) -> List[Tuple[Optional[str], str]]:
        """Every active ``(scope, component)`` row, sorted with the
        global (``None``) scope first."""
        return sorted(
            (
                key for key, entry in self._entries.items()
                if entry.cleared_at is None
            ),
            key=lambda key: (key[0] is not None, key[0] or "", key[1]),
        )

    def host_allowed(
        self, host: HostId, scope: Optional[str] = None
    ) -> bool:
        """Placement filter: is this host schedulable?

        A host is unschedulable when the host itself, its OVS, or any
        of its RNICs is blacklisted (one dead rail starves the GPU it
        serves, so the whole node is pulled from rotation).  Unscoped
        queries are conservative — any tenant's entry pulls the host;
        scoped queries apply one tenant's view only.
        """
        name = str(host)
        for listed in self.active(scope=scope):
            if listed == f"host:{name}" or listed == f"ovs:{name}":
                return False
            if listed.startswith(f"{name}/rnic-"):
                return False
            if listed.startswith(f"vtep:{name}/"):
                return False
        return True


class FailureHandler:
    """Turns localization reports into alerts and blacklist entries."""

    #: Diagnosis layers whose components are worth pulling from rotation.
    _BLACKLISTABLE_LAYERS = ("overlay", "underlay", "rnic", "host")

    def __init__(
        self,
        blacklist: Optional[Blacklist] = None,
        notify: Optional[Callable[[Alert], None]] = None,
        min_confidence: float = 0.7,
    ) -> None:
        self.blacklist = blacklist or Blacklist()
        self._notify = notify
        self.min_confidence = min_confidence
        self.alerts: List[Alert] = []

    def handle(self, at: float, report: LocalizationReport) -> List[Alert]:
        """Process one localization report: alert + blacklist.

        Entries from one report share a provenance group, so
        :meth:`mark_repaired` on any of them clears the others — a
        repaired RNIC does not leave its host blacklisted.
        """
        group = f"report@{at:.3f}"
        raised: List[Alert] = []
        for diagnosis in report.diagnoses:
            alert = Alert(
                raised_at=at,
                severity=self._severity_of(diagnosis),
                component=diagnosis.component,
                summary=f"{diagnosis.component}: {diagnosis.evidence}",
            )
            raised.append(alert)
            self.alerts.append(alert)
            if self._notify is not None:
                self._notify(alert)
            if (
                diagnosis.confidence >= self.min_confidence
                and diagnosis.layer in self._BLACKLISTABLE_LAYERS
            ):
                self.blacklist.add(
                    diagnosis.component, at, diagnosis.evidence,
                    group=group,
                )
        return raised

    @staticmethod
    def _severity_of(diagnosis: Diagnosis) -> AlertSeverity:
        evidence = diagnosis.evidence.lower()
        if "unreachable" in evidence or "loop" in evidence or (
            "down" in evidence
        ):
            return AlertSeverity.CRITICAL
        if "loss" in evidence or "unconnectivity" in evidence:
            return AlertSeverity.MAJOR
        return AlertSeverity.MINOR

    def mark_repaired(self, component: str, at: float) -> bool:
        """The operation team fixed a component: re-admit it.

        Cascades through the entry's provenance group — blacklist
        entries derived from the same localization report (e.g. the
        ``host:`` entry raised alongside an RNIC diagnosis) are cleared
        with it, so a repaired RNIC never strands its host.
        """
        return self.blacklist.clear(component, at, cascade=True)

    def critical_alerts(self) -> List[Alert]:
        """All critical alerts raised so far."""
        return [
            a for a in self.alerts if a.severity == AlertSeverity.CRITICAL
        ]
