"""Recovery: migrating containers off failed components (§8).

The paper's team was developing a live-migration mechanism "for the
quick recovery of training containers ... to minimize the impact of
network failures".  This module implements that extension: when a
localization report blames a host, an RNIC, or a crashed container, the
recovery manager migrates the affected RUNNING containers of watched
tasks onto healthy (non-blacklisted) hosts, with a per-container
cooldown so one flapping diagnosis cannot thrash the placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.cluster.container import Container
from repro.cluster.identifiers import ContainerId, HostId
from repro.cluster.orchestrator import Orchestrator, PlacementError
from repro.core.handling import Blacklist
from repro.core.localization import LocalizationReport

__all__ = ["MigrationAction", "RecoveryManager"]


@dataclass(frozen=True)
class MigrationAction:
    """One executed (or attempted) container migration."""

    at: float
    container: ContainerId
    source: HostId
    target: Optional[HostId]   # None when no healthy host was available
    trigger: str               # the diagnosis component that caused it

    @property
    def succeeded(self) -> bool:
        """Whether a target host was found and the move happened."""
        return self.target is not None


class RecoveryManager:
    """Executes migrations in response to localization reports."""

    def __init__(
        self,
        orchestrator: Orchestrator,
        blacklist: Optional[Blacklist] = None,
        cooldown_s: float = 300.0,
    ) -> None:
        self.orchestrator = orchestrator
        self.blacklist = blacklist
        self.cooldown_s = cooldown_s
        self.actions: List[MigrationAction] = []
        self._last_migration: Dict[ContainerId, float] = {}

    # ------------------------------------------------------------------
    # Reaction
    # ------------------------------------------------------------------

    def react(self, at: float, report: LocalizationReport) -> List[
        MigrationAction
    ]:
        """Migrate containers implicated by a localization report."""
        performed: List[MigrationAction] = []
        for diagnosis in report.diagnoses:
            for container in self._victims_of(diagnosis.component):
                if not self._cooled_down(container.id, at):
                    continue
                performed.append(self._migrate(
                    at, container, diagnosis.component
                ))
        self.actions.extend(performed)
        return performed

    def _victims_of(self, component: str) -> List[Container]:
        """RUNNING containers sitting on the blamed component."""
        host_name = self._host_of_component(component)
        if host_name is None:
            return []
        victims = []
        for task in self.orchestrator.tasks.values():
            for container in task.running_containers():
                if str(container.host) == host_name:
                    victims.append(container)
        return victims

    @staticmethod
    def _host_of_component(component: str) -> Optional[str]:
        """Extract the host a component name implicates, if any."""
        if component.startswith("host:"):
            return component.split(":", 1)[1]
        if component.startswith(("ovs:", "vtep:")):
            component = component.split(":", 1)[1]
        if "/rnic-" in component and "<->" not in component:
            return component.split("/")[0]
        return None

    def _cooled_down(self, container_id: ContainerId, at: float) -> bool:
        last = self._last_migration.get(container_id)
        return last is None or at - last >= self.cooldown_s

    def _migrate(
        self, at: float, container: Container, trigger: str
    ) -> MigrationAction:
        source = container.host
        exclude = self._blacklisted_hosts()
        try:
            target = self.orchestrator.migrate_container(
                container, exclude_hosts=exclude
            )
        except PlacementError:
            target = None
        if target is not None:
            self._last_migration[container.id] = at
        return MigrationAction(
            at=at, container=container.id, source=source,
            target=target, trigger=trigger,
        )

    def _blacklisted_hosts(self) -> List[HostId]:
        if self.blacklist is None:
            return []
        hosts: Set[HostId] = set()
        for host_id in self.orchestrator.cluster.hosts:
            if not self.blacklist.host_allowed(host_id):
                hosts.add(host_id)
        return sorted(hosts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def successful_migrations(self) -> List[MigrationAction]:
        """Migrations that actually moved a container."""
        return [a for a in self.actions if a.succeeded]
