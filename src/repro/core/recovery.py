"""Recovery: migrating containers off failed components (§8).

The paper's team was developing a live-migration mechanism "for the
quick recovery of training containers ... to minimize the impact of
network failures".  This module implements that extension: when a
localization report blames a host, an RNIC, or a crashed container, the
recovery manager migrates the affected RUNNING containers of watched
tasks onto healthy (non-blacklisted) hosts, with a per-container
cooldown so one flapping diagnosis cannot thrash the placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.cluster.container import Container
from repro.cluster.identifiers import ContainerId, HostId, TaskId
from repro.cluster.orchestrator import Orchestrator, PlacementError
from repro.core.handling import Blacklist
from repro.core.localization import LocalizationReport

__all__ = ["MigrationAction", "RecoveryManager"]


@dataclass(frozen=True)
class MigrationAction:
    """One executed (or attempted) container migration."""

    at: float
    container: ContainerId
    source: HostId
    target: Optional[HostId]   # None when no healthy host was available
    trigger: str               # the diagnosis component that caused it

    @property
    def succeeded(self) -> bool:
        """Whether a target host was found and the move happened."""
        return self.target is not None


class RecoveryManager:
    """Executes migrations in response to localization reports."""

    def __init__(
        self,
        orchestrator: Orchestrator,
        blacklist: Optional[Blacklist] = None,
        cooldown_s: float = 300.0,
        max_migrations_per_window: int = 3,
        migration_window_s: float = 3600.0,
        scope: Optional[str] = None,
        scope_tasks: Optional[Iterable[TaskId]] = None,
    ) -> None:
        self.orchestrator = orchestrator
        self.blacklist = blacklist
        # Isolation (fleet tenancy): ``scope`` keys every blacklist
        # query, so this manager honours one tenant's entries without
        # colliding with another tenant's identical host names;
        # ``scope_tasks`` restricts migration victims to the tenant's
        # own tasks, so a diagnosis for tenant A's host never moves
        # tenant B's containers.  Both default to the legacy global
        # behaviour.
        self.scope = scope
        self.scope_tasks: Optional[Set[TaskId]] = (
            set(scope_tasks) if scope_tasks is not None else None
        )
        self.cooldown_s = cooldown_s
        # Thrash guard: the cooldown alone lets a container bounce
        # between two flapping hosts forever at exactly ``cooldown_s``
        # intervals; the window cap bounds total moves per container.
        self.max_migrations_per_window = max_migrations_per_window
        self.migration_window_s = migration_window_s
        self.actions: List[MigrationAction] = []
        self.throttled = 0
        self._migration_times: Dict[ContainerId, List[float]] = {}

    # ------------------------------------------------------------------
    # Reaction
    # ------------------------------------------------------------------

    def react(self, at: float, report: LocalizationReport) -> List[
        MigrationAction
    ]:
        """Migrate containers implicated by a localization report."""
        performed: List[MigrationAction] = []
        for diagnosis in report.diagnoses:
            for container in self._victims_of(diagnosis.component):
                if not self._cooled_down(container.id, at):
                    continue
                performed.append(self._migrate(
                    at, container, diagnosis.component
                ))
        self.actions.extend(performed)
        return performed

    def _victims_of(self, component: str) -> List[Container]:
        """RUNNING containers sitting on the blamed component."""
        host_name = self._host_of_component(component)
        if host_name is None:
            return []
        victims = []
        for task_id in sorted(self.orchestrator.tasks):
            if (
                self.scope_tasks is not None
                and task_id not in self.scope_tasks
            ):
                continue
            task = self.orchestrator.tasks[task_id]
            for container in task.running_containers():
                if str(container.host) == host_name:
                    victims.append(container)
        return victims

    @staticmethod
    def _host_of_component(component: str) -> Optional[str]:
        """Extract the host a component name implicates, if any."""
        if component.startswith("host:"):
            return component.split(":", 1)[1]
        if component.startswith(("ovs:", "vtep:")):
            component = component.split(":", 1)[1]
        if "/rnic-" in component and "<->" not in component:
            return component.split("/")[0]
        return None

    def _cooled_down(self, container_id: ContainerId, at: float) -> bool:
        history = self._migration_times.get(container_id)
        if not history:
            return True
        if at - history[-1] < self.cooldown_s:
            return False
        if self.max_migrations_per_window <= 0:
            return True
        recent = [
            t for t in history if at - t < self.migration_window_s
        ]
        if len(recent) >= self.max_migrations_per_window:
            self.throttled += 1
            return False
        return True

    def _migrate(
        self, at: float, container: Container, trigger: str
    ) -> MigrationAction:
        source = container.host
        exclude = self._blacklisted_hosts()
        try:
            target = self.orchestrator.migrate_container(
                container, exclude_hosts=exclude
            )
        except PlacementError:
            target = None
        if target is not None:
            history = self._migration_times.setdefault(container.id, [])
            history.append(at)
            # Keep only timestamps the window cap can still see.
            cutoff = at - self.migration_window_s
            while history and history[0] < cutoff:
                history.pop(0)
        return MigrationAction(
            at=at, container=container.id, source=source,
            target=target, trigger=trigger,
        )

    def _blacklisted_hosts(self) -> List[HostId]:
        if self.blacklist is None:
            return []
        hosts: Set[HostId] = set()
        for host_id in self.orchestrator.cluster.hosts:
            if not self.blacklist.host_allowed(
                host_id, scope=self.scope
            ):
                hosts.add(host_id)
        return sorted(hosts)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def successful_migrations(self) -> List[MigrationAction]:
        """Migrations that actually moved a container."""
        return [a for a in self.actions if a.succeeded]
