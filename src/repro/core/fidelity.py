"""Skeleton fidelity validation (§7.3 of the paper).

Skeleton inference assumes the tenant runs a collective-communication
workload.  Users who debug interactively, run exotic parallelisms, or
idle their containers break that assumption — the inferred skeleton then
probes the wrong pairs and misses real traffic.  The paper's proposed
mitigation: *"validate whether the traffic skeleton persistently aligns
with the actual traffic bursts"* before trusting it, and fall back to
the basic ping list when it does not.

The checker compares fresh throughput observations against what the
skeleton predicts:

* every member of a position group should still be *coherent* with its
  group (high correlation with the group's mean series);
* endpoints the skeleton claims are active should actually carry bursts;
* the periodicity the inference keyed on should persist.

A fidelity score below threshold demotes the task to its basic list.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.cluster.identifiers import EndpointId, TaskId
from repro.core.controller import Controller
from repro.core.pinglist import PingList
from repro.core.skeleton import InferredSkeleton

__all__ = ["FidelityChecker", "FidelityReport"]


@dataclass(frozen=True)
class FidelityReport:
    """Outcome of validating a skeleton against fresh observations."""

    task: TaskId
    group_coherence: float     # mean member-to-group correlation
    activity_fraction: float   # endpoints that still burst
    periodicity: float         # folded-profile concentration
    stage_consistency: float   # groups still at their inferred stage
    incoherent_endpoints: tuple

    def score(self) -> float:
        """Scalar fidelity in [0, 1]: the weakest of the four signals.

        Coherence alone cannot catch a *consistent* relabeling (every
        group swapping patterns with another group keeps members
        coherent); the stage-consistency signal re-derives burst onsets
        and catches exactly that case.
        """
        return min(
            max(self.group_coherence, 0.0),
            self.activity_fraction,
            max(self.periodicity, 0.0),
            self.stage_consistency,
        )

    def aligned(self, threshold: float = 0.6) -> bool:
        """Whether the skeleton still matches the observed traffic."""
        return self.score() >= threshold


class FidelityChecker:
    """Validates skeletons and demotes misaligned tasks to basic lists."""

    def __init__(
        self,
        iteration_period_s: float = 30.0,
        activity_threshold_gbps: float = 1.0,
        fidelity_threshold: float = 0.6,
    ) -> None:
        self.iteration_period_s = iteration_period_s
        self.activity_threshold_gbps = activity_threshold_gbps
        self.fidelity_threshold = fidelity_threshold

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------

    def check(
        self,
        task: TaskId,
        skeleton: InferredSkeleton,
        series_by_endpoint: Dict[EndpointId, np.ndarray],
    ) -> FidelityReport:
        """Score how well fresh observations match the skeleton."""
        coherences: List[float] = []
        incoherent: List[EndpointId] = []
        active = 0
        total = 0
        periodicities: List[float] = []

        for group in skeleton.groups:
            observed = [
                np.asarray(series_by_endpoint[e], dtype=np.float64)
                for e in group if e in series_by_endpoint
            ]
            if len(observed) != len(group):
                # Missing observations count as incoherent members.
                incoherent.extend(
                    e for e in group if e not in series_by_endpoint
                )
            if not observed:
                continue
            mean_series = np.mean(observed, axis=0)
            for endpoint, series in zip(
                [e for e in group if e in series_by_endpoint], observed
            ):
                total += 1
                if series.max() >= self.activity_threshold_gbps:
                    active += 1
                correlation = self._correlation(series, mean_series)
                coherences.append(correlation)
                if correlation < 0.5:
                    incoherent.append(endpoint)
            periodicities.append(self._periodicity(mean_series))

        return FidelityReport(
            task=task,
            group_coherence=(
                float(np.mean(coherences)) if coherences else 0.0
            ),
            activity_fraction=active / total if total else 0.0,
            periodicity=(
                float(np.mean(periodicities)) if periodicities else 0.0
            ),
            stage_consistency=self._stage_consistency(
                skeleton, series_by_endpoint
            ),
            incoherent_endpoints=tuple(sorted(incoherent)),
        )

    def _stage_consistency(
        self,
        skeleton: InferredSkeleton,
        series_by_endpoint: Dict[EndpointId, np.ndarray],
    ) -> float:
        """Fraction of groups whose burst onset still matches their
        inferred pipeline level."""
        from repro.core.skeleton import SkeletonInference

        inference = SkeletonInference(
            iteration_period_s=self.iteration_period_s
        )
        onsets = []
        for group in skeleton.groups:
            observed = [
                np.asarray(series_by_endpoint[e], dtype=np.float64)
                for e in group if e in series_by_endpoint
            ]
            if not observed:
                return 0.0
            period = int(round(self.iteration_period_s))
            usable = (len(observed[0]) // period) * period
            if usable == 0:
                return 0.0
            folded = np.mean([
                s[:usable].reshape(-1, period).mean(axis=0)
                for s in observed
            ], axis=0)
            onsets.append(inference._onset_bin(folded))
        fresh_levels = SkeletonInference._partition_stages(onsets)
        matches = sum(
            1 for fresh, original in zip(
                fresh_levels, skeleton.stage_of_group
            )
            if fresh == original
        )
        return matches / len(skeleton.groups) if skeleton.groups else 0.0

    @staticmethod
    def _correlation(a: np.ndarray, b: np.ndarray) -> float:
        """Pearson correlation, 0 when either side is flat."""
        n = min(len(a), len(b))
        if n < 2:
            return 0.0
        a, b = a[:n], b[:n]
        if a.std() == 0 or b.std() == 0:
            return 0.0
        return float(np.corrcoef(a, b)[0, 1])

    def _periodicity(self, series: np.ndarray) -> float:
        """How concentrated activity is inside the iteration fold.

        A periodic signal folds into a profile whose variance across
        fold bins is large relative to the per-bin sampling variance; a
        burstless or aperiodic signal folds flat.  Returns a [0, 1]-ish
        concentration ratio.
        """
        period = int(round(self.iteration_period_s))
        usable = (len(series) // period) * period
        if usable < 2 * period:
            return 0.0
        folded = series[:usable].reshape(-1, period)
        profile = folded.mean(axis=0)
        across = float(profile.std())
        within = float(folded.std(axis=0).mean())
        if across + within == 0:
            return 0.0
        return across / (across + within)

    # ------------------------------------------------------------------
    # Enforcement
    # ------------------------------------------------------------------

    def enforce(
        self,
        controller: Controller,
        task: TaskId,
        series_by_endpoint: Dict[EndpointId, np.ndarray],
    ) -> FidelityReport:
        """Check the applied skeleton; demote to basic on misalignment.

        Tasks still on their basic list are returned a degenerate report
        and left untouched.
        """
        skeleton = controller.skeleton_of(task)
        if skeleton is None:
            return FidelityReport(
                task=task, group_coherence=1.0, activity_fraction=1.0,
                periodicity=1.0, stage_consistency=1.0,
                incoherent_endpoints=(),
            )
        report = self.check(task, skeleton, series_by_endpoint)
        if not report.aligned(self.fidelity_threshold):
            self._demote_to_basic(controller, task)
        return report

    @staticmethod
    def _demote_to_basic(controller: Controller, task: TaskId) -> None:
        state = controller._state(task)
        endpoints = state.task.endpoints()
        basic = PingList.basic(endpoints, controller._rail_of(state.task))
        for container in state.task.running_containers():
            basic.register(container.id)
        state.ping_list = basic
        state.skeleton = None
        for agent in state.agents.values():
            agent.ping_list = basic
